#ifndef GSV_WAREHOUSE_AUX_CACHE_H_
#define GSV_WAREHOUSE_AUX_CACHE_H_

#include <iosfwd>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "oem/store.h"
#include "path/path.h"
#include "util/status.h"
#include "warehouse/cost_model.h"
#include "warehouse/update_event.h"
#include "warehouse/wrapper.h"

namespace gsv {

// The auxiliary structure of §5.2 (Example 10): "for a view whose select
// path starts from object OBJ, the warehouse caches all objects and labels
// reachable from OBJ along sel_path.cond_path. Then the warehouse can
// maintain the view locally, for any base update."
//
// The cache is itself a small GSDB ("the auxiliary data is simply another
// materialized view") holding the *corridor*: the root plus every source
// object whose derivation path is a prefix of sel_path.cond_path. It is
// kept current from the update events, querying the wrapper only when an
// insert attaches a subtree whose corridor content the event doesn't carry
// (Example 10: "the direct subobjects of P") — those queries are metered as
// cache_maintenance_queries.
//
// Partial caching (§5.2: "the warehouse may choose to cache part of the
// above structure, e.g. without the values of atomic nodes") is the
// kLabelsOnly mode: structure and labels cached, atomic values not — so
// condition tests still query the source for values.
class AuxiliaryCache {
 public:
  enum class Mode {
    kLabelsOnly,  // partial caching: no atomic values
    kFull,        // everything: fully local maintenance
  };

  // `engine_factory` builds the storage engine backing the corridor store
  // (null = memory default); a beyond-RAM warehouse pages its caches too.
  AuxiliaryCache(Mode mode, Oid root, Path corridor,
                 StorageEngineFactory engine_factory = nullptr);

  // Loads the corridor by querying the source (metered).
  Status Initialize(SourceWrapper* wrapper);

  // Discards all cached content. Used by the resync path: after a view is
  // rebuilt from a full recompute, the corridor is reloaded from the
  // now-reachable source rather than patched from missed events.
  void Reset();

  // Applies one reported update; queries `wrapper` only for corridor
  // content the event does not carry.
  //
  // A delete updates corridor *membership* immediately but defers the
  // physical removal of detached objects until Prune(): Algorithm 1's
  // delete case still needs to evaluate the detached subtree (its eval
  // over the just-removed edge's child), while candidate verification must
  // already see the post-delete reachability. The warehouse calls Prune()
  // after maintenance finishes.
  Status OnEvent(const UpdateEvent& event, SourceWrapper* wrapper);

  // Drops cached objects that are no longer on the corridor.
  void Prune();

  // Adds the cache store's index counter deltas since the last flush to
  // `costs`. Index probing inside the corridor is warehouse-side work, so
  // it is surfaced on the warehouse cost sheet rather than lost in the
  // cache's private store.
  void FlushIndexCounters(WarehouseCosts* costs);

  // Declares a storage quiescent point on the corridor store (see
  // ObjectStore::StorageSafePoint): a paged engine may shrink back to its
  // buffer-pool budget here. The warehouse calls this at drain boundaries.
  void StorageSafePoint() { store_.StorageSafePoint(); }

  // ---- Locally answered accessor operations ----

  bool OnCorridor(const Oid& oid) const { return depths_.count(oid.str()) > 0; }

  // All derivation paths root→n that are corridor prefixes. (Corridor
  // labels are fixed, so the path at depth d is corridor.Prefix(d).) An
  // uncached n has no corridor derivation — the complete answer for
  // prefix-matching purposes.
  std::vector<Path> CorridorPathsFromRoot(const Oid& n) const;

  // ancestor(n, p) within the corridor.
  std::vector<Oid> Ancestors(const Oid& n, const Path& p) const;

  // True iff path(root, y) includes exactly the corridor prefix `p`.
  bool VerifyPath(const Oid& y, const Path& p) const;

  // Objects in n.p along the corridor, with values. Returns nullopt when a
  // needed atomic value is not cached (kLabelsOnly) — the caller must then
  // query the source.
  std::optional<std::vector<Object>> EvalObjects(const Oid& n,
                                                 const Path& p) const;

  // The cached object, if its value is fully known.
  Result<Object> Fetch(const Oid& oid) const;

  const ObjectStore& store() const { return store_; }
  size_t size() const { return depths_.size(); }
  Mode mode() const { return mode_; }

  // ---- Persistence (durability subsystem) ----
  //
  // The cache state round-trips as text: the known-value OID list plus the
  // corridor store in the oem/serialize format, both in sorted order so the
  // bytes are deterministic for a given corridor state. Mode, root and
  // corridor path come from the constructor (the checkpoint manifest
  // records them with the view definition); LoadFrom rebuilds the depth map
  // from the reloaded store.

  // Writes the cache state to `out` (deterministic bytes).
  Status SaveTo(std::ostream& out) const;
  // Restores state saved by SaveTo into this (freshly constructed or
  // Reset) cache, then recomputes corridor membership.
  Status LoadFrom(std::istream& in);

 private:
  // Adds `object` to the corridor at `depth` and recursively pulls its
  // corridor descendants through the wrapper.
  Status AddToCorridor(const Object& object, size_t depth,
                       SourceWrapper* wrapper);
  // Re-derives corridor membership inside the cache.
  void RecomputeMembership();
  // True if the atomic value of `oid` is cached.
  bool ValueKnown(const Oid& oid) const;

  Mode mode_;
  Oid root_;
  Path corridor_;
  ObjectStore store_;
  // OID -> corridor depths (a DAG object can appear at several).
  std::unordered_map<std::string, std::set<size_t>> depths_;
  // Atomic OIDs whose cached value is real (always true in kFull mode).
  OidSet values_known_;
  // Last-flushed index counter readings (FlushIndexCounters deltas).
  int64_t flushed_index_probes_ = 0;
  int64_t flushed_index_fallbacks_ = 0;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_AUX_CACHE_H_
