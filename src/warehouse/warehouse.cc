#include "warehouse/warehouse.h"

#include <cstdlib>

#include "core/recompute.h"
#include "util/retry.h"

namespace gsv {

// The constructor and destructor live in warehouse_durability.cc, where
// WarehouseDurability is a complete type for the unique_ptr member.

Status Warehouse::ConnectSource(ObjectStore* source, Oid source_root,
                                ReportingLevel level, std::string name) {
  return ConnectSourceInternal(source, std::move(source_root), level,
                               std::move(name), /*install_monitor=*/true);
}

Status Warehouse::ConnectSourceRouted(ObjectStore* source, Oid source_root,
                                      std::string name) {
  // The reporting level rides on the routed events themselves; the entry
  // only needs the wrapper and the sequence domain.
  return ConnectSourceInternal(source, std::move(source_root),
                               ReportingLevel::kWithValues, std::move(name),
                               /*install_monitor=*/false);
}

Status Warehouse::ConnectSourceInternal(ObjectStore* source, Oid source_root,
                                        ReportingLevel level, std::string name,
                                        bool install_monitor) {
  if (!source->Contains(source_root)) {
    return Status::NotFound("source root " + source_root.str() +
                            " not found at source");
  }
  if (name.empty()) name = "source" + std::to_string(sources_.size() + 1);
  for (const auto& existing : sources_) {
    if (existing->name == name) {
      return Status::AlreadyExists("source '" + name + "' already connected");
    }
    if (existing->root == source_root) {
      return Status::AlreadyExists("a source with root " + source_root.str() +
                                   " is already connected");
    }
  }

  auto entry = std::make_unique<SourceEntry>();
  entry->name = std::move(name);
  entry->store = source;
  entry->root = std::move(source_root);
  entry->wrapper = std::make_unique<SourceWrapper>(source, &costs_);
  if (install_monitor) {
    size_t index = sources_.size();
    entry->monitor = std::make_unique<SourceMonitor>(
        level, entry->root,
        [this, index](const UpdateEvent& event) { OnEvent(index, event); });
    source->AddListener(entry->monitor.get());
  }
  sources_.push_back(std::move(entry));
  return Status::Ok();
}

Status Warehouse::BindShard(uint32_t shard_index, uint32_t shard_mask,
                            const CrossShardResolver* resolver) {
  if (!views_.empty()) {
    return Status::FailedPrecondition("BindShard before any DefineView");
  }
  if ((shard_index & shard_mask) != shard_index) {
    return Status::InvalidArgument("shard index outside the mask");
  }
  binding_ = ShardBinding{shard_index, shard_mask, resolver};
  return Status::Ok();
}

uint64_t Warehouse::last_delivered_sequence(
    const std::string& source_name) const {
  for (const auto& source : sources_) {
    if (source->name == source_name) return source->next_sequence - 1;
  }
  return 0;
}

Status Warehouse::ApplyForeignOps(const std::vector<ForeignViewOp>& ops) {
  Status first_error;
  ViewEntry* memo = nullptr;  // producers emit runs of ops on one view
  for (const ForeignViewOp& op : ops) {
    // Ops for members other shards own are someone else's to apply. The
    // coordinator hands every producer outbox to every shard unfiltered —
    // the scan here is cheap and parallel, where pre-bucketing the ops by
    // owner would serialize a move of every op on the coordinator.
    if (binding_.has_value() &&
        OwnerOfOp(op, binding_->shard_mask) != binding_->shard_index) {
      continue;
    }
    ViewEntry* entry = nullptr;
    if (memo != nullptr && memo->def.name() == op.view) {
      entry = memo;
    } else {
      for (auto& candidate : views_) {
        if (candidate->def.name() == op.view) {
          entry = candidate.get();
          break;
        }
      }
      memo = entry;
    }
    if (entry == nullptr) {
      if (first_error.ok()) {
        first_error =
            Status::NotFound("foreign op for unknown view '" + op.view + "'");
      }
      continue;
    }
    // A quarantined view skips the op: its post-resync recompute derives
    // the full current membership, which subsumes anything a peer computed.
    if (entry->stale) continue;
    ++costs_.cross_shard_applies;
    Status status;
    switch (op.kind) {
      case ForeignViewOp::Kind::kVInsert:
        status = entry->view->VInsert(op.object);
        break;
      case ForeignViewOp::Kind::kVDelete:
        status = entry->view->VDelete(op.base_oid);
        break;
      case ForeignViewOp::Kind::kSync:
        status = entry->view->SyncUpdate(op.update);
        break;
    }
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  if (!first_error.ok()) last_status_ = first_error;
  return first_error;
}

Status Warehouse::RunVerificationSweep() {
  Status first_error;
  for (auto& entry : views_) {
    if (entry->stale) continue;  // swept after resync instead
    Status status = VerifyMembers(*entry);
    if (!status.ok()) {
      if (IsSourceFailure(status)) {
        Quarantine(*entry, status);
        continue;
      }
      if (first_error.ok()) first_error = status;
    }
  }
  if (!first_error.ok()) last_status_ = first_error;
  StorageQuiescent();
  return first_error;
}

void Warehouse::PruneForeignMembers(ViewEntry& entry, bool export_members) {
  if (!binding_.has_value()) return;
  const SourceEntry& source = SourceOf(entry);
  const OidSet members = entry.view->BaseMembers();
  for (const Oid& member : members) {
    if (ShardOfOid(member, binding_->shard_mask) == binding_->shard_index) {
      continue;
    }
    if (export_members) {
      const Object* object = source.store->Get(member);
      if (object != nullptr) {
        ++costs_.cross_shard_exports;
        ForeignViewOp op;
        op.kind = ForeignViewOp::Kind::kVInsert;
        op.view = entry.def.name();
        op.object = *object;
        outbox_.push_back(std::move(op));
      }
    }
    entry.view->VDelete(member);
  }
}

void Warehouse::SetPathKnowledge(PathKnowledge knowledge) {
  knowledge_ = std::move(knowledge);
  for (auto& entry : views_) RecomputeRelevantLabels(*entry);
}

SourceMonitor* Warehouse::monitor() {
  return sources_.size() == 1 ? sources_[0]->monitor.get() : nullptr;
}

void Warehouse::RecomputeRelevantLabels(ViewEntry& entry) {
  // Only Algorithm 1 views have the constant corridor the screening labels
  // come from (and only their entries may call the IsSimple projections).
  if (entry.engine != EngineKind::kAlgorithm1) return;
  entry.relevant_labels.clear();
  const SourceEntry& source = *sources_[entry.source_index];
  const Object* root_object = source.store->Get(source.root);
  std::string root_label =
      root_object != nullptr ? root_object->label() : std::string();
  size_t feasible = knowledge_.FeasiblePrefix(root_label, entry.full_path);
  for (size_t i = 0; i < feasible; ++i) {
    entry.relevant_labels.insert(entry.full_path.label(i));
  }
  // A modify can only matter when the full path is feasible, the view has
  // a condition, and the modified object carries the condition's terminal
  // label (path(ROOT,N) = sel_path.cond_path implies label(N) is the last
  // corridor label).
  entry.modify_relevant = feasible == entry.full_path.size() &&
                          entry.def.predicate().has_value();
}

Result<size_t> Warehouse::ResolveSourceIndex(
    const std::string& source_name) const {
  if (source_name.empty()) {
    if (sources_.size() > 1) {
      return Status::InvalidArgument(
          "several sources are connected; name one in DefineView");
    }
    return size_t{0};
  }
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i]->name == source_name) return i;
  }
  return Status::NotFound("unknown source '" + source_name + "'");
}

Result<std::unique_ptr<Warehouse::ViewEntry>> Warehouse::BuildViewEntry(
    size_t source_index, std::string_view definition, CacheMode cache_mode) {
  SourceEntry& source = *sources_[source_index];

  GSV_ASSIGN_OR_RETURN(ViewDefinition def, ViewDefinition::Parse(definition));
  // Simple views (§4.2) run Algorithm 1; every other accepted shape runs
  // the discrimination network (or the query-back general maintainer under
  // the GSV_GENERAL_ENGINE=general override, mostly for twin testing).
  const bool simple = def.IsSimple();
  if (simple) {
    GSV_RETURN_IF_ERROR(Algorithm1Maintainer::ValidateDefinition(def));
  } else {
    GSV_RETURN_IF_ERROR(GdnEngine::ValidateDefinition(def));
  }
  Oid entry_oid = source.store->DatabaseOid(def.query().entry);
  if (!entry_oid.valid()) entry_oid = Oid(def.query().entry);
  if (entry_oid != source.root) {
    return Status::InvalidArgument(
        "view entry '" + def.query().entry +
        "' must resolve to the root of source '" + source.name + "' (" +
        source.root.str() + ")");
  }

  auto entry = std::make_unique<ViewEntry>(def);
  entry->source_index = source_index;
  entry->definition_text = std::string(definition);
  entry->cache_mode = cache_mode;
  if (simple) {
    entry->engine = EngineKind::kAlgorithm1;
    // The constant-path projections (and the screening labels derived from
    // them) exist only for the simple shape.
    entry->sel_path = def.sel_path();
    entry->cond_path = def.cond_path();
    entry->full_path = def.full_path();
    RecomputeRelevantLabels(*entry);
  } else {
    const char* env = std::getenv("GSV_GENERAL_ENGINE");
    entry->engine = env != nullptr && std::string_view(env) == "general"
                        ? EngineKind::kGeneral
                        : EngineKind::kGdn;
  }

  entry->view = std::make_unique<MaterializedView>(store_, def);
  if (cache_mode != CacheMode::kNone) {
    if (entry->engine != EngineKind::kAlgorithm1) {
      // Corridor caches mirror the single constant select/condition
      // corridor; the general view classes have no such corridor.
      return Status::InvalidArgument(
          "auxiliary caches require a simple (Algorithm 1) view");
    }
    // Corridor caches hold whole-source subtrees, which cuts across the
    // ownership partition; a sharded deployment runs cache-less shards.
    if (binding_.has_value()) {
      return Status::InvalidArgument(
          "sharded warehouses support CacheMode::kNone only");
    }
    entry->cache = std::make_unique<AuxiliaryCache>(
        cache_mode == CacheMode::kFull ? AuxiliaryCache::Mode::kFull
                                       : AuxiliaryCache::Mode::kLabelsOnly,
        source.root, entry->full_path, options_.aux_engine_factory);
  }
  if (binding_.has_value()) {
    entry->scoped = std::make_unique<ShardScopedStorage>(
        entry->view.get(), binding_->shard_index, binding_->shard_mask,
        binding_->resolver, &outbox_, &costs_);
  }
  entry->accessor =
      std::make_unique<RemoteAccessor>(source.wrapper.get(), &costs_);
  if (entry->cache != nullptr) entry->accessor->set_cache(entry->cache.get());
  if (entry->engine == EngineKind::kAlgorithm1) {
    entry->maintainer = std::make_unique<Algorithm1Maintainer>(
        entry->storage(), entry->accessor.get(), def, source.root);
  } else if (!binding_.has_value()) {
    // General engines read the base store directly (centralized setting;
    // query-backs are not metered for them — see DESIGN.md §4j). A
    // shard-bound warehouse constructs neither: the coordinator owns one
    // engine per general view and redistributes its deltas.
    if (entry->engine == EngineKind::kGeneral) {
      entry->general = std::make_unique<GeneralMaintainer>(
          entry->storage(), source.store, def, source.root);
    } else {
      entry->gdn =
          std::make_unique<GdnEngine>(source.store, def, source.root);
    }
  }
  return entry;
}

Status Warehouse::DefineView(std::string_view definition,
                             CacheMode cache_mode,
                             const std::string& source_name) {
  if (sources_.empty()) {
    return Status::FailedPrecondition("connect a source before DefineView");
  }
  GSV_ASSIGN_OR_RETURN(size_t source_index, ResolveSourceIndex(source_name));
  SourceEntry& source = *sources_[source_index];

  GSV_ASSIGN_OR_RETURN(std::unique_ptr<ViewEntry> entry,
                       BuildViewEntry(source_index, definition, cache_mode));

  // Log the definition (and, via the delta sink, the initial membership)
  // before materializing, so recovery can re-bootstrap the view from the
  // log alone when no checkpoint covers it yet.
  LogViewDef(entry->definition_text, cache_mode, source.name);
  AttachSink(entry->view.get());

  // Initial materialization reads the source directly: it is part of view
  // setup, not of incremental maintenance (§4 assumes an initially correct
  // materialized view).
  GSV_RETURN_IF_ERROR(entry->view->Initialize(*source.store));
  // Every shard of a partitioned warehouse runs this same initialization,
  // so each just drops the members it doesn't own — no exports needed.
  PruneForeignMembers(*entry, /*export_members=*/false);
  if (entry->cache != nullptr) {
    GSV_RETURN_IF_ERROR(entry->cache->Initialize(source.wrapper.get()));
  }
  // The discrimination network seeds its memo tables from the same base
  // state the view just materialized from; both derive the same members.
  if (entry->gdn != nullptr) {
    GSV_RETURN_IF_ERROR(entry->gdn->Initialize());
  }
  views_.push_back(std::move(entry));
  LogCommit();
  StorageQuiescent();
  return Status::Ok();
}

MaterializedView* Warehouse::view(const std::string& name) {
  for (auto& entry : views_) {
    if (entry->def.name() == name) return entry->view.get();
  }
  return nullptr;
}

std::vector<std::string> Warehouse::view_names() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& entry : views_) names.push_back(entry->def.name());
  return names;
}

const Algorithm1Maintainer* Warehouse::maintainer(
    const std::string& name) const {
  for (const auto& entry : views_) {
    if (entry->def.name() == name) return entry->maintainer.get();
  }
  return nullptr;
}

const AuxiliaryCache* Warehouse::cache(const std::string& name) const {
  for (const auto& entry : views_) {
    if (entry->def.name() == name) return entry->cache.get();
  }
  return nullptr;
}

Warehouse::EngineKind Warehouse::view_engine(const std::string& name) const {
  for (const auto& entry : views_) {
    if (entry->def.name() == name) return entry->engine;
  }
  return EngineKind::kAlgorithm1;
}

const GdnEngine* Warehouse::gdn_engine(const std::string& name) const {
  for (const auto& entry : views_) {
    if (entry->def.name() == name) return entry->gdn.get();
  }
  return nullptr;
}

const GeneralMaintainer* Warehouse::general_maintainer(
    const std::string& name) const {
  for (const auto& entry : views_) {
    if (entry->def.name() == name) return entry->general.get();
  }
  return nullptr;
}

std::string Warehouse::view_definition_text(const std::string& name) const {
  for (const auto& entry : views_) {
    if (entry->def.name() == name) return entry->definition_text;
  }
  return std::string();
}

std::string Warehouse::view_source(const std::string& name) const {
  for (const auto& entry : views_) {
    if (entry->def.name() == name) return sources_[entry->source_index]->name;
  }
  return std::string();
}

ShardedViewExplanation Warehouse::ExplainView(const std::string& name) const {
  ShardedViewExplanation out;
  out.view = name;
  out.shards = 1;
  for (const auto& entry : views_) {
    if (entry->def.name() != name) continue;
    const OidSet members = entry->view->BaseMembers();
    out.total_members = members.size();
    out.members_per_shard = {members.size()};
    switch (entry->engine) {
      case EngineKind::kAlgorithm1: out.engine = "algorithm1"; break;
      case EngineKind::kGeneral: out.engine = "general"; break;
      case EngineKind::kGdn: out.engine = "gdn"; break;
    }
    if (entry->gdn != nullptr) {
      out.gdn_nodes = entry->gdn->node_count();
      out.gdn_matches = entry->gdn->match_count();
      out.gdn_propagations = entry->gdn->stats().propagations;
      out.gdn_rebuilds = entry->gdn->stats().rebuilds;
    }
    if (entry->general != nullptr) {
      out.general_caps_hit = entry->general->stats().caps_hit;
    }
    break;
  }
  out.cross_shard_exports =
      costs_.cross_shard_exports.load(std::memory_order_relaxed);
  out.cross_shard_applies =
      costs_.cross_shard_applies.load(std::memory_order_relaxed);
  out.cross_shard_probes =
      costs_.cross_shard_probes.load(std::memory_order_relaxed);
  return out;
}

void Warehouse::OnEvent(size_t source_index, const UpdateEvent& event) {
  // The channel between monitor and integrator is at-least-once: with a
  // fault injector installed it may lose or redeliver this event.
  FaultInjector* injector = sources_[source_index]->injector;
  if (injector != nullptr) {
    if (injector->DropEvent()) return;  // lost; the next delivery shows a gap
    Deliver(source_index, event);
    if (injector->DuplicateEvent()) Deliver(source_index, event);
    return;
  }
  Deliver(source_index, event);
}

void Warehouse::Deliver(size_t source_index, const UpdateEvent& event) {
  SourceEntry& source = *sources_[source_index];
  if (event.sequence != 0) {
    if (event.sequence < source.next_sequence) {
      // Redelivery of an event already integrated: drop idempotently.
      ++costs_.events_duplicate_dropped;
      return;
    }
    if (event.sequence > source.next_sequence) {
      // Lost delivery: the views of this source missed an update and can
      // no longer be maintained incrementally. Quarantine them for resync.
      ++costs_.events_gap_detected;
      QuarantineSourceViews(
          source_index,
          Status::Unavailable(
              "lost delivery from '" + source.name + "': expected seq " +
              std::to_string(source.next_sequence) + ", got " +
              std::to_string(event.sequence)));
    }
    source.next_sequence = event.sequence + 1;
  }
  // Accepted: log before queueing/applying, so a crash after this point
  // still replays the event (the commit record decides committed vs tail).
  LogEvent(source, event);
  if (deferred_) {
    pending_.emplace_back(source_index, event);
    return;
  }
  DispatchEvent(source_index, event);
  LogCommit();  // inline dispatch forms its own commit group
  StorageQuiescent();
}

void Warehouse::DispatchEvent(size_t source_index, const UpdateEvent& event) {
  ++costs_.events_received;
  int64_t queries_before = costs_.source_queries;
  for (auto& entry : views_) {
    if (entry->source_index != source_index) continue;
    if (entry->stale) {
      // Opportunistic recovery: a new event is the inline dispatch's only
      // chance to notice the source came back. The circuit breaker keeps
      // the probe cheap while the source is still down.
      TryResyncView(*entry, /*force=*/false);
      if (entry->stale) {
        BufferStaleEvent(*entry, event);
        continue;
      }
      // Resynced just now from the current source state, which already
      // includes this event's update; handling it below is a redundant
      // (convergent) replay, same as a deferred drain.
    }
    entry->accessor->ClearError();
    Status status = HandleEventForView(*entry, event);
    if (status.ok()) status = entry->accessor->last_error();
    if (!status.ok()) {
      if (IsSourceFailure(status) ||
          (entry->gdn != nullptr && entry->gdn->poisoned())) {
        // Graceful degradation: the view keeps serving its last consistent
        // state; the event replays after resync. A poisoned network (its
        // propagation budget blew) takes the same road — the resync
        // recompute + Rebuild() restores it.
        Quarantine(*entry, status);
        BufferStaleEvent(*entry, event);
      } else {
        last_status_ = status;
      }
    }
  }
  if (costs_.source_queries == queries_before) ++costs_.events_local_only;
}

Status Warehouse::SetFaultInjector(const std::string& source_name,
                                   FaultInjector* injector) {
  for (auto& source : sources_) {
    if (source->name != source_name) continue;
    source->injector = injector;
    source->wrapper->set_fault_injector(injector);
    return Status::Ok();
  }
  return Status::NotFound("unknown source '" + source_name + "'");
}

SourceWrapper* Warehouse::wrapper(const std::string& source_name) {
  if (source_name.empty()) {
    return sources_.size() == 1 ? sources_[0]->wrapper.get() : nullptr;
  }
  for (auto& source : sources_) {
    if (source->name == source_name) return source->wrapper.get();
  }
  return nullptr;
}

Warehouse::ViewHealth Warehouse::view_health(const std::string& name) const {
  for (const auto& entry : views_) {
    if (entry->def.name() == name) {
      return entry->stale ? ViewHealth::kStale : ViewHealth::kFresh;
    }
  }
  return ViewHealth::kFresh;
}

size_t Warehouse::stale_view_count() const {
  size_t count = 0;
  for (const auto& entry : views_) {
    if (entry->stale) ++count;
  }
  return count;
}

size_t Warehouse::buffered_stale_events() const {
  size_t count = 0;
  for (const auto& entry : views_) count += entry->stale_events.size();
  return count;
}

void Warehouse::Quarantine(ViewEntry& entry, const Status& cause) {
  if (entry.stale) return;
  entry.stale = true;
  entry.stale_cause = cause;
  ++costs_.views_quarantined;
}

void Warehouse::BufferStaleEvent(ViewEntry& entry, const UpdateEvent& event) {
  entry.stale_events.push_back(event);
  ++costs_.events_buffered_stale;
}

void Warehouse::QuarantineSourceViews(size_t source_index,
                                      const Status& cause) {
  for (auto& entry : views_) {
    if (entry->source_index == source_index) Quarantine(*entry, cause);
  }
}

Status Warehouse::TryResyncView(ViewEntry& entry, bool force) {
  SourceEntry& source = SourceOf(entry);
  GSV_RETURN_IF_ERROR(source.wrapper->Probe(force));

  // The source answers again. Rebuild the view from its *current* state
  // (the §4.4 recompute path) — that state already reflects every missed
  // and buffered update, so the rebuild subsumes whatever was lost.
  RecomputeMaintainer recompute(entry.view.get(), source.store);
  Status status = recompute.Recompute();
  if (!status.ok()) {
    ++costs_.resync_failures;
    return status;
  }
  // Sharded: the recompute derived the *whole* view. Keep the owned slice;
  // export the rest as V_inserts so owners that missed the lost events
  // converge too (their stale extras fall to their next sweep).
  PruneForeignMembers(entry, /*export_members=*/true);
  if (entry.cache != nullptr) {
    entry.cache->Reset();
    status = entry.cache->Initialize(source.wrapper.get());
    if (!status.ok()) {
      ++costs_.resync_failures;
      return status;  // stay quarantined until the corridor rebuilds too
    }
  }
  if (entry.gdn != nullptr) {
    // Rebuild the memo network from the same current state the recompute
    // read (this also clears a poisoned engine); the buffered replay below
    // is then a convergent no-op for it, like for Algorithm 1.
    status = entry.gdn->Rebuild();
    if (!status.ok()) {
      ++costs_.resync_failures;
      return status;
    }
  }
  entry.stale = false;
  entry.stale_cause = Status::Ok();

  // Replay the buffered events. Each one is already reflected in the
  // rebuilt state, so replay is redundant — but it is convergent (the
  // deferred-drain argument: raw edge ops are idempotent, candidate
  // verification runs against current source state) and it exercises the
  // same at-least-once path as any redelivery.
  std::vector<UpdateEvent> replay;
  replay.swap(entry.stale_events);
  for (size_t i = 0; i < replay.size(); ++i) {
    entry.accessor->ClearError();
    Status replay_status = HandleEventForView(entry, replay[i]);
    if (replay_status.ok()) replay_status = entry.accessor->last_error();
    if (!replay_status.ok()) {
      if (IsSourceFailure(replay_status)) {
        // The source died again mid-replay: back to quarantine with the
        // unreplayed tail (the next resync's rebuild subsumes it anyway).
        Quarantine(entry, replay_status);
        for (size_t j = i; j < replay.size(); ++j) {
          BufferStaleEvent(entry, replay[j]);
        }
        ++costs_.resync_failures;
        return replay_status;
      }
      last_status_ = replay_status;  // replay continues past local errors
    }
  }

  // Deferred-drain epilogue for the replayed events.
  status = VerifyMembers(entry);
  if (!status.ok()) {
    if (IsSourceFailure(status)) {
      Quarantine(entry, status);
      ++costs_.resync_failures;
      return status;
    }
    last_status_ = status;
  }
  ++costs_.view_resyncs;
  return Status::Ok();
}

void Warehouse::TryResyncStaleViews() {
  for (auto& entry : views_) {
    if (entry->stale) TryResyncView(*entry, /*force=*/false);
  }
}

Status Warehouse::ResyncStaleViews() {
  Status first_error;
  for (auto& entry : views_) {
    if (!entry->stale) continue;
    Status status = TryResyncView(*entry, /*force=*/true);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  // Resync deltas (recompute + buffered replay) were logged via the sinks;
  // close their group when the warehouse is quiescent.
  if (pending_.empty()) LogCommit();
  StorageQuiescent();
  return first_error;
}

size_t Warehouse::CompactPending() {
  std::vector<std::pair<size_t, UpdateEvent>> compacted;
  compacted.reserve(pending_.size());
  size_t removed = 0;
  for (auto& item : pending_) {
    if (!compacted.empty()) {
      auto& [top_source, top] = compacted.back();
      const auto& [source, event] = item;
      if (top_source == source) {
        bool same_edge = event.kind != UpdateKind::kModify &&
                         top.kind != UpdateKind::kModify &&
                         top.parent == event.parent &&
                         top.child == event.child;
        bool cancels =
            same_edge &&
            ((top.kind == UpdateKind::kInsert &&
              event.kind == UpdateKind::kDelete) ||
             (top.kind == UpdateKind::kDelete &&
              event.kind == UpdateKind::kInsert));
        if (cancels) {
          compacted.pop_back();
          removed += 2;
          continue;
        }
        if (top.kind == UpdateKind::kModify &&
            event.kind == UpdateKind::kModify &&
            top.parent == event.parent) {
          UpdateEvent merged = event;  // newer snapshot and new_value
          if (top.old_value.has_value()) merged.old_value = top.old_value;
          top = std::move(merged);
          ++removed;
          continue;
        }
      }
    }
    compacted.push_back(std::move(item));
  }
  pending_ = std::move(compacted);
  return removed;
}

Status Warehouse::CollectUnderivable(ViewEntry& entry,
                                     RemoteAccessor* accessor,
                                     std::vector<Oid>* doomed) {
  // The sweep re-derives members along the simple corridor; general views
  // have none, and their engines already keep membership exact (the GDN by
  // reconciliation against final state, the general maintainer by
  // candidate recheck against final state).
  if (entry.engine != EngineKind::kAlgorithm1) return Status::Ok();
  const SourceEntry& source = *sources_[entry.source_index];
  const OidSet members = entry.view->BaseMembers();
  for (const Oid& member : members) {
    accessor->ClearError();
    bool derivable = accessor->VerifyPath(source.root, member, entry.sel_path);
    if (derivable && entry.def.predicate().has_value()) {
      derivable =
          accessor->EvalAny(member, entry.cond_path, entry.def.predicate());
    }
    if (!accessor->last_error().ok()) {
      // The empty/false answer came from a failed query-back, not from the
      // source: abort rather than doom members on a down channel.
      return accessor->last_error();
    }
    if (!derivable) doomed->push_back(member);
  }
  return Status::Ok();
}

Status Warehouse::VerifyMembers(ViewEntry& entry) {
  std::vector<Oid> doomed;
  GSV_RETURN_IF_ERROR(
      CollectUnderivable(entry, entry.accessor.get(), &doomed));
  for (const Oid& member : doomed) {
    GSV_RETURN_IF_ERROR(entry.view->VDelete(member));
  }
  return Status::Ok();
}

Status Warehouse::ProcessPending() {
  // Recovery prologue: sources may have healed since the last drain.
  TryResyncStaleViews();

  Status first_error;
  // Drain into a local list first: processing may enqueue nothing new (the
  // warehouse never mutates sources), but keep the loop robust anyway.
  std::vector<std::pair<size_t, UpdateEvent>> batch;
  batch.swap(pending_);
  std::vector<bool> touched(sources_.size(), false);
  for (const auto& [source_index, event] : batch) {
    touched[source_index] = true;
    Status before = last_status_;
    DispatchEvent(source_index, event);
    if (first_error.ok() && !(last_status_ == before)) {
      first_error = last_status_;
    }
  }
  // Deferred-drain epilogue: see the header comment. Quarantined views are
  // skipped — their members are verified by the post-resync sweep instead.
  for (auto& entry : views_) {
    if (!touched[entry->source_index] || entry->stale) continue;
    Status status = VerifyMembers(*entry);
    if (!status.ok()) {
      if (IsSourceFailure(status)) {
        Quarantine(*entry, status);
        continue;
      }
      if (first_error.ok()) first_error = status;
    }
  }
  if (!first_error.ok()) last_status_ = first_error;
  LogCommit();  // the drain is quiescent here: one commit closes the group
  StorageQuiescent();
  return first_error;
}

Status Warehouse::HandleEventForView(ViewEntry& entry,
                                     const UpdateEvent& event) {
  SourceEntry& source = SourceOf(entry);

  if (entry.engine != EngineKind::kAlgorithm1) {
    // General engines skip §5.1 screening: a discrimination network must
    // see every event to keep its memos aligned with the base, and the
    // candidate-recheck maintainer's affected set is not label-bounded.
    // Both re-read values from the source store, so a modify event is
    // re-stamped with the store's current value — level 1 suffices and
    // deferred drains stay convergent.
    Update update = event.ToUpdate();
    if (update.kind == UpdateKind::kModify) {
      const Object* object = source.store->Get(update.parent);
      if (object != nullptr && object->IsAtomic()) {
        update =
            Update::Modify(update.parent, update.old_value, object->value());
      }
    }
    if (entry.gdn != nullptr) return entry.gdn->Apply(update, entry.storage());
    if (entry.general != nullptr) return entry.general->Maintain(update);
    // Shard-bound "external" entry: the coordinator's engine computes the
    // membership deltas; only the delegate values track the base here.
    return entry.storage()->SyncUpdate(update);
  }

  // 1. Keep the auxiliary structure current (§5.2: "the auxiliary structure
  //    itself needs to be maintained"). For deletes this updates corridor
  //    membership but keeps the detached subtree readable until Prune()
  //    below — Algorithm 1's delete case evaluates that subtree.
  if (entry.cache != nullptr) {
    GSV_RETURN_IF_ERROR(entry.cache->OnEvent(event, source.wrapper.get()));
  }

  // 2. Local screening (§5.1, reporting level >= 2).
  if (event.level >= ReportingLevel::kWithValues) {
    if (!EventRelevant(entry, event)) {
      ++costs_.events_screened_out;
      // Delegate values must still track the base (§3.2).
      Status status = entry.storage()->SyncUpdate(event.ToUpdate());
      if (entry.cache != nullptr) {
        if (event.kind == UpdateKind::kDelete) entry.cache->Prune();
        entry.cache->FlushIndexCounters(&costs_);
      }
      return status;
    }
  }

  // 3. Maintain through Algorithm 1 over the remote accessor.
  entry.accessor->set_current_event(&event);
  Status status;
  if (event.kind == UpdateKind::kModify &&
      event.level == ReportingLevel::kOidsOnly) {
    status = Level1ModifyRecheck(entry, event, entry.storage(),
                                 entry.accessor.get());
  } else {
    status = entry.maintainer->Maintain(event.ToUpdate());
  }
  entry.accessor->set_current_event(nullptr);
  if (entry.cache != nullptr) {
    if (event.kind == UpdateKind::kDelete) entry.cache->Prune();
    entry.cache->FlushIndexCounters(&costs_);
  }
  return status;
}

bool Warehouse::EventRelevant(const ViewEntry& entry,
                              const UpdateEvent& event) const {
  if (event.kind == UpdateKind::kModify) {
    const std::string label = event.parent_object.has_value()
                                  ? event.parent_object->label()
                                  : std::string();
    return entry.modify_relevant && !entry.full_path.empty() &&
           label == entry.full_path.back();
  }
  if (event.child_object.has_value()) {
    return entry.relevant_labels.count(event.child_object->label()) > 0;
  }
  return true;
}

Status Warehouse::Level1ModifyRecheck(ViewEntry& entry,
                                      const UpdateEvent& event,
                                      ViewStorage* storage,
                                      BaseAccessor* accessor) {
  SourceEntry& source = SourceOf(entry);
  // Level 1 reports only the OID of the modified object: the warehouse
  // must query for its current state (§5.1 scenario 1), then re-derive the
  // membership of every ancestor the change could affect.
  GSV_ASSIGN_OR_RETURN(Object object,
                       source.wrapper->FetchObject(event.parent));
  GSV_RETURN_IF_ERROR(storage->SyncUpdate(
      Update::Modify(event.parent, object.value(), object.value())));
  if (!entry.def.predicate().has_value()) return Status::Ok();
  if (entry.full_path.empty() ||
      object.label() != entry.full_path.back()) {
    return Status::Ok();  // cannot lie at the corridor's end
  }
  for (const Oid& y : accessor->Ancestors(event.parent, entry.cond_path)) {
    if (!accessor->VerifyPath(source.root, y, entry.sel_path)) {
      continue;
    }
    if (!accessor->EvalAny(y, entry.cond_path, entry.def.predicate())) {
      GSV_RETURN_IF_ERROR(storage->VDelete(y));
    } else {
      GSV_ASSIGN_OR_RETURN(Object y_object, accessor->Fetch(y));
      GSV_RETURN_IF_ERROR(storage->VInsert(y_object));
    }
  }
  return Status::Ok();
}

void Warehouse::StorageQuiescent() {
  store_->StorageSafePoint();
  for (auto& entry : views_) {
    if (entry->cache != nullptr) entry->cache->StorageSafePoint();
  }
  // Flush the generalized engines' counter deltas onto the cost sheet (the
  // same delta pattern as the paging counters below).
  for (auto& entry : views_) {
    if (entry->gdn != nullptr) {
      const GdnEngine::Stats& s = entry->gdn->stats();
      costs_.gdn_propagations.fetch_add(
          s.propagations - entry->gdn_flushed.propagations,
          std::memory_order_relaxed);
      costs_.gdn_matches_created.fetch_add(
          s.matches_created - entry->gdn_flushed.matches_created,
          std::memory_order_relaxed);
      costs_.gdn_matches_freed.fetch_add(
          s.matches_freed - entry->gdn_flushed.matches_freed,
          std::memory_order_relaxed);
      costs_.gdn_rebuilds.fetch_add(
          s.rebuilds - entry->gdn_flushed.rebuilds,
          std::memory_order_relaxed);
      entry->gdn_flushed = s;
    }
    if (entry->general != nullptr) {
      int64_t caps = entry->general->stats().caps_hit;
      costs_.general_caps_hit.fetch_add(caps - entry->general_caps_flushed,
                                        std::memory_order_relaxed);
      entry->general_caps_flushed = caps;
    }
  }
  // Flush the delegate store's buffer-pool deltas onto the cost sheet so
  // maintenance reports show the paging the drain actually caused. (Cache
  // stores report through the same StoreMetrics merge path as their index
  // counters; the delegate store dominates and is what exp19 studies.)
  const StoreMetrics& metrics = store_->metrics();
  int64_t faults = metrics.page_faults.load(std::memory_order_relaxed);
  int64_t evictions = metrics.page_evictions.load(std::memory_order_relaxed);
  int64_t writeback =
      metrics.page_writeback_bytes.load(std::memory_order_relaxed);
  int64_t swizzle_hits = metrics.swizzle_hits.load(std::memory_order_relaxed);
  int64_t swizzle_misses =
      metrics.swizzle_misses.load(std::memory_order_relaxed);
  costs_.store_page_faults.fetch_add(faults - flushed_page_faults_,
                                     std::memory_order_relaxed);
  costs_.store_page_evictions.fetch_add(evictions - flushed_page_evictions_,
                                        std::memory_order_relaxed);
  costs_.store_writeback_bytes.fetch_add(writeback - flushed_writeback_bytes_,
                                         std::memory_order_relaxed);
  costs_.store_swizzle_hits.fetch_add(swizzle_hits - flushed_swizzle_hits_,
                                      std::memory_order_relaxed);
  costs_.store_swizzle_misses.fetch_add(
      swizzle_misses - flushed_swizzle_misses_, std::memory_order_relaxed);
  flushed_page_faults_ = faults;
  flushed_page_evictions_ = evictions;
  flushed_writeback_bytes_ = writeback;
  flushed_swizzle_hits_ = swizzle_hits;
  flushed_swizzle_misses_ = swizzle_misses;
}

ThreadPool* Warehouse::Pool(size_t threads) {
  if (pool_ == nullptr || pool_threads_ != threads) {
    pool_.reset();  // join the old workers before spawning new ones
    pool_ = std::make_unique<ThreadPool>(threads);
    pool_threads_ = threads;
  }
  return pool_.get();
}

}  // namespace gsv
