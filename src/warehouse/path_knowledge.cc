#include "warehouse/path_knowledge.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>

#include "oem/store.h"

namespace gsv {

void PathKnowledge::SetChildLabels(const std::string& parent_label,
                                   std::vector<std::string> labels) {
  std::sort(labels.begin(), labels.end());
  allowed_[parent_label] = std::move(labels);
}

bool PathKnowledge::HasKnowledgeFor(const std::string& parent_label) const {
  return allowed_.count(parent_label) > 0;
}

bool PathKnowledge::MayHaveChild(const std::string& parent_label,
                                 const std::string& child_label) const {
  auto it = allowed_.find(parent_label);
  if (it == allowed_.end()) return true;  // open world for unknown labels
  return std::binary_search(it->second.begin(), it->second.end(),
                            child_label);
}

size_t PathKnowledge::FeasiblePrefix(const std::string& root_label,
                                     const Path& path) const {
  std::string current = root_label;
  for (size_t i = 0; i < path.size(); ++i) {
    if (!MayHaveChild(current, path.label(i))) return i;
    current = path.label(i);
  }
  return path.size();
}

PathKnowledge BuildPathKnowledge(const ObjectStore& store, const Oid& root) {
  // BFS over the reachable subgraph, accumulating label -> child labels.
  std::map<std::string, std::set<std::string>> observed;
  std::unordered_set<std::string> visited{root.str()};
  std::deque<Oid> frontier{root};
  while (!frontier.empty()) {
    Oid oid = frontier.front();
    frontier.pop_front();
    const Object* object = store.Get(oid);
    if (object == nullptr) continue;
    // Every reachable label gets an entry, even when childless or atomic —
    // that is what makes the knowledge closed-world for it.
    auto& children = observed[object->label()];
    if (!object->IsSet()) continue;
    for (const Oid& child_oid : object->children()) {
      const Object* child = store.Get(child_oid);
      if (child == nullptr) continue;
      children.insert(child->label());
      if (visited.insert(child_oid.str()).second) {
        frontier.push_back(child_oid);
      }
    }
  }
  PathKnowledge knowledge;
  for (auto& [label, child_labels] : observed) {
    knowledge.SetChildLabels(
        label,
        std::vector<std::string>(child_labels.begin(), child_labels.end()));
  }
  return knowledge;
}

}  // namespace gsv
