#include "warehouse/sharded_warehouse.h"

#include <algorithm>
#include <chrono>

#include "query/evaluator.h"

namespace gsv {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// CPU time consumed by the calling thread. The parallel per-shard phases
// are timed with this rather than wall clock: when the pool's threads
// time-slice fewer cores than shards, wall clock charges every shard for
// its siblings' turns and max(eval) drifts toward the sum — the thread
// clock keeps DrainTiming's critical-path bound meaningful on any machine.
int64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
  }
#endif
  return NowMicros();
}

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

ShardedWarehouse::ShardedWarehouse(uint32_t shards, Options options) {
  if (!IsPowerOfTwo(shards)) {
    init_status_ =
        Status::InvalidArgument("shard count must be a power of two >= 1");
    shards = 1;
  }
  mask_ = shards - 1;
  stores_.reserve(shards);
  shards_.reserve(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    ObjectStore::Options store_options;
    store_options.engine_factory = options.engine_factory;
    stores_.push_back(std::make_unique<ObjectStore>(std::move(store_options)));
    auto warehouse = std::make_unique<Warehouse>(stores_.back().get());
    Status status = warehouse->BindShard(i, mask_, &directory_);
    if (!status.ok() && init_status_.ok()) init_status_ = status;
    shards_.push_back(std::move(warehouse));
  }
}

ShardedWarehouse::~ShardedWarehouse() {
  for (auto& source : sources_) {
    if (source->store != nullptr && source->monitor != nullptr) {
      source->store->RemoveListener(source->monitor.get());
    }
  }
}

// ---- Directory ----

bool ShardedWarehouse::Directory::ViewContains(const std::string& view,
                                               const Oid& base) const {
  if (frozen_) {
    // The owner's slice holds the member iff the whole view does, so the
    // snapshot keeps per-shard slices (cheap copies) instead of unioning
    // them — Freeze() runs serially on the coordinator every drain.
    auto it = snapshot_.find(view);
    if (it == snapshot_.end()) return false;
    return it->second[ShardOfOid(base, owner_->mask_)].Contains(base);
  }
  // Live probe: straight to the owner's current slice.
  Warehouse& owner = *owner_->shards_[ShardOfOid(base, owner_->mask_)];
  MaterializedView* slice = owner.view(view);
  return slice != nullptr && slice->ContainsBase(base);
}

void ShardedWarehouse::Directory::Freeze() {
  snapshot_.clear();
  for (const std::string& name : owner_->view_names_) {
    std::vector<OidSet> slices(owner_->shards_.size());
    for (size_t i = 0; i < owner_->shards_.size(); ++i) {
      MaterializedView* slice = owner_->shards_[i]->view(name);
      if (slice != nullptr) slices[i] = slice->BaseMembers();
    }
    snapshot_[name] = std::move(slices);
  }
  frozen_ = true;
}

// ---- Topology ----

Status ShardedWarehouse::ConnectSource(ObjectStore* source, Oid source_root,
                                       ReportingLevel level,
                                       std::string name) {
  GSV_RETURN_IF_ERROR(init_status_);
  if (name.empty()) name = "source" + std::to_string(sources_.size() + 1);
  for (auto& shard : shards_) {
    GSV_RETURN_IF_ERROR(shard->ConnectSourceRouted(source, source_root, name));
  }
  auto route = std::make_unique<SourceRoute>();
  route->name = name;
  route->store = source;
  route->next_out.assign(shards_.size(), 0);
  size_t index = sources_.size();
  route->monitor = std::make_unique<SourceMonitor>(
      level, std::move(source_root),
      [this, index](const UpdateEvent& event) { RouteEvent(index, event); });
  source->AddListener(route->monitor.get());
  sources_.push_back(std::move(route));
  return Status::Ok();
}

Status ShardedWarehouse::DefineView(std::string_view definition,
                                    const std::string& source_name) {
  GSV_RETURN_IF_ERROR(init_status_);
  GSV_ASSIGN_OR_RETURN(ViewDefinition def, ViewDefinition::Parse(definition));
  for (auto& shard : shards_) {
    GSV_RETURN_IF_ERROR(
        shard->DefineView(definition, Warehouse::CacheMode::kNone,
                          source_name));
  }
  view_names_.push_back(def.name());
  return Status::Ok();
}

void ShardedWarehouse::SetPathKnowledge(PathKnowledge knowledge) {
  for (auto& shard : shards_) shard->SetPathKnowledge(knowledge);
}

void ShardedWarehouse::set_deferred(bool deferred) {
  deferred_ = deferred;
  for (auto& shard : shards_) shard->set_deferred(deferred);
}

size_t ShardedWarehouse::pending_events() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_events();
  return total;
}

// ---- Routing ----

void ShardedWarehouse::RouteEvent(size_t source_index,
                                  const UpdateEvent& event) {
  SourceRoute& route = *sources_[source_index];
  const uint32_t target = RouteShardOf(event, mask_);
  UpdateEvent stamped = event;
  // Each (source, shard) pair is its own 1-based sequence domain; the
  // target shard's integrator does duplicate-drop / gap-detection on it
  // exactly as an unsharded warehouse would on the monitor's numbering.
  stamped.sequence = ++route.next_out[target];
  shards_[target]->InjectRoutedEvent(source_index, stamped);
  if (!deferred_) {
    // Inline dispatch already applied the event at the owner; deliver its
    // cross-shard effects (and commit the shards they landed on) now so
    // every shard is consistent before the next event arrives.
    FlushForeignOps(/*commit_targets=*/true);
  }
}

Status ShardedWarehouse::FlushForeignOps(bool commit_targets) {
  std::vector<std::vector<ForeignViewOp>> taken(shards_.size());
  std::vector<bool> owes(shards_.size(), false);
  for (size_t i = 0; i < shards_.size(); ++i) {
    taken[i] = shards_[i]->TakeForeignOps();
    for (const ForeignViewOp& op : taken[i]) {
      owes[OwnerOfOp(op, mask_)] = true;
    }
  }
  Status first_error;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!owes[i]) continue;
    for (const std::vector<ForeignViewOp>& ops : taken) {
      Status status = shards_[i]->ApplyForeignOps(ops);
      if (!status.ok() && first_error.ok()) first_error = status;
    }
    if (commit_targets) shards_[i]->CommitDurable();
  }
  return first_error;
}

ThreadPool* ShardedWarehouse::Pool(size_t threads) {
  if (pool_ == nullptr || pool_threads_ != threads) {
    pool_.reset();
    pool_ = std::make_unique<ThreadPool>(threads);
    pool_threads_ = threads;
  }
  return pool_.get();
}

// ---- Coordinated drain ----

Status ShardedWarehouse::ProcessPendingBatch(size_t threads) {
  const size_t shard_count = shards_.size();
  DrainTiming timing;
  timing.eval_micros.assign(shard_count, 0);
  timing.sweep_micros.assign(shard_count, 0);
  const int64_t t0 = NowMicros();

  // Freeze the membership directory: every shard's Algorithm 1 pass (and
  // its level-1 rechecks) evaluates the same pre-drain membership, mirroring
  // how batch workers within one warehouse share the frozen final base.
  directory_.Freeze();
  std::vector<bool> active(shard_count, false);
  for (size_t i = 0; i < shard_count; ++i) {
    active[i] = shards_[i]->pending_events() > 0 ||
                shards_[i]->stale_view_count() > 0;
  }

  // Phase A: per-shard drains in parallel. Concurrency comes from the shard
  // fan-out; inside each shard the batch engine runs single-threaded
  // (threads=1), with its sweep and commit deferred to the coordinator.
  ThreadPool* pool = Pool(std::min(threads, shard_count));
  std::vector<Status> statuses(shard_count);
  const int64_t par_begin = NowMicros();
  for (size_t i = 0; i < shard_count; ++i) {
    if (!active[i]) continue;
    pool->Submit([this, i, &statuses, &timing] {
      const int64_t start = ThreadCpuMicros();
      Warehouse::BatchOptions options;
      options.threads = 1;
      options.run_sweep = false;
      options.log_commit = false;
      statuses[i] = shards_[i]->ProcessPendingBatch(options);
      timing.eval_micros[i] = ThreadCpuMicros() - start;
    });
  }
  pool->Wait();
  const int64_t par_end = NowMicros();

  Status first_error;
  for (const Status& status : statuses) {
    if (!status.ok() && first_error.ok()) first_error = status;
  }

  // Phase B: deliver the outboxes — the per-batch barrier that makes
  // cross-shard edges land before anything downstream observes the batch.
  // The only serial work is taking the producer outboxes (K vector moves)
  // and counting ops per owner; the ops themselves are never moved. Every
  // owner then scans all outboxes in deterministic (producer shard, op)
  // order and ApplyForeignOps filters to the ops it owns, so delivery runs
  // on the pool with its CPU time charged to the owner's eval share.
  std::vector<std::vector<ForeignViewOp>> taken(shard_count);
  std::vector<bool> applied(shard_count, false);
  for (size_t i = 0; i < shard_count; ++i) {
    taken[i] = shards_[i]->TakeForeignOps();
    for (const ForeignViewOp& op : taken[i]) {
      applied[OwnerOfOp(op, mask_)] = true;
    }
  }
  const int64_t serial_end = NowMicros();

  std::vector<Status> apply_statuses(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    if (!applied[i]) continue;
    pool->Submit([this, i, &taken, &apply_statuses, &timing] {
      const int64_t start = ThreadCpuMicros();
      Status first;
      for (const std::vector<ForeignViewOp>& ops : taken) {
        Status status = shards_[i]->ApplyForeignOps(ops);
        if (!status.ok() && first.ok()) first = status;
      }
      apply_statuses[i] = first;
      timing.eval_micros[i] += ThreadCpuMicros() - start;
    });
  }
  pool->Wait();
  for (const Status& status : apply_statuses) {
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  directory_.Thaw();

  // Phase C: verification sweeps, parallel again. Only shards that saw
  // events, applied foreign ops, or resynced can hold stale extras; a sweep
  // of a consistent view is a no-op, so skipping the rest preserves
  // byte-identity while saving the query-backs.
  std::vector<Status> sweep_statuses(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    if (!active[i] && !applied[i]) continue;
    pool->Submit([this, i, &sweep_statuses, &timing] {
      const int64_t start = ThreadCpuMicros();
      sweep_statuses[i] = shards_[i]->RunVerificationSweep();
      timing.sweep_micros[i] = ThreadCpuMicros() - start;
    });
  }
  pool->Wait();
  const int64_t sweep_end = NowMicros();
  for (const Status& status : sweep_statuses) {
    if (!status.ok() && first_error.ok()) first_error = status;
  }

  // A resync during the drain prologue exports recompute-derived members;
  // deliver any not already covered by phase B, then close every
  // participating shard's durability group.
  Status flush_status = FlushForeignOps(/*commit_targets=*/false);
  if (!flush_status.ok() && first_error.ok()) first_error = flush_status;
  for (size_t i = 0; i < shard_count; ++i) {
    if (active[i] || applied[i]) shards_[i]->CommitDurable();
  }

  const int64_t end = NowMicros();
  timing.serial_micros =
      (par_begin - t0) + (serial_end - par_end) + (end - sweep_end);
  timings_.push_back(std::move(timing));
  return first_error;
}

// ---- Fault tolerance ----

Status ShardedWarehouse::SetFaultInjector(const std::string& source_name,
                                          uint32_t shard_index,
                                          FaultInjector* injector) {
  if (shard_index >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  return shards_[shard_index]->SetFaultInjector(source_name, injector);
}

size_t ShardedWarehouse::stale_view_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->stale_view_count();
  return total;
}

Status ShardedWarehouse::ResyncStaleViews() {
  Status first_error;
  for (auto& shard : shards_) {
    Status status = shard->ResyncStaleViews();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  // The recomputes exported the foreign members they derived; deliver them,
  // then sweep everywhere — peers may hold stale extras from deletes the
  // lost events never propagated.
  Status status = FlushForeignOps(/*commit_targets=*/false);
  if (!status.ok() && first_error.ok()) first_error = status;
  for (auto& shard : shards_) {
    status = shard->RunVerificationSweep();
    if (!status.ok() && first_error.ok()) first_error = status;
    shard->CommitDurable();
  }
  return first_error;
}

// ---- Durability ----

Status ShardedWarehouse::EnableDurability(const DurabilityOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurabilityOptions.dir is required");
  }
  bool recovered = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Warehouse::DurabilityOptions shard_options;
    shard_options.dir = options.dir + "/shard-" + std::to_string(i);
    shard_options.fsync = options.fsync;
    shard_options.checkpoint_interval_events =
        options.checkpoint_interval_events;
    shard_options.epoch = options.epoch;
    shard_options.owner = options.owner;
    GSV_RETURN_IF_ERROR(shards_[i]->EnableDurability(shard_options));
    const Warehouse::RecoveryReport& report = shards_[i]->recovery_report();
    if (report.views_restored + report.views_redefined +
                report.events_replayed >
            0 ||
        report.log_torn) {
      recovered = true;
    }
  }
  // The router's sequence domains continue where each shard's recovered
  // watermark left off.
  for (auto& route : sources_) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      route->next_out[i] = shards_[i]->last_delivered_sequence(route->name);
    }
  }
  if (recovered) {
    // Per-shard recovery replays ran against live peers that may not have
    // been recovered yet; redistribute what they exported and sweep so the
    // fleet settles on the current source state.
    GSV_RETURN_IF_ERROR(FlushForeignOps(/*commit_targets=*/false));
    for (auto& shard : shards_) {
      GSV_RETURN_IF_ERROR(shard->RunVerificationSweep());
      shard->CommitDurable();
    }
    // Recovered shards can also have restored views_ the coordinator has
    // not seen (DefineView was never called on this instance); learn them.
    view_names_.clear();
    // Shard 0 has every view: all shards define the same set.
    for (const std::string& name : shards_[0]->view_names()) {
      view_names_.push_back(name);
    }
  }
  return Status::Ok();
}

Status ShardedWarehouse::WriteCheckpoint() {
  for (auto& shard : shards_) {
    GSV_RETURN_IF_ERROR(shard->WriteCheckpoint());
  }
  return Status::Ok();
}

// ---- Queries ----

std::vector<Oid> ShardedWarehouse::ViewMembers(const std::string& name) {
  std::vector<std::vector<Oid>> runs;
  runs.reserve(shards_.size());
  for (auto& shard : shards_) {
    MaterializedView* slice = shard->view(name);
    if (slice != nullptr) runs.push_back(slice->BaseMembers().elements());
  }
  return MergeSortedOidRuns(std::move(runs));
}

std::vector<std::pair<Oid, std::string>> ShardedWarehouse::ViewContents(
    const std::string& name) {
  std::vector<std::vector<std::pair<Oid, std::string>>> runs;
  runs.reserve(shards_.size());
  size_t total = 0;
  for (auto& shard : shards_) {
    MaterializedView* slice = shard->view(name);
    if (slice == nullptr) continue;
    runs.push_back(ViewContentLines(*slice));
    total += runs.back().size();
  }
  // Same k-way merge as ViewMembers, over (OID, line) pairs.
  std::vector<std::pair<Oid, std::string>> merged;
  merged.reserve(total);
  std::vector<size_t> heads(runs.size(), 0);
  for (;;) {
    size_t best = runs.size();
    for (size_t i = 0; i < runs.size(); ++i) {
      if (heads[i] >= runs[i].size()) continue;
      if (best == runs.size() ||
          runs[i][heads[i]].first < runs[best][heads[best]].first) {
        best = i;
      }
    }
    if (best == runs.size()) break;
    merged.push_back(std::move(runs[best][heads[best]++]));
  }
  return merged;
}

ShardedViewExplanation ShardedWarehouse::ExplainView(const std::string& name) {
  ShardedViewExplanation explanation;
  explanation.view = name;
  explanation.shards = shard_count();
  for (auto& shard : shards_) {
    MaterializedView* slice = shard->view(name);
    size_t size = slice != nullptr ? slice->size() : 0;
    explanation.members_per_shard.push_back(size);
    explanation.total_members += size;
  }
  WarehouseCosts merged = MergedCosts();
  explanation.cross_shard_exports =
      merged.cross_shard_exports.load(std::memory_order_relaxed);
  explanation.cross_shard_applies =
      merged.cross_shard_applies.load(std::memory_order_relaxed);
  explanation.cross_shard_probes =
      merged.cross_shard_probes.load(std::memory_order_relaxed);
  return explanation;
}

WarehouseCosts ShardedWarehouse::MergedCosts() const {
  WarehouseCosts merged;
  for (const auto& shard : shards_) merged.Merge(shard->costs());
  return merged;
}

StoreMetrics ShardedWarehouse::MergedDelegateMetrics() const {
  StoreMetrics merged;
  for (const auto& store : stores_) merged.Merge(store->metrics());
  return merged;
}

}  // namespace gsv
