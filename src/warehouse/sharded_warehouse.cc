#include "warehouse/sharded_warehouse.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/virtual_view.h"
#include "query/evaluator.h"

namespace gsv {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// CPU time consumed by the calling thread. The parallel per-shard phases
// are timed with this rather than wall clock: when the pool's threads
// time-slice fewer cores than shards, wall clock charges every shard for
// its siblings' turns and max(eval) drifts toward the sum — the thread
// clock keeps DrainTiming's critical-path bound meaningful on any machine.
int64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
  }
#endif
  return NowMicros();
}

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

ShardedWarehouse::ShardedWarehouse(uint32_t shards, Options options) {
  if (!IsPowerOfTwo(shards)) {
    init_status_ =
        Status::InvalidArgument("shard count must be a power of two >= 1");
    shards = 1;
  }
  mask_ = shards - 1;
  stores_.reserve(shards);
  shards_.reserve(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    ObjectStore::Options store_options;
    store_options.engine_factory = options.engine_factory;
    stores_.push_back(std::make_unique<ObjectStore>(std::move(store_options)));
    auto warehouse = std::make_unique<Warehouse>(stores_.back().get());
    Status status = warehouse->BindShard(i, mask_, &directory_);
    if (!status.ok() && init_status_.ok()) init_status_ = status;
    shards_.push_back(std::move(warehouse));
  }
}

ShardedWarehouse::~ShardedWarehouse() {
  for (auto& source : sources_) {
    if (source->store != nullptr && source->monitor != nullptr) {
      source->store->RemoveListener(source->monitor.get());
    }
  }
}

// ---- Directory ----

bool ShardedWarehouse::Directory::ViewContains(const std::string& view,
                                               const Oid& base) const {
  if (frozen_) {
    // The owner's slice holds the member iff the whole view does, so the
    // snapshot keeps per-shard slices (cheap copies) instead of unioning
    // them — Freeze() runs serially on the coordinator every drain.
    auto it = snapshot_.find(view);
    if (it == snapshot_.end()) return false;
    return it->second[ShardOfOid(base, owner_->mask_)].Contains(base);
  }
  // Live probe: straight to the owner's current slice.
  Warehouse& owner = *owner_->shards_[ShardOfOid(base, owner_->mask_)];
  MaterializedView* slice = owner.view(view);
  return slice != nullptr && slice->ContainsBase(base);
}

void ShardedWarehouse::Directory::Freeze() {
  snapshot_.clear();
  for (const std::string& name : owner_->view_names_) {
    std::vector<OidSet> slices(owner_->shards_.size());
    for (size_t i = 0; i < owner_->shards_.size(); ++i) {
      MaterializedView* slice = owner_->shards_[i]->view(name);
      if (slice != nullptr) slices[i] = slice->BaseMembers();
    }
    snapshot_[name] = std::move(slices);
  }
  frozen_ = true;
}

// ---- Coordinator-owned general engines ----

bool ShardedWarehouse::CoordStorage::ContainsBase(const Oid& base_oid) const {
  Warehouse& owner = *owner_->shards_[ShardOfOid(base_oid, owner_->mask_)];
  MaterializedView* slice = owner.view(view_);
  return slice != nullptr && slice->ContainsBase(base_oid);
}

Status ShardedWarehouse::CoordStorage::VInsert(const Object& base_object) {
  ForeignViewOp op;
  op.kind = ForeignViewOp::Kind::kVInsert;
  op.view = view_;
  op.object = base_object;
  owner_->coord_outbox_.push_back(std::move(op));
  return Status::Ok();
}

Status ShardedWarehouse::CoordStorage::VDelete(const Oid& base_oid) {
  ForeignViewOp op;
  op.kind = ForeignViewOp::Kind::kVDelete;
  op.view = view_;
  op.base_oid = base_oid;
  owner_->coord_outbox_.push_back(std::move(op));
  return Status::Ok();
}

OidSet ShardedWarehouse::CoordStorage::BaseMembers() const {
  OidSet members;
  for (auto& shard : owner_->shards_) {
    MaterializedView* slice = shard->view(view_);
    if (slice != nullptr) members = OidSet::Union(members, slice->BaseMembers());
  }
  return members;
}

Status ShardedWarehouse::EnsureCoordView(const std::string& name) {
  Warehouse& shard0 = *shards_[0];
  if (shard0.view_engine(name) == Warehouse::EngineKind::kAlgorithm1) {
    return Status::Ok();
  }
  for (const auto& view : coord_views_) {
    if (view->name == name) return Status::Ok();
  }
  GSV_ASSIGN_OR_RETURN(ViewDefinition def,
                       ViewDefinition::Parse(shard0.view_definition_text(name)));
  const std::string source_name = shard0.view_source(name);
  size_t source_index = sources_.size();
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i]->name == source_name) {
      source_index = i;
      break;
    }
  }
  if (source_index == sources_.size()) {
    return Status::NotFound("source '" + source_name +
                            "' of coordinator view " + name +
                            " is not connected");
  }
  MaterializedView* slice = shard0.view(name);
  if (slice == nullptr) {
    return Status::NotFound("view " + name + " missing from shard 0");
  }
  SourceRoute& route = *sources_[source_index];
  auto view = std::make_unique<CoordView>();
  view->name = name;
  view->source_index = source_index;
  view->def = std::make_unique<ViewDefinition>(std::move(def));
  view->engine = shard0.view_engine(name);
  view->storage = std::make_unique<CoordStorage>(this, name, slice->view_oid());
  if (view->engine == Warehouse::EngineKind::kGdn) {
    view->gdn = std::make_unique<GdnEngine>(route.store, *view->def, route.root);
    GSV_RETURN_IF_ERROR(view->gdn->Initialize());
  } else {
    view->general = std::make_unique<GeneralMaintainer>(
        view->storage.get(), route.store, *view->def, route.root);
  }
  coord_views_.push_back(std::move(view));
  return Status::Ok();
}

void ShardedWarehouse::ApplyCoordEvent(size_t source_index,
                                       const UpdateEvent& event) {
  Update update = event.ToUpdate();
  if (update.kind == UpdateKind::kModify) {
    // The engines re-read store truth, so re-stamp the new value from the
    // source — level-1 events carry none.
    const Object* object = sources_[source_index]->store->Get(update.parent);
    if (object != nullptr && object->IsAtomic()) {
      update = Update::Modify(update.parent, update.old_value, object->value());
    }
  }
  for (auto& view : coord_views_) {
    if (view->source_index != source_index) continue;
    Status status;
    if (view->gdn != nullptr) {
      status = view->gdn->Apply(update, view->storage.get());
      if (!status.ok() && view->gdn->poisoned()) {
        // Self-heal in place: rebuild from the current base state, then
        // emit whatever deltas the shard slices are missing. Duplicate ops
        // are §4.3 no-ops at the owners, so healing mid-batch is safe.
        status = view->gdn->Rebuild();
        if (status.ok()) status = view->gdn->Reconcile(view->storage.get());
      }
    } else if (view->general != nullptr) {
      status = view->general->Maintain(update);
    }
    if (!status.ok() && coord_error_.ok()) coord_error_ = status;
  }
}

Status ShardedWarehouse::ApplyCoordPending() {
  std::vector<std::pair<size_t, UpdateEvent>> pending;
  pending.swap(coord_pending_);
  for (const auto& [source_index, event] : pending) {
    ApplyCoordEvent(source_index, event);
  }
  return std::exchange(coord_error_, Status::Ok());
}

Status ShardedWarehouse::ReconcileCoordView(CoordView& view) {
  if (view.gdn != nullptr) return view.gdn->Reconcile(view.storage.get());
  // GeneralMaintainer keeps no network state; diff a fresh §4.4 evaluation
  // against the recovered slices instead.
  SourceRoute& route = *sources_[view.source_index];
  GSV_ASSIGN_OR_RETURN(OidSet truth, EvaluateView(*route.store, *view.def));
  const OidSet current = view.storage->BaseMembers();
  for (const Oid& member : truth) {
    if (current.Contains(member)) continue;
    const Object* object = route.store->Get(member);
    if (object == nullptr) continue;
    GSV_RETURN_IF_ERROR(view.storage->VInsert(*object));
  }
  for (const Oid& member : current) {
    if (!truth.Contains(member)) {
      GSV_RETURN_IF_ERROR(view.storage->VDelete(member));
    }
  }
  return Status::Ok();
}

// ---- Topology ----

Status ShardedWarehouse::ConnectSource(ObjectStore* source, Oid source_root,
                                       ReportingLevel level,
                                       std::string name) {
  GSV_RETURN_IF_ERROR(init_status_);
  if (name.empty()) name = "source" + std::to_string(sources_.size() + 1);
  for (auto& shard : shards_) {
    GSV_RETURN_IF_ERROR(shard->ConnectSourceRouted(source, source_root, name));
  }
  auto route = std::make_unique<SourceRoute>();
  route->name = name;
  route->store = source;
  route->root = source_root;  // before the move below consumes it
  route->next_out.assign(shards_.size(), 0);
  size_t index = sources_.size();
  route->monitor = std::make_unique<SourceMonitor>(
      level, std::move(source_root),
      [this, index](const UpdateEvent& event) { RouteEvent(index, event); });
  source->AddListener(route->monitor.get());
  sources_.push_back(std::move(route));
  return Status::Ok();
}

Status ShardedWarehouse::DefineView(std::string_view definition,
                                    const std::string& source_name) {
  GSV_RETURN_IF_ERROR(init_status_);
  GSV_ASSIGN_OR_RETURN(ViewDefinition def, ViewDefinition::Parse(definition));
  for (auto& shard : shards_) {
    GSV_RETURN_IF_ERROR(
        shard->DefineView(definition, Warehouse::CacheMode::kNone,
                          source_name));
  }
  view_names_.push_back(def.name());
  // Non-simple views get a coordinator-owned engine; the per-shard entries
  // above are "external" (delegate slices + value sync only).
  GSV_RETURN_IF_ERROR(EnsureCoordView(def.name()));
  return Status::Ok();
}

void ShardedWarehouse::SetPathKnowledge(PathKnowledge knowledge) {
  for (auto& shard : shards_) shard->SetPathKnowledge(knowledge);
}

void ShardedWarehouse::set_deferred(bool deferred) {
  deferred_ = deferred;
  for (auto& shard : shards_) shard->set_deferred(deferred);
}

size_t ShardedWarehouse::pending_events() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_events();
  return total;
}

// ---- Routing ----

void ShardedWarehouse::RouteEvent(size_t source_index,
                                  const UpdateEvent& event) {
  SourceRoute& route = *sources_[source_index];
  const uint32_t target = RouteShardOf(event, mask_);
  UpdateEvent stamped = event;
  // Each (source, shard) pair is its own 1-based sequence domain; the
  // target shard's integrator does duplicate-drop / gap-detection on it
  // exactly as an unsharded warehouse would on the monitor's numbering.
  stamped.sequence = ++route.next_out[target];
  shards_[target]->InjectRoutedEvent(source_index, stamped);
  if (!coord_views_.empty()) {
    // The coordinator engines see every routed event — ahead of the
    // per-shard fault injectors, so a dropped delivery can stale a shard's
    // slice (the resync path heals it) but never the network state.
    if (deferred_) {
      coord_pending_.emplace_back(source_index, event);
    } else {
      ApplyCoordEvent(source_index, event);
    }
  }
  if (!deferred_) {
    // Inline dispatch already applied the event at the owner; deliver its
    // cross-shard effects (and commit the shards they landed on) now so
    // every shard is consistent before the next event arrives.
    FlushForeignOps(/*commit_targets=*/true);
  }
}

Status ShardedWarehouse::FlushForeignOps(bool commit_targets,
                                         std::vector<bool>* applied_out) {
  std::vector<std::vector<ForeignViewOp>> taken;
  taken.reserve(shards_.size() + 1);
  // The coordinator engines' outbox delivers first, then each producer
  // shard's, in deterministic (producer, op) order.
  taken.push_back(std::move(coord_outbox_));
  coord_outbox_.clear();
  for (size_t i = 0; i < shards_.size(); ++i) {
    taken.push_back(shards_[i]->TakeForeignOps());
  }
  std::vector<bool> owes(shards_.size(), false);
  for (const std::vector<ForeignViewOp>& ops : taken) {
    for (const ForeignViewOp& op : ops) {
      owes[OwnerOfOp(op, mask_)] = true;
    }
  }
  Status first_error;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!owes[i]) continue;
    for (const std::vector<ForeignViewOp>& ops : taken) {
      Status status = shards_[i]->ApplyForeignOps(ops);
      if (!status.ok() && first_error.ok()) first_error = status;
    }
    if (applied_out != nullptr) (*applied_out)[i] = true;
    if (commit_targets) shards_[i]->CommitDurable();
  }
  return first_error;
}

ThreadPool* ShardedWarehouse::Pool(size_t threads) {
  if (pool_ == nullptr || pool_threads_ != threads) {
    pool_.reset();
    pool_ = std::make_unique<ThreadPool>(threads);
    pool_threads_ = threads;
  }
  return pool_.get();
}

// ---- Coordinated drain ----

Status ShardedWarehouse::ProcessPendingBatch(size_t threads) {
  const size_t shard_count = shards_.size();
  DrainTiming timing;
  timing.eval_micros.assign(shard_count, 0);
  timing.sweep_micros.assign(shard_count, 0);
  const int64_t t0 = NowMicros();

  // Freeze the membership directory: every shard's Algorithm 1 pass (and
  // its level-1 rechecks) evaluates the same pre-drain membership, mirroring
  // how batch workers within one warehouse share the frozen final base.
  directory_.Freeze();
  std::vector<bool> active(shard_count, false);
  for (size_t i = 0; i < shard_count; ++i) {
    active[i] = shards_[i]->pending_events() > 0 ||
                shards_[i]->stale_view_count() > 0;
  }

  // Phase A: per-shard drains in parallel. Concurrency comes from the shard
  // fan-out; inside each shard the batch engine runs single-threaded
  // (threads=1), with its sweep and commit deferred to the coordinator.
  ThreadPool* pool = Pool(std::min(threads, shard_count));
  std::vector<Status> statuses(shard_count);
  const int64_t par_begin = NowMicros();
  for (size_t i = 0; i < shard_count; ++i) {
    if (!active[i]) continue;
    pool->Submit([this, i, &statuses, &timing] {
      const int64_t start = ThreadCpuMicros();
      Warehouse::BatchOptions options;
      options.threads = 1;
      options.run_sweep = false;
      options.log_commit = false;
      statuses[i] = shards_[i]->ProcessPendingBatch(options);
      timing.eval_micros[i] = ThreadCpuMicros() - start;
    });
  }
  pool->Wait();
  const int64_t par_end = NowMicros();

  Status first_error;
  for (const Status& status : statuses) {
    if (!status.ok() && first_error.ok()) first_error = status;
  }

  // Phase B: deliver the outboxes — the per-batch barrier that makes
  // cross-shard edges land before anything downstream observes the batch.
  // The only serial work is taking the producer outboxes (K vector moves)
  // and counting ops per owner; the ops themselves are never moved. Every
  // owner then scans all outboxes in deterministic (producer shard, op)
  // order and ApplyForeignOps filters to the ops it owns, so delivery runs
  // on the pool with its CPU time charged to the owner's eval share.
  std::vector<std::vector<ForeignViewOp>> taken(shard_count);
  std::vector<bool> applied(shard_count, false);
  for (size_t i = 0; i < shard_count; ++i) {
    taken[i] = shards_[i]->TakeForeignOps();
    for (const ForeignViewOp& op : taken[i]) {
      applied[OwnerOfOp(op, mask_)] = true;
    }
  }
  const int64_t serial_end = NowMicros();

  std::vector<Status> apply_statuses(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    if (!applied[i]) continue;
    pool->Submit([this, i, &taken, &apply_statuses, &timing] {
      const int64_t start = ThreadCpuMicros();
      Status first;
      for (const std::vector<ForeignViewOp>& ops : taken) {
        Status status = shards_[i]->ApplyForeignOps(ops);
        if (!status.ok() && first.ok()) first = status;
      }
      apply_statuses[i] = first;
      timing.eval_micros[i] += ThreadCpuMicros() - start;
    });
  }
  pool->Wait();
  for (const Status& status : apply_statuses) {
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  directory_.Thaw();

  // Phase B2: the coordinator-owned engines for the generalized views apply
  // the batch against the final source state (each Apply re-reads store
  // truth, so interleaving across sources is immaterial) and queue their
  // membership deltas; the flush below delivers them before commit. Runs on
  // the coordinator thread — one engine per view, no shard writes.
  if (!coord_pending_.empty()) {
    Status coord_status = ApplyCoordPending();
    if (!coord_status.ok() && first_error.ok()) first_error = coord_status;
  }

  // Phase C: verification sweeps, parallel again. Only shards that saw
  // events, applied foreign ops, or resynced can hold stale extras; a sweep
  // of a consistent view is a no-op, so skipping the rest preserves
  // byte-identity while saving the query-backs.
  std::vector<Status> sweep_statuses(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    if (!active[i] && !applied[i]) continue;
    pool->Submit([this, i, &sweep_statuses, &timing] {
      const int64_t start = ThreadCpuMicros();
      sweep_statuses[i] = shards_[i]->RunVerificationSweep();
      timing.sweep_micros[i] = ThreadCpuMicros() - start;
    });
  }
  pool->Wait();
  const int64_t sweep_end = NowMicros();
  for (const Status& status : sweep_statuses) {
    if (!status.ok() && first_error.ok()) first_error = status;
  }

  // A resync during the drain prologue exports recompute-derived members,
  // and Phase B2 queued the coordinator engines' deltas; deliver both, then
  // close every participating shard's durability group — including shards
  // whose only change this batch was a coordinator delta landing on them.
  std::vector<bool> flush_applied(shard_count, false);
  Status flush_status = FlushForeignOps(/*commit_targets=*/false,
                                        &flush_applied);
  if (!flush_status.ok() && first_error.ok()) first_error = flush_status;
  for (size_t i = 0; i < shard_count; ++i) {
    if (active[i] || applied[i] || flush_applied[i]) shards_[i]->CommitDurable();
  }

  const int64_t end = NowMicros();
  timing.serial_micros =
      (par_begin - t0) + (serial_end - par_end) + (end - sweep_end);
  timings_.push_back(std::move(timing));
  return first_error;
}

// ---- Fault tolerance ----

Status ShardedWarehouse::SetFaultInjector(const std::string& source_name,
                                          uint32_t shard_index,
                                          FaultInjector* injector) {
  if (shard_index >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  return shards_[shard_index]->SetFaultInjector(source_name, injector);
}

size_t ShardedWarehouse::stale_view_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->stale_view_count();
  return total;
}

Status ShardedWarehouse::ResyncStaleViews() {
  Status first_error = std::exchange(coord_error_, Status::Ok());
  for (auto& shard : shards_) {
    Status status = shard->ResyncStaleViews();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  // The recomputes exported the foreign members they derived; deliver them,
  // then sweep everywhere — peers may hold stale extras from deletes the
  // lost events never propagated.
  Status status = FlushForeignOps(/*commit_targets=*/false);
  if (!status.ok() && first_error.ok()) first_error = status;
  for (auto& shard : shards_) {
    status = shard->RunVerificationSweep();
    if (!status.ok() && first_error.ok()) first_error = status;
    shard->CommitDurable();
  }
  return first_error;
}

// ---- Durability ----

Status ShardedWarehouse::EnableDurability(const DurabilityOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurabilityOptions.dir is required");
  }
  bool recovered = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Warehouse::DurabilityOptions shard_options;
    shard_options.dir = options.dir + "/shard-" + std::to_string(i);
    shard_options.fsync = options.fsync;
    shard_options.checkpoint_interval_events =
        options.checkpoint_interval_events;
    shard_options.epoch = options.epoch;
    shard_options.owner = options.owner;
    GSV_RETURN_IF_ERROR(shards_[i]->EnableDurability(shard_options));
    const Warehouse::RecoveryReport& report = shards_[i]->recovery_report();
    if (report.views_restored + report.views_redefined +
                report.events_replayed >
            0 ||
        report.log_torn) {
      recovered = true;
    }
  }
  // The router's sequence domains continue where each shard's recovered
  // watermark left off.
  for (auto& route : sources_) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      route->next_out[i] = shards_[i]->last_delivered_sequence(route->name);
    }
  }
  if (recovered) {
    // Recovered shards can have restored views the coordinator has not
    // seen (DefineView was never called on this instance); learn them.
    view_names_.clear();
    // Shard 0 has every view: all shards define the same set.
    for (const std::string& name : shards_[0]->view_names()) {
      view_names_.push_back(name);
    }
    // Rebuild the coordinator-owned engines for the generalized views.
    // Their network state is not checkpointed at the shard level, so they
    // re-derive it from the current source; Reconcile then queues whatever
    // deltas the recovered slices are missing (WAL tail events the shards
    // replayed only as value syncs).
    coord_views_.clear();
    for (const std::string& name : view_names_) {
      GSV_RETURN_IF_ERROR(EnsureCoordView(name));
    }
    for (auto& view : coord_views_) {
      GSV_RETURN_IF_ERROR(ReconcileCoordView(*view));
    }
    // Per-shard recovery replays ran against live peers that may not have
    // been recovered yet; redistribute what they exported (plus the
    // coordinator reconcile fixes) and sweep so the fleet settles on the
    // current source state.
    GSV_RETURN_IF_ERROR(FlushForeignOps(/*commit_targets=*/false));
    for (auto& shard : shards_) {
      GSV_RETURN_IF_ERROR(shard->RunVerificationSweep());
      shard->CommitDurable();
    }
  }
  return Status::Ok();
}

Status ShardedWarehouse::WriteCheckpoint() {
  for (auto& shard : shards_) {
    GSV_RETURN_IF_ERROR(shard->WriteCheckpoint());
  }
  return Status::Ok();
}

// ---- Queries ----

std::vector<Oid> ShardedWarehouse::ViewMembers(const std::string& name) {
  std::vector<std::vector<Oid>> runs;
  runs.reserve(shards_.size());
  for (auto& shard : shards_) {
    MaterializedView* slice = shard->view(name);
    if (slice != nullptr) runs.push_back(slice->BaseMembers().elements());
  }
  return MergeSortedOidRuns(std::move(runs));
}

std::vector<std::pair<Oid, std::string>> ShardedWarehouse::ViewContents(
    const std::string& name) {
  std::vector<std::vector<std::pair<Oid, std::string>>> runs;
  runs.reserve(shards_.size());
  size_t total = 0;
  for (auto& shard : shards_) {
    MaterializedView* slice = shard->view(name);
    if (slice == nullptr) continue;
    runs.push_back(ViewContentLines(*slice));
    total += runs.back().size();
  }
  // Same k-way merge as ViewMembers, over (OID, line) pairs.
  std::vector<std::pair<Oid, std::string>> merged;
  merged.reserve(total);
  std::vector<size_t> heads(runs.size(), 0);
  for (;;) {
    size_t best = runs.size();
    for (size_t i = 0; i < runs.size(); ++i) {
      if (heads[i] >= runs[i].size()) continue;
      if (best == runs.size() ||
          runs[i][heads[i]].first < runs[best][heads[best]].first) {
        best = i;
      }
    }
    if (best == runs.size()) break;
    merged.push_back(std::move(runs[best][heads[best]++]));
  }
  return merged;
}

ShardedViewExplanation ShardedWarehouse::ExplainView(const std::string& name) {
  ShardedViewExplanation explanation;
  explanation.view = name;
  explanation.shards = shard_count();
  for (auto& shard : shards_) {
    MaterializedView* slice = shard->view(name);
    size_t size = slice != nullptr ? slice->size() : 0;
    explanation.members_per_shard.push_back(size);
    explanation.total_members += size;
  }
  for (const auto& view : coord_views_) {
    if (view->name != name) continue;
    explanation.engine =
        view->engine == Warehouse::EngineKind::kGdn ? "gdn" : "general";
    if (view->gdn != nullptr) {
      explanation.gdn_nodes = view->gdn->node_count();
      explanation.gdn_matches = view->gdn->match_count();
      explanation.gdn_propagations = view->gdn->stats().propagations;
      explanation.gdn_rebuilds = view->gdn->stats().rebuilds;
    }
    if (view->general != nullptr) {
      explanation.general_caps_hit = view->general->stats().caps_hit;
    }
    break;
  }
  if (explanation.engine.empty() && shards_[0]->view(name) != nullptr) {
    explanation.engine = "algorithm1";
  }
  WarehouseCosts merged = MergedCosts();
  explanation.cross_shard_exports =
      merged.cross_shard_exports.load(std::memory_order_relaxed);
  explanation.cross_shard_applies =
      merged.cross_shard_applies.load(std::memory_order_relaxed);
  explanation.cross_shard_probes =
      merged.cross_shard_probes.load(std::memory_order_relaxed);
  return explanation;
}

WarehouseCosts ShardedWarehouse::MergedCosts() const {
  WarehouseCosts merged;
  for (const auto& shard : shards_) merged.Merge(shard->costs());
  // The coordinator-owned engines sit on no shard's sheet; fold their
  // counters in here (shard entries for these views carry no engines, so
  // nothing double-counts).
  for (const auto& view : coord_views_) {
    if (view->gdn != nullptr) {
      const GdnEngine::Stats& stats = view->gdn->stats();
      merged.gdn_propagations.fetch_add(stats.propagations,
                                        std::memory_order_relaxed);
      merged.gdn_matches_created.fetch_add(stats.matches_created,
                                           std::memory_order_relaxed);
      merged.gdn_matches_freed.fetch_add(stats.matches_freed,
                                         std::memory_order_relaxed);
      merged.gdn_rebuilds.fetch_add(stats.rebuilds, std::memory_order_relaxed);
    }
    if (view->general != nullptr) {
      merged.general_caps_hit.fetch_add(view->general->stats().caps_hit,
                                        std::memory_order_relaxed);
    }
  }
  return merged;
}

StoreMetrics ShardedWarehouse::MergedDelegateMetrics() const {
  StoreMetrics merged;
  for (const auto& store : stores_) merged.Merge(store->metrics());
  return merged;
}

}  // namespace gsv
