#include "warehouse/remote_accessor.h"

#include "util/retry.h"

namespace gsv {

std::vector<Path> RemoteAccessor::PathsFromRoot(const Oid& root,
                                                const Oid& n) {
  ++stats_.paths_from_root;
  // Level 3 events carry path(ROOT, N) for the affected object.
  if (event_ != nullptr && event_->level >= ReportingLevel::kWithRootPath &&
      event_->parent == n) {
    Hit();
    if (!event_->root_path.has_value()) return {};  // unreachable from root
    return {event_->root_path->labels};
  }
  if (cache_ != nullptr) {
    Hit();
    return cache_->CorridorPathsFromRoot(n);
  }
  Miss();
  Result<std::vector<Path>> paths = wrapper_->FetchPathsFromRoot(root, n);
  if (!paths.ok()) {
    NoteError(paths.status());
    return {};
  }
  return std::move(paths).value();
}

std::vector<Oid> RemoteAccessor::Ancestors(const Oid& n, const Path& p) {
  ++stats_.ancestor_calls;
  if (p.empty()) {
    Hit();
    return {n};
  }
  if (cache_ != nullptr) {
    Hit();
    return cache_->Ancestors(n, p);
  }
  Miss();
  Result<std::vector<Oid>> ancestors = wrapper_->FetchAncestors(n, p);
  if (!ancestors.ok()) {
    NoteError(ancestors.status());
    return {};
  }
  return std::move(ancestors).value();
}

std::vector<Oid> RemoteAccessor::Eval(const Oid& n, const Path& p,
                                      const std::optional<Predicate>& pred) {
  ++stats_.eval_calls;
  auto filter = [&](const std::vector<Object>& objects) {
    std::vector<Oid> out;
    for (const Object& object : objects) {
      if (!pred.has_value()) {
        out.push_back(object.oid());
      } else if (object.IsAtomic() && pred->Holds(object.value())) {
        out.push_back(object.oid());
      }
    }
    return out;
  };

  // eval(N2, ∅, cond) right after an insert/delete of N2: the level-2
  // event snapshot answers it without any query (the §5.1 screening win).
  if (p.empty() && event_ != nullptr && event_->child == n &&
      event_->child_object.has_value()) {
    Hit();
    return filter({*event_->child_object});
  }
  if (cache_ != nullptr) {
    std::optional<std::vector<Object>> cached = cache_->EvalObjects(n, p);
    if (cached.has_value()) {
      Hit();
      return filter(*cached);
    }
    // Partial cache: structure known, values missing (§5.2).
  }
  Miss();
  Result<std::vector<Object>> objects = wrapper_->FetchPathObjects(n, p);
  if (!objects.ok()) {
    NoteError(objects.status());
    return {};
  }
  return filter(*objects);
}

bool RemoteAccessor::VerifyPath(const Oid& root, const Oid& y,
                                const Path& p) {
  ++stats_.verify_calls;
  if (cache_ != nullptr) {
    Hit();
    return cache_->VerifyPath(y, p);
  }
  Miss();
  Result<bool> verified = wrapper_->VerifyPath(root, y, p);
  if (!verified.ok()) {
    NoteError(verified.status());
    return false;
  }
  return *verified;
}

Result<Object> RemoteAccessor::Fetch(const Oid& oid) {
  ++stats_.fetches;
  if (event_ != nullptr) {
    if (event_->child_object.has_value() &&
        event_->child_object->oid() == oid) {
      Hit();
      return *event_->child_object;
    }
    if (event_->parent_object.has_value() &&
        event_->parent_object->oid() == oid) {
      Hit();
      return *event_->parent_object;
    }
  }
  if (cache_ != nullptr) {
    Result<Object> cached = cache_->Fetch(oid);
    if (cached.ok()) {
      Hit();
      return cached;
    }
  }
  Miss();
  Result<Object> fetched = wrapper_->FetchObject(oid);
  if (!fetched.ok() && IsSourceFailure(fetched.status())) {
    NoteError(fetched.status());
  }
  return fetched;
}

}  // namespace gsv
