#ifndef GSV_WAREHOUSE_REMOTE_ACCESSOR_H_
#define GSV_WAREHOUSE_REMOTE_ACCESSOR_H_

#include "core/base_accessor.h"
#include "warehouse/aux_cache.h"
#include "warehouse/update_event.h"
#include "warehouse/wrapper.h"

namespace gsv {

// The warehouse-side implementation of Algorithm 1's base-access functions
// (§5.1): each call is answered, in order of preference, from
//   1. the current update event (levels 2/3 carry values and root paths),
//   2. the auxiliary cache, when configured (§5.2),
//   3. a query back to the source through the wrapper (metered).
//
// The accessor is bound to one view's corridor: PathsFromRoot answers are
// the derivations relevant to that view's sel/cond prefix matching, which
// is all Algorithm 1 consumes.
class RemoteAccessor : public BaseAccessor {
 public:
  RemoteAccessor(SourceWrapper* wrapper, WarehouseCosts* costs)
      : wrapper_(wrapper), costs_(costs) {}

  // Optional §5.2 cache; not owned.
  void set_cache(AuxiliaryCache* cache) { cache_ = cache; }
  // The event being processed (nullptr between events); not owned.
  void set_current_event(const UpdateEvent* event) { event_ = event; }

  std::vector<Path> PathsFromRoot(const Oid& root, const Oid& n) override;
  std::vector<Oid> Ancestors(const Oid& n, const Path& p) override;
  std::vector<Oid> Eval(const Oid& n, const Path& p,
                        const std::optional<Predicate>& pred) override;
  bool VerifyPath(const Oid& root, const Oid& y, const Path& p) override;
  Result<Object> Fetch(const Oid& oid) override;

 private:
  void Hit() { ++costs_->cache_hits; }
  void Miss() { ++costs_->cache_misses; }

  SourceWrapper* wrapper_;
  WarehouseCosts* costs_;
  AuxiliaryCache* cache_ = nullptr;
  const UpdateEvent* event_ = nullptr;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_REMOTE_ACCESSOR_H_
