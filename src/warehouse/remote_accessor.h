#ifndef GSV_WAREHOUSE_REMOTE_ACCESSOR_H_
#define GSV_WAREHOUSE_REMOTE_ACCESSOR_H_

#include "core/base_accessor.h"
#include "warehouse/aux_cache.h"
#include "warehouse/update_event.h"
#include "warehouse/wrapper.h"

namespace gsv {

// The warehouse-side implementation of Algorithm 1's base-access functions
// (§5.1): each call is answered, in order of preference, from
//   1. the current update event (levels 2/3 carry values and root paths),
//   2. the auxiliary cache, when configured (§5.2),
//   3. a query back to the source through the wrapper (metered).
//
// The accessor is bound to one view's corridor: PathsFromRoot answers are
// the derivations relevant to that view's sel/cond prefix matching, which
// is all Algorithm 1 consumes.
//
// BaseAccessor's interface is infallible (Algorithm 1 predates the fault
// layer), so a failed query-back cannot propagate through the return value:
// the accessor records the first wrapper error in `last_error()` and
// answers with the empty/false fallback. Callers that care about source
// health — the warehouse integrator and the batch engine — ClearError()
// before a maintenance step and inspect last_error() after it; an
// Unavailable/DeadlineExceeded error quarantines the view instead of
// trusting the fallback answer.
class RemoteAccessor : public BaseAccessor {
 public:
  RemoteAccessor(SourceWrapper* wrapper, WarehouseCosts* costs)
      : wrapper_(wrapper), costs_(costs) {}

  // Optional §5.2 cache; not owned.
  void set_cache(AuxiliaryCache* cache) { cache_ = cache; }
  // The event being processed (nullptr between events); not owned.
  void set_current_event(const UpdateEvent* event) { event_ = event; }

  // First wrapper failure since the last ClearError (Ok when none).
  const Status& last_error() const { return error_; }
  void ClearError() { error_ = Status::Ok(); }

  std::vector<Path> PathsFromRoot(const Oid& root, const Oid& n) override;
  std::vector<Oid> Ancestors(const Oid& n, const Path& p) override;
  std::vector<Oid> Eval(const Oid& n, const Path& p,
                        const std::optional<Predicate>& pred) override;
  bool VerifyPath(const Oid& root, const Oid& y, const Path& p) override;
  Result<Object> Fetch(const Oid& oid) override;

 private:
  void Hit() { ++costs_->cache_hits; }
  void Miss() { ++costs_->cache_misses; }
  void NoteError(const Status& status) {
    if (error_.ok()) error_ = status;
  }

  SourceWrapper* wrapper_;
  WarehouseCosts* costs_;
  AuxiliaryCache* cache_ = nullptr;
  const UpdateEvent* event_ = nullptr;
  Status error_ = Status::Ok();
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_REMOTE_ACCESSOR_H_
