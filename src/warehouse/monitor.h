#ifndef GSV_WAREHOUSE_MONITOR_H_
#define GSV_WAREHOUSE_MONITOR_H_

#include <functional>

#include "oem/store.h"
#include "oem/update.h"
#include "warehouse/update_event.h"

namespace gsv {

// The source monitor of Figure 6: "each source is also associated with a
// source monitor that detects the update events as described in Section 4.1
// and reports them to the warehouse." The monitor is an UpdateListener on
// the source store and forwards an UpdateEvent — carrying as much
// information as its configured ReportingLevel allows — to a sink (the
// warehouse's integrator).
class SourceMonitor : public UpdateListener {
 public:
  using EventSink = std::function<void(const UpdateEvent&)>;

  // `root` is the source database root that level-3 paths are reported
  // from (the source traverses from its root while applying updates, §5.1).
  SourceMonitor(ReportingLevel level, Oid root, EventSink sink)
      : level_(level), root_(std::move(root)), sink_(std::move(sink)) {}

  void OnUpdate(const ObjectStore& store, const Update& update) override;

  ReportingLevel level() const { return level_; }
  void set_level(ReportingLevel level) { level_ = level; }

 private:
  ReportingLevel level_;
  Oid root_;
  EventSink sink_;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_MONITOR_H_
