#ifndef GSV_WAREHOUSE_MONITOR_H_
#define GSV_WAREHOUSE_MONITOR_H_

#include <cstdint>
#include <functional>

#include "oem/store.h"
#include "oem/update.h"
#include "warehouse/update_event.h"

namespace gsv {

// The source monitor of Figure 6: "each source is also associated with a
// source monitor that detects the update events as described in Section 4.1
// and reports them to the warehouse." The monitor is an UpdateListener on
// the source store and forwards an UpdateEvent — carrying as much
// information as its configured ReportingLevel allows — to a sink (the
// warehouse's integrator). Every event is stamped with a monotone 1-based
// sequence number so the integrator can detect duplicated and lost
// deliveries on an unreliable channel.
class SourceMonitor : public UpdateListener {
 public:
  using EventSink = std::function<void(const UpdateEvent&)>;

  // `root` is the source database root that level-3 paths are reported
  // from (the source traverses from its root while applying updates, §5.1).
  SourceMonitor(ReportingLevel level, Oid root, EventSink sink)
      : level_(level), root_(std::move(root)), sink_(std::move(sink)) {}

  void OnUpdate(const ObjectStore& store, const Update& update) override;

  ReportingLevel level() const { return level_; }
  void set_level(ReportingLevel level) { level_ = level; }
  // Sequence number of the most recently emitted event (0 = none yet).
  uint64_t last_sequence() const { return sequence_; }
  // Restores the sequence counter after a warehouse recovery, so events
  // emitted post-restart continue the numbering the recovered watermark
  // left off at (the integrator expects n+1 next).
  void set_last_sequence(uint64_t sequence) { sequence_ = sequence; }

 private:
  ReportingLevel level_;
  Oid root_;
  EventSink sink_;
  uint64_t sequence_ = 0;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_MONITOR_H_
