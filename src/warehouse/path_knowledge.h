#ifndef GSV_WAREHOUSE_PATH_KNOWLEDGE_H_
#define GSV_WAREHOUSE_PATH_KNOWLEDGE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "oem/value.h"
#include "path/path.h"

namespace gsv {

// "Knowledge of paths that can never occur or always occur at the source"
// (§5.2 closing remark): a partial schema mapping an object label to the
// closed set of child labels it may have — the DataGuide-style constraint
// [GW97] the paper cites. Labels without an entry are open (anything may
// appear below them).
//
// The warehouse uses this to skip updates that cannot possibly lie on a
// view's sel/cond corridor: e.g. with the knowledge "student objects have
// no salary children", a view over ROOT.student.? is unaffected by any
// modify of a salary object (the paper's example).
class PathKnowledge {
 public:
  // Declares the complete child-label vocabulary of `parent_label`.
  void SetChildLabels(const std::string& parent_label,
                      std::vector<std::string> labels);

  bool HasKnowledgeFor(const std::string& parent_label) const;

  // True if an object labeled `parent_label` may have a `child_label`
  // child (true when nothing is known about the parent label).
  bool MayHaveChild(const std::string& parent_label,
                    const std::string& child_label) const;

  // Length of the longest prefix of `path` that can occur below an object
  // labeled `root_label`: position i is feasible iff position i-1 is and
  // MayHaveChild(label_{i-1}, label_i). Returns path.size() when the whole
  // chain is possible.
  size_t FeasiblePrefix(const std::string& root_label,
                        const Path& path) const;

 private:
  std::unordered_map<std::string, std::vector<std::string>> allowed_;
};

class ObjectStore;

// Derives closed-world knowledge from a data snapshot, DataGuide-style
// [GW97]: for every label reachable from `root`, the set of child labels
// observed below objects carrying it. Sound for screening only while the
// source honors the derived schema; re-derive (or hand-author weaker
// knowledge) if the source's structure may drift.
PathKnowledge BuildPathKnowledge(const ObjectStore& store, const Oid& root);

}  // namespace gsv

#endif  // GSV_WAREHOUSE_PATH_KNOWLEDGE_H_
