#ifndef GSV_RELATIONAL_SPJ_VIEW_H_
#define GSV_RELATIONAL_SPJ_VIEW_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/view_definition.h"
#include "oem/oid.h"
#include "query/condition.h"
#include "relational/flatten.h"
#include "util/status.h"

namespace gsv {

// The Select-Project-Join shape of a simple GSDB view over the three-table
// representation (paper §4.4): a chain of PARENT_CHILD self-joins with an
// OID_LABEL check per hop and a terminal OID_VALUE predicate —
//
//   V(y) :- PC(root,x1), OL(x1,l1), PC(x1,x2), OL(x2,l2), ...,
//           y = x_k, ..., PC(x_{L-1},x_L), OL(x_L,l_L),
//           OV(x_L,v), pred(v)
//
// where l_1..l_k is the select path and l_{k+1}..l_L the condition path.
struct ChainSpec {
  Oid root;
  std::vector<std::string> labels;  // select labels then condition labels
  size_t sel_len = 0;               // k: the selected variable is x_k
  std::optional<Predicate> pred;    // terminal predicate; nullopt = none

  // Derives the chain from a simple view definition (def.IsSimple()).
  static Result<ChainSpec> FromDefinition(const ViewDefinition& def);

  size_t length() const { return labels.size(); }
};

// Evaluates the full chain join bottom-up from the root and returns the
// number of derivations per selected OID (bag semantics — the counts the
// counting algorithm maintains). Every table access is metered.
std::unordered_map<std::string, int64_t> EvaluateChain(
    const RelationalMirror& mirror, const ChainSpec& spec);

}  // namespace gsv

#endif  // GSV_RELATIONAL_SPJ_VIEW_H_
