#ifndef GSV_RELATIONAL_FLATTEN_H_
#define GSV_RELATIONAL_FLATTEN_H_

#include <memory>

#include "oem/store.h"
#include "oem/update.h"
#include "relational/table.h"
#include "util/status.h"

namespace gsv {

// The three-table relational representation of a GSDB (paper Example 8):
//
//   OID_LABEL(oid, label)       — every object's label
//   PARENT_CHILD(parent, child) — every edge
//   OID_VALUE(oid, value)       — every atomic object's value
//
// RelationalMirror keeps this representation synchronized with a live
// ObjectStore. Note the paper's observation: "a single object update can
// involve multiple tables" — e.g. attaching a freshly created object adds
// rows to all three (metered in RelationalMetrics::table_updates).
class RelationalMirror : public UpdateListener {
 public:
  RelationalMirror();

  // Bulk-loads the three tables from the store's current contents.
  Status SyncFromStore(const ObjectStore& store);

  // Maps a basic GSDB update to relational deltas. Fresh objects that
  // appear as the child of an insert are pulled from the store and mirrored
  // into OID_LABEL / OID_VALUE first.
  void OnUpdate(const ObjectStore& store, const Update& update) override;

  Table& oid_label() { return *oid_label_; }
  Table& parent_child() { return *parent_child_; }
  Table& oid_value() { return *oid_value_; }
  const Table& oid_label() const { return *oid_label_; }
  const Table& parent_child() const { return *parent_child_; }
  const Table& oid_value() const { return *oid_value_; }

  RelationalMetrics& metrics() { return metrics_; }
  const Status& last_status() const { return last_status_; }

  // The relational deltas produced by updates are also offered to an
  // optional observer (the counting maintainer) *after* being applied.
  struct DeltaObserver {
    virtual ~DeltaObserver() = default;
    virtual void OnParentChildDelta(const Oid& parent, const Oid& child,
                                    int64_t delta) = 0;
    virtual void OnValueDelta(const Oid& oid, const Value& old_value,
                              const Value& new_value) = 0;
  };
  void SetObserver(DeltaObserver* observer) { observer_ = observer; }

  // Helpers for building tuples.
  static RelTuple OidLabelRow(const Oid& oid, const std::string& label);
  static RelTuple EdgeRow(const Oid& parent, const Oid& child);
  static RelTuple ValueRow(const Oid& oid, const Value& value);

 private:
  // Mirrors an unknown object's OID_LABEL/OID_VALUE rows plus the edges of
  // its set value. When `store` is non-null, unknown children are mirrored
  // recursively (a freshly built subtree entering the database through one
  // insert); edge rows notify the observer.
  Status MirrorObject(const Object& object, const ObjectStore* store);
  Status ApplyUpdate(const ObjectStore& store, const Update& update);

  RelationalMetrics metrics_;
  std::unique_ptr<Table> oid_label_;
  std::unique_ptr<Table> parent_child_;
  std::unique_ptr<Table> oid_value_;
  // OIDs already mirrored into OID_LABEL / OID_VALUE.
  OidSet known_;
  DeltaObserver* observer_ = nullptr;
  Status last_status_;
};

}  // namespace gsv

#endif  // GSV_RELATIONAL_FLATTEN_H_
