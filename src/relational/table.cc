#include "relational/table.h"

#include <algorithm>

namespace gsv {

std::string RelTuple::Key() const {
  std::string key;
  for (const Value& value : fields) {
    key += std::to_string(static_cast<int>(value.type()));
    key += ':';
    key += value.ToString();
    key += '|';
  }
  return key;
}

std::string RelTuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields[i].ToString();
  }
  out += ")";
  return out;
}

Table::Table(std::string name, std::vector<std::string> columns,
             RelationalMetrics* metrics)
    : name_(std::move(name)), columns_(std::move(columns)), metrics_(metrics) {}

void Table::AddIndex(size_t col) {
  auto& index = indexes_[col];
  index.clear();
  for (const auto& [key, row] : rows_) {
    index[row.tuple.fields[col].ToString()].push_back(key);
  }
}

Status Table::Apply(const RelTuple& tuple, int64_t delta) {
  if (tuple.fields.size() != arity()) {
    return Status::InvalidArgument("tuple arity " +
                                   std::to_string(tuple.fields.size()) +
                                   " != table arity for " + name_);
  }
  if (delta == 0) return Status::Ok();
  ++metrics_->table_updates;
  std::string key = tuple.Key();
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    Row row;
    row.tuple = tuple;
    row.count = delta;
    rows_.emplace(key, std::move(row));
    for (auto& [col, index] : indexes_) {
      index[tuple.fields[col].ToString()].push_back(key);
    }
    return Status::Ok();
  }
  it->second.count += delta;
  if (it->second.count == 0) {
    for (auto& [col, index] : indexes_) {
      auto iit = index.find(it->second.tuple.fields[col].ToString());
      if (iit != index.end()) {
        auto& keys = iit->second;
        keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
        if (keys.empty()) index.erase(iit);
      }
    }
    rows_.erase(it);
  }
  return Status::Ok();
}

int64_t Table::Count(const RelTuple& tuple) const {
  ++metrics_->index_probes;
  auto it = rows_.find(tuple.Key());
  if (it == rows_.end()) return 0;
  ++metrics_->tuples_examined;
  return it->second.count;
}

void Table::ForEach(
    const std::function<void(const RelTuple&, int64_t)>& fn) const {
  for (const auto& [key, row] : rows_) {
    ++metrics_->tuples_examined;
    fn(row.tuple, row.count);
  }
}

std::vector<std::pair<RelTuple, int64_t>> Table::Lookup(
    size_t col, const Value& value) const {
  std::vector<std::pair<RelTuple, int64_t>> out;
  ++metrics_->index_probes;
  auto index_it = indexes_.find(col);
  if (index_it == indexes_.end()) {
    // No index: scan (the expensive case §4.4 warns about).
    ForEach([&](const RelTuple& tuple, int64_t count) {
      if (tuple.fields[col] == value) out.emplace_back(tuple, count);
    });
    return out;
  }
  auto it = index_it->second.find(value.ToString());
  if (it == index_it->second.end()) return out;
  for (const std::string& key : it->second) {
    auto row_it = rows_.find(key);
    if (row_it == rows_.end()) continue;
    ++metrics_->tuples_examined;
    out.emplace_back(row_it->second.tuple, row_it->second.count);
  }
  return out;
}

}  // namespace gsv
