#ifndef GSV_RELATIONAL_COUNTING_H_
#define GSV_RELATIONAL_COUNTING_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "relational/flatten.h"
#include "relational/spj_view.h"
#include "util/status.h"

namespace gsv {

// Counting-based incremental maintenance of the relational chain view
// ([GMS93]-style, the algorithm the paper's §4.4 baseline would use): the
// maintainer stores the derivation count of every selected OID and applies
// first-order delta terms per update.
//
// For an edge delta ΔPC(a,b,δ), the edge may serve at any of the L join
// positions, so the maintainer evaluates L delta terms
//
//   Δcount(y) += δ · prefix_i(root→a) · suffix_i(b→terminal)     (per i)
//
// where the side containing x_k carries the group-by on y. This is exactly
// the self-join cost §4.4 predicts: O(L) chain evaluations per update,
// because the path semantics are "hidden in the relations". A value delta
// touches only the terminal predicate.
//
// Correctness relies on the base being acyclic (tree/DAG): a label chain
// can then use a given edge at most once, so first-order terms are exact.
class CountingViewMaintainer : public RelationalMirror::DeltaObserver {
 public:
  struct Stats {
    int64_t deltas = 0;        // relational deltas processed
    int64_t delta_terms = 0;   // per-position terms evaluated
    int64_t count_changes = 0; // y-count adjustments applied
  };

  // `mirror` must outlive the maintainer. Registers itself as the mirror's
  // delta observer.
  CountingViewMaintainer(RelationalMirror* mirror, ChainSpec spec);

  // Computes initial counts with a full chain evaluation.
  Status Initialize();

  // RelationalMirror::DeltaObserver:
  void OnParentChildDelta(const Oid& parent, const Oid& child,
                          int64_t delta) override;
  void OnValueDelta(const Oid& oid, const Value& old_value,
                    const Value& new_value) override;

  // Current view contents (OIDs with positive derivation counts).
  OidSet Members() const;
  int64_t CountOf(const Oid& y) const;

  const Stats& stats() const { return stats_; }
  const Status& last_status() const { return last_status_; }

 private:
  // # chains root→node matching labels[0..j-1] (node's label included).
  int64_t CountUp(const std::string& node, size_t j,
                  std::unordered_map<std::string, int64_t>* memo) const;
  // Same, grouped by the x_k binding; requires j >= sel_len.
  std::unordered_map<std::string, int64_t> CountUpByY(const std::string& node,
                                                      size_t j) const;
  // # suffix chains from x_j=node to the terminal (incl. predicate).
  int64_t CountDown(const std::string& node, size_t j,
                    std::unordered_map<std::string, int64_t>* memo) const;
  // Same, grouped by the x_k binding; requires j <= sel_len.
  std::unordered_map<std::string, int64_t> CountDownByY(
      const std::string& node, size_t j) const;

  void AddDelta(const std::string& y, int64_t delta);

  RelationalMirror* mirror_;
  ChainSpec spec_;
  std::unordered_map<std::string, int64_t> counts_;
  Stats stats_;
  Status last_status_;
};

}  // namespace gsv

#endif  // GSV_RELATIONAL_COUNTING_H_
