#include "relational/counting.h"

namespace gsv {

CountingViewMaintainer::CountingViewMaintainer(RelationalMirror* mirror,
                                               ChainSpec spec)
    : mirror_(mirror), spec_(std::move(spec)) {
  mirror_->SetObserver(this);
}

Status CountingViewMaintainer::Initialize() {
  counts_ = EvaluateChain(*mirror_, spec_);
  return Status::Ok();
}

int64_t CountingViewMaintainer::CountUp(
    const std::string& node, size_t j,
    std::unordered_map<std::string, int64_t>* memo) const {
  if (j == 0) return node == spec_.root.str() ? 1 : 0;
  std::string key = node + "#" + std::to_string(j);
  auto it = memo->find(key);
  if (it != memo->end()) return it->second;

  int64_t label_count = mirror_->oid_label().Count(
      RelationalMirror::OidLabelRow(Oid(node), spec_.labels[j - 1]));
  int64_t total = 0;
  if (label_count > 0) {
    for (const auto& [edge, edge_count] :
         mirror_->parent_child().Lookup(1, Value::Str(node))) {
      total += edge_count * CountUp(edge.fields[0].AsString(), j - 1, memo);
    }
    total *= label_count;
  }
  (*memo)[key] = total;
  return total;
}

std::unordered_map<std::string, int64_t> CountingViewMaintainer::CountUpByY(
    const std::string& node, size_t j) const {
  std::unordered_map<std::string, int64_t> result;
  if (j == spec_.sel_len) {
    std::unordered_map<std::string, int64_t> memo;
    int64_t count = CountUp(node, j, &memo);
    if (count > 0) result[node] = count;
    return result;
  }
  // j > sel_len: check this node's label, then recurse over parents.
  int64_t label_count = mirror_->oid_label().Count(
      RelationalMirror::OidLabelRow(Oid(node), spec_.labels[j - 1]));
  if (label_count <= 0) return result;
  for (const auto& [edge, edge_count] :
       mirror_->parent_child().Lookup(1, Value::Str(node))) {
    for (const auto& [y, count] :
         CountUpByY(edge.fields[0].AsString(), j - 1)) {
      result[y] += count * edge_count * label_count;
    }
  }
  return result;
}

int64_t CountingViewMaintainer::CountDown(
    const std::string& node, size_t j,
    std::unordered_map<std::string, int64_t>* memo) const {
  if (j == spec_.length()) {
    if (!spec_.pred.has_value()) return 1;
    int64_t total = 0;
    for (const auto& [row, count] :
         mirror_->oid_value().Lookup(0, Value::Str(node))) {
      if (spec_.pred->Holds(row.fields[1])) total += count;
    }
    return total;
  }
  std::string key = node + "#" + std::to_string(j);
  auto it = memo->find(key);
  if (it != memo->end()) return it->second;

  int64_t total = 0;
  for (const auto& [edge, edge_count] :
       mirror_->parent_child().Lookup(0, Value::Str(node))) {
    const std::string child = edge.fields[1].AsString();
    int64_t label_count = mirror_->oid_label().Count(
        RelationalMirror::OidLabelRow(Oid(child), spec_.labels[j]));
    if (label_count <= 0) continue;
    total += edge_count * label_count * CountDown(child, j + 1, memo);
  }
  (*memo)[key] = total;
  return total;
}

std::unordered_map<std::string, int64_t> CountingViewMaintainer::CountDownByY(
    const std::string& node, size_t j) const {
  std::unordered_map<std::string, int64_t> result;
  if (j == spec_.sel_len) {
    std::unordered_map<std::string, int64_t> memo;
    int64_t count = CountDown(node, j, &memo);
    if (count > 0) result[node] = count;
    return result;
  }
  // j < sel_len: descend toward x_k.
  for (const auto& [edge, edge_count] :
       mirror_->parent_child().Lookup(0, Value::Str(node))) {
    const std::string child = edge.fields[1].AsString();
    int64_t label_count = mirror_->oid_label().Count(
        RelationalMirror::OidLabelRow(Oid(child), spec_.labels[j]));
    if (label_count <= 0) continue;
    for (const auto& [y, count] : CountDownByY(child, j + 1)) {
      result[y] += count * edge_count * label_count;
    }
  }
  return result;
}

void CountingViewMaintainer::AddDelta(const std::string& y, int64_t delta) {
  if (delta == 0) return;
  ++stats_.count_changes;
  int64_t& count = counts_[y];
  count += delta;
  if (count == 0) counts_.erase(y);
}

void CountingViewMaintainer::OnParentChildDelta(const Oid& parent,
                                                const Oid& child,
                                                int64_t delta) {
  ++stats_.deltas;
  const std::string a = parent.str();
  const std::string b = child.str();
  // The edge may serve at any of the L chain positions: one delta term per
  // position (the §4.4 self-join cost).
  for (size_t i = 1; i <= spec_.length(); ++i) {
    ++stats_.delta_terms;
    int64_t label_count = mirror_->oid_label().Count(
        RelationalMirror::OidLabelRow(child, spec_.labels[i - 1]));
    if (label_count <= 0) continue;

    if (i <= spec_.sel_len) {
      std::unordered_map<std::string, int64_t> memo;
      int64_t prefix = CountUp(a, i - 1, &memo);
      if (prefix == 0) continue;
      for (const auto& [y, count] : CountDownByY(b, i)) {
        AddDelta(y, delta * prefix * count * label_count);
      }
    } else {
      std::unordered_map<std::string, int64_t> by_y = CountUpByY(a, i - 1);
      if (by_y.empty()) continue;
      std::unordered_map<std::string, int64_t> memo;
      int64_t suffix = CountDown(b, i, &memo);
      if (suffix == 0) continue;
      for (const auto& [y, count] : by_y) {
        AddDelta(y, delta * count * suffix * label_count);
      }
    }
  }
}

void CountingViewMaintainer::OnValueDelta(const Oid& oid,
                                          const Value& old_value,
                                          const Value& new_value) {
  ++stats_.deltas;
  if (!spec_.pred.has_value()) return;
  int64_t delta = (spec_.pred->Holds(new_value) ? 1 : 0) -
                  (spec_.pred->Holds(old_value) ? 1 : 0);
  if (delta == 0) return;
  ++stats_.delta_terms;
  for (const auto& [y, count] : CountUpByY(oid.str(), spec_.length())) {
    AddDelta(y, delta * count);
  }
}

OidSet CountingViewMaintainer::Members() const {
  OidSet members;
  for (const auto& [y, count] : counts_) {
    if (count > 0) members.Insert(Oid(y));
  }
  return members;
}

int64_t CountingViewMaintainer::CountOf(const Oid& y) const {
  auto it = counts_.find(y.str());
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace gsv
