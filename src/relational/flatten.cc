#include "relational/flatten.h"

namespace gsv {

RelationalMirror::RelationalMirror() {
  oid_label_ = std::make_unique<Table>(
      "OID_LABEL", std::vector<std::string>{"oid", "label"}, &metrics_);
  parent_child_ = std::make_unique<Table>(
      "PARENT_CHILD", std::vector<std::string>{"parent", "child"}, &metrics_);
  oid_value_ = std::make_unique<Table>(
      "OID_VALUE", std::vector<std::string>{"oid", "value"}, &metrics_);
  // The chain joins probe edges by parent and by child, and labels/values
  // by oid.
  oid_label_->AddIndex(0);
  parent_child_->AddIndex(0);
  parent_child_->AddIndex(1);
  oid_value_->AddIndex(0);
}

RelTuple RelationalMirror::OidLabelRow(const Oid& oid,
                                       const std::string& label) {
  return RelTuple{{Value::Str(oid.str()), Value::Str(label)}};
}
RelTuple RelationalMirror::EdgeRow(const Oid& parent, const Oid& child) {
  return RelTuple{{Value::Str(parent.str()), Value::Str(child.str())}};
}
RelTuple RelationalMirror::ValueRow(const Oid& oid, const Value& value) {
  return RelTuple{{Value::Str(oid.str()), value}};
}

Status RelationalMirror::MirrorObject(const Object& object,
                                      const ObjectStore* store) {
  if (known_.Contains(object.oid())) return Status::Ok();
  known_.Insert(object.oid());  // first: guards against reference cycles
  GSV_RETURN_IF_ERROR(
      oid_label_->Apply(OidLabelRow(object.oid(), object.label()), +1));
  if (object.IsAtomic()) {
    GSV_RETURN_IF_ERROR(
        oid_value_->Apply(ValueRow(object.oid(), object.value()), +1));
    return Status::Ok();
  }
  for (const Oid& child : object.children()) {
    if (store != nullptr && !known_.Contains(child)) {
      const Object* child_object = store->Get(child);
      if (child_object != nullptr) {
        GSV_RETURN_IF_ERROR(MirrorObject(*child_object, store));
      }
    }
    GSV_RETURN_IF_ERROR(parent_child_->Apply(EdgeRow(object.oid(), child), +1));
    if (observer_ != nullptr) {
      observer_->OnParentChildDelta(object.oid(), child, +1);
    }
  }
  return Status::Ok();
}

Status RelationalMirror::SyncFromStore(const ObjectStore& store) {
  Status status;
  // Every object is visited exactly once; its own MirrorObject call adds
  // its outgoing edges, so no recursion is needed here.
  store.ForEach([&](const Object& object) {
    if (!status.ok()) return;
    status = MirrorObject(object, nullptr);
  });
  return status;
}

Status RelationalMirror::ApplyUpdate(const ObjectStore& store,
                                     const Update& update) {
  switch (update.kind) {
    case UpdateKind::kInsert: {
      // Fresh objects reach the relational representation here — one GSDB
      // update turning into several table updates (Example 8).
      const Object* child = store.Get(update.child);
      if (child != nullptr) {
        GSV_RETURN_IF_ERROR(MirrorObject(*child, &store));
      }
      GSV_RETURN_IF_ERROR(
          parent_child_->Apply(EdgeRow(update.parent, update.child), +1));
      if (observer_ != nullptr) {
        observer_->OnParentChildDelta(update.parent, update.child, +1);
      }
      return Status::Ok();
    }
    case UpdateKind::kDelete: {
      GSV_RETURN_IF_ERROR(
          parent_child_->Apply(EdgeRow(update.parent, update.child), -1));
      if (observer_ != nullptr) {
        observer_->OnParentChildDelta(update.parent, update.child, -1);
      }
      return Status::Ok();
    }
    case UpdateKind::kModify: {
      GSV_RETURN_IF_ERROR(
          oid_value_->Apply(ValueRow(update.parent, update.old_value), -1));
      GSV_RETURN_IF_ERROR(
          oid_value_->Apply(ValueRow(update.parent, update.new_value), +1));
      if (observer_ != nullptr) {
        observer_->OnValueDelta(update.parent, update.old_value,
                                update.new_value);
      }
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown update kind");
}

void RelationalMirror::OnUpdate(const ObjectStore& store,
                                const Update& update) {
  Status status = ApplyUpdate(store, update);
  if (!status.ok()) last_status_ = status;
}

}  // namespace gsv
