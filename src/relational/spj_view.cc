#include "relational/spj_view.h"

namespace gsv {

Result<ChainSpec> ChainSpec::FromDefinition(const ViewDefinition& def) {
  if (!def.IsSimple()) {
    return Status::InvalidArgument(
        "relational chain views require a simple view definition");
  }
  ChainSpec spec;
  spec.root = Oid(def.query().entry);
  const Path sel = def.sel_path();
  const Path cond = def.cond_path();
  for (const std::string& label : sel.labels()) {
    spec.labels.push_back(label);
  }
  spec.sel_len = spec.labels.size();
  for (const std::string& label : cond.labels()) {
    spec.labels.push_back(label);
  }
  spec.pred = def.predicate();
  return spec;
}

std::unordered_map<std::string, int64_t> EvaluateChain(
    const RelationalMirror& mirror, const ChainSpec& spec) {
  // Frontier: (current binding x_j, chosen y or "") -> derivation count.
  struct Entry {
    std::string current;
    std::string y;
    int64_t count;
  };
  std::vector<Entry> frontier{{spec.root.str(), "", 1}};

  for (size_t j = 0; j < spec.length(); ++j) {
    std::unordered_map<std::string, Entry> next;
    const std::string& label = spec.labels[j];
    for (const Entry& entry : frontier) {
      for (const auto& [edge, edge_count] :
           mirror.parent_child().Lookup(0, Value::Str(entry.current))) {
        const std::string child = edge.fields[1].AsString();
        // OL(child, label) check.
        int64_t label_count = mirror.oid_label().Count(
            RelationalMirror::OidLabelRow(Oid(child), label));
        if (label_count <= 0) continue;
        Entry out;
        out.current = child;
        out.y = (j + 1 == spec.sel_len) ? child : entry.y;
        out.count = entry.count * edge_count * label_count;
        std::string key = out.current + "#" + out.y;
        auto [it, inserted] = next.emplace(key, out);
        if (!inserted) it->second.count += out.count;
      }
    }
    frontier.clear();
    for (auto& [key, entry] : next) frontier.push_back(std::move(entry));
  }

  std::unordered_map<std::string, int64_t> result;
  for (const Entry& entry : frontier) {
    int64_t terminal = 1;
    if (spec.pred.has_value()) {
      terminal = 0;
      for (const auto& [row, count] :
           mirror.oid_value().Lookup(0, Value::Str(entry.current))) {
        if (spec.pred->Holds(row.fields[1])) terminal += count;
      }
    }
    if (terminal > 0 && !entry.y.empty()) {
      result[entry.y] += entry.count * terminal;
    }
  }
  return result;
}

}  // namespace gsv
