#ifndef GSV_RELATIONAL_TABLE_H_
#define GSV_RELATIONAL_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "oem/value.h"
#include "util/status.h"

namespace gsv {

// A relational tuple: a fixed-arity vector of atomic values.
struct RelTuple {
  std::vector<Value> fields;

  std::string Key() const;  // canonical serialization, used for hashing
  std::string ToString() const;
  bool operator==(const RelTuple& other) const {
    return fields == other.fields;
  }
};

// Cost counters shared by a relational schema: the §4.4 comparison measures
// how many tuples the relational approach must examine.
struct RelationalMetrics {
  int64_t tuples_examined = 0;  // tuples touched by scans and index probes
  int64_t index_probes = 0;
  int64_t table_updates = 0;    // insert/delete of (tuple, count) deltas

  void Reset() { *this = RelationalMetrics(); }
};

// A bag (multiset) relation with per-tuple counts — the representation the
// counting algorithm of [GMS93] maintains — plus optional single-column
// hash indexes. Counts can be negative transiently while applying deltas;
// tuples at count zero are dropped.
class Table {
 public:
  Table(std::string name, std::vector<std::string> columns,
        RelationalMetrics* metrics);

  const std::string& name() const { return name_; }
  size_t arity() const { return columns_.size(); }

  // Builds a hash index on column `col` (may be called before or after
  // rows are added).
  void AddIndex(size_t col);

  // Adds `delta` to the tuple's count (negative deltas delete).
  Status Apply(const RelTuple& tuple, int64_t delta);

  int64_t Count(const RelTuple& tuple) const;
  size_t DistinctSize() const { return rows_.size(); }

  // Scans every tuple (metered).
  void ForEach(
      const std::function<void(const RelTuple&, int64_t)>& fn) const;

  // Index lookup: all tuples whose column `col` equals `value` (metered).
  // Falls back to a full scan when no index exists on `col`.
  std::vector<std::pair<RelTuple, int64_t>> Lookup(size_t col,
                                                   const Value& value) const;

  RelationalMetrics* metrics() const { return metrics_; }

 private:
  struct Row {
    RelTuple tuple;
    int64_t count = 0;
  };

  std::string name_;
  std::vector<std::string> columns_;
  RelationalMetrics* metrics_;
  std::unordered_map<std::string, Row> rows_;  // key -> row
  // col -> (value key -> tuple keys). Maintained incrementally.
  std::unordered_map<size_t, std::unordered_map<std::string, std::vector<std::string>>>
      indexes_;
};

}  // namespace gsv

#endif  // GSV_RELATIONAL_TABLE_H_
