#ifndef GSV_GSV_H_
#define GSV_GSV_H_

// Umbrella header for the gsview library: the OEM data model, the view
// machinery of "Graph Structured Views and Their Incremental Maintenance"
// (Zhuge & Garcia-Molina, ICDE 1998), and the warehousing substrate.
// Include individual headers in larger programs; this is the quick-start
// convenience.

#include "core/aggregate_view.h"       // IWYU pragma: export
#include "core/algorithm1.h"           // IWYU pragma: export
#include "core/consistency.h"          // IWYU pragma: export
#include "core/general_maintainer.h"   // IWYU pragma: export
#include "core/materialized_view.h"    // IWYU pragma: export
#include "core/partial_materialization.h"  // IWYU pragma: export
#include "core/recompute.h"            // IWYU pragma: export
#include "core/swizzle.h"              // IWYU pragma: export
#include "core/union_view.h"           // IWYU pragma: export
#include "core/view_cluster.h"         // IWYU pragma: export
#include "core/view_definition.h"      // IWYU pragma: export
#include "core/virtual_view.h"         // IWYU pragma: export
#include "oem/serialize.h"             // IWYU pragma: export
#include "oem/set_ops.h"               // IWYU pragma: export
#include "oem/store.h"                 // IWYU pragma: export
#include "oem/transaction.h"           // IWYU pragma: export
#include "path/navigate.h"             // IWYU pragma: export
#include "query/evaluator.h"           // IWYU pragma: export
#include "query/explain.h"             // IWYU pragma: export
#include "query/parser.h"              // IWYU pragma: export
#include "warehouse/source_wrapper_gsdb.h"  // IWYU pragma: export
#include "warehouse/warehouse.h"       // IWYU pragma: export

#endif  // GSV_GSV_H_
