#include "shell/shell.h"

#include <sstream>

#include "core/virtual_view.h"
#include "oem/serialize.h"
#include "query/evaluator.h"
#include "query/explain.h"
#include "util/string_util.h"

namespace gsv {
namespace {

constexpr char kHelp[] =
    "commands:\n"
    "  load <file> | save <file>\n"
    "  put atomic <oid> <label> int|real|string|bool <value>\n"
    "  put set <oid> <label> [child ...]\n"
    "  insert <parent> <child> | delete <parent> <child>\n"
    "  modify <oid> int|real|string|bool <value>\n"
    "  begin | commit | abort  (atomic update batches)\n"
    "  show <oid> | register <db-name> <oid> | databases\n"
    "  query SELECT ... | explain SELECT ...\n"
    "  define [m]view <name> as: SELECT ...\n"
    "  define union <name> as: SELECT ... | branch <name> as: SELECT ...\n"
    "  define agg <name> count|sum|min|max <path> as: SELECT ...\n"
    "  views | gc [root ...] | stats | help | quit";

std::vector<std::string> Tokens(std::string_view text) {
  std::vector<std::string> out;
  std::istringstream in{std::string(text)};
  std::string token;
  while (in >> token) out.push_back(token);
  return out;
}

std::string FormatMembers(const OidSet& members) {
  std::string out = "{";
  bool first = true;
  for (const Oid& oid : members) {
    if (!first) out += ", ";
    first = false;
    out += oid.str();
  }
  out += "}";
  return out;
}

}  // namespace

Shell::Shell() = default;

Result<Value> Shell::ParseTypedValue(const std::string& type,
                                     const std::string& text) {
  if (type == "int") {
    std::optional<int64_t> value = ParseInt64(text);
    if (!value.has_value()) {
      return Status::InvalidArgument("bad integer '" + text + "'");
    }
    return Value::Int(*value);
  }
  if (type == "real") {
    std::optional<double> value = ParseDouble(text);
    if (!value.has_value()) {
      return Status::InvalidArgument("bad real '" + text + "'");
    }
    return Value::Real(*value);
  }
  if (type == "string") return Value::Str(text);
  if (type == "bool") return Value::Bool(text == "true");
  return Status::InvalidArgument("unknown value type '" + type +
                                 "' (int|real|string|bool)");
}

Result<std::string> Shell::CmdPut(const std::vector<std::string>& args) {
  // put atomic <oid> <label> <type> <value> | put set <oid> <label> [c...]
  if (args.size() < 2) return Status::InvalidArgument("put atomic|set ...");
  if (args[1] == "atomic") {
    if (args.size() != 6) {
      return Status::InvalidArgument(
          "put atomic <oid> <label> <type> <value>");
    }
    GSV_ASSIGN_OR_RETURN(Value value, ParseTypedValue(args[4], args[5]));
    GSV_RETURN_IF_ERROR(store_.PutAtomic(Oid(args[2]), args[3], value));
    return "created " + store_.Get(Oid(args[2]))->ToString();
  }
  if (args[1] == "set") {
    if (args.size() < 4) {
      return Status::InvalidArgument("put set <oid> <label> [child ...]");
    }
    std::vector<Oid> children;
    for (size_t i = 4; i < args.size(); ++i) children.push_back(Oid(args[i]));
    GSV_RETURN_IF_ERROR(
        store_.PutSet(Oid(args[2]), args[3], std::move(children)));
    return "created " + store_.Get(Oid(args[2]))->ToString();
  }
  return Status::InvalidArgument("put atomic|set ...");
}

Result<std::string> Shell::CmdModify(const std::vector<std::string>& args) {
  if (args.size() != 4) {
    return Status::InvalidArgument("modify <oid> <type> <value>");
  }
  GSV_ASSIGN_OR_RETURN(Value value, ParseTypedValue(args[2], args[3]));
  if (transaction_ != nullptr) {
    transaction_->Modify(Oid(args[1]), std::move(value));
    return "buffered modify(" + args[1] + ")";
  }
  GSV_RETURN_IF_ERROR(store_.Modify(Oid(args[1]), value));
  return "modified " + store_.Get(Oid(args[1]))->ToString();
}

Result<std::string> Shell::CmdShow(const std::vector<std::string>& args) {
  if (args.size() != 2) return Status::InvalidArgument("show <oid>");
  const Object* object = store_.Get(Oid(args[1]));
  if (object == nullptr) {
    return Status::NotFound("no object " + args[1]);
  }
  return object->ToString();
}

Result<std::string> Shell::CmdQuery(std::string_view text) {
  GSV_ASSIGN_OR_RETURN(OidSet answer, EvaluateQueryText(store_, text));
  Oid ans_oid("ANS" + std::to_string(++answer_counter_));
  return MakeAnswerObject(ans_oid, answer).ToString();
}

Oid Shell::ResolveRoot(const Query& query) const {
  Oid root = store_.DatabaseOid(query.entry);
  if (!root.valid()) root = Oid(query.entry);
  return root;
}

// Extracts the query text following "as" / "as:" in a define-style line.
namespace {
Result<std::string> QueryAfterAs(std::string_view line) {
  size_t pos = line.find(" as:");
  size_t skip = 4;
  if (pos == std::string_view::npos) {
    pos = line.find(" as ");
    skip = 4;
  }
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("expected 'as:' before the query");
  }
  return std::string(line.substr(pos + skip));
}
}  // namespace

Result<std::string> Shell::CmdDefineUnion(std::string_view line,
                                          const std::vector<std::string>& args,
                                          bool first_branch) {
  // define union NAME as: SELECT ...     (first_branch)
  // branch NAME as: SELECT ...
  const std::string& name = args[first_branch ? 2 : 1];
  GSV_ASSIGN_OR_RETURN(std::string query_text, QueryAfterAs(line));
  GSV_ASSIGN_OR_RETURN(
      ViewDefinition branch_def,
      ViewDefinition::Parse("define mview " + name + "_b" +
                            std::to_string(++branch_counter_) + " as: " +
                            query_text));

  UnionView* target = nullptr;
  if (first_branch) {
    auto live = std::make_unique<LiveUnion>();
    live->accessor = std::make_unique<LocalAccessor>(&store_);
    live->view =
        std::make_unique<UnionView>(&store_, name, live->accessor.get());
    GSV_RETURN_IF_ERROR(live->view->Bootstrap());
    target = live->view.get();
    store_.AddListener(target->listener());
    unions_.push_back(std::move(live));
  } else {
    for (auto& live : unions_) {
      if (live->view->view_oid().str() == name) target = live->view.get();
    }
    if (target == nullptr) {
      return Status::NotFound("no union view '" + name + "'");
    }
  }
  GSV_RETURN_IF_ERROR(
      target->AddBranch(branch_def, store_, ResolveRoot(branch_def.query())));
  return "union view " + name + " (" + std::to_string(target->branch_count()) +
         " branches) = " + FormatMembers(target->Members());
}

Result<std::string> Shell::CmdDefineAggregate(
    std::string_view line, const std::vector<std::string>& args) {
  // define agg NAME count|sum|min|max PATH as: SELECT ...
  if (args.size() < 7) {
    return Status::InvalidArgument(
        "define agg <name> count|sum|min|max <path> as: SELECT ...");
  }
  const std::string& name = args[2];
  AggregateView::Kind kind;
  if (args[3] == "count") {
    kind = AggregateView::Kind::kCount;
  } else if (args[3] == "sum") {
    kind = AggregateView::Kind::kSum;
  } else if (args[3] == "min") {
    kind = AggregateView::Kind::kMin;
  } else if (args[3] == "max") {
    kind = AggregateView::Kind::kMax;
  } else {
    return Status::InvalidArgument("unknown aggregate '" + args[3] + "'");
  }
  GSV_ASSIGN_OR_RETURN(Path agg_path, Path::Parse(args[4]));
  GSV_ASSIGN_OR_RETURN(std::string query_text, QueryAfterAs(line));
  GSV_ASSIGN_OR_RETURN(ViewDefinition def,
                       ViewDefinition::Parse("define mview " + name + " as: " +
                                             query_text));
  auto view = std::make_unique<AggregateView>(
      &store_, &store_, name, def, ResolveRoot(def.query()), agg_path, kind);
  GSV_RETURN_IF_ERROR(view->Initialize());
  store_.AddListener(view->listener());
  std::string out = "aggregate view " + name + " (" + args[3] + " of " +
                    args[4] + ") over " + FormatMembers(view->Members());
  aggregates_.push_back(std::move(view));
  return out;
}

Result<std::string> Shell::CmdDefine(std::string_view text,
                                     const std::vector<std::string>& args) {
  if (args.size() >= 3 && args[1] == "union") {
    return CmdDefineUnion(text, args, /*first_branch=*/true);
  }
  if (args.size() >= 3 && args[1] == "agg") {
    return CmdDefineAggregate(text, args);
  }
  GSV_ASSIGN_OR_RETURN(ViewDefinition def, ViewDefinition::Parse(text));
  if (!def.materialized()) {
    GSV_RETURN_IF_ERROR(RegisterVirtualView(store_, def));
    return "virtual view " + def.name() + " = " +
           FormatMembers(store_.Get(def.view_oid())->children());
  }

  auto live = std::make_unique<LiveView>(def);
  live->view = std::make_unique<MaterializedView>(&store_, def);
  GSV_RETURN_IF_ERROR(live->view->Initialize(store_));

  Oid root = store_.DatabaseOid(def.query().entry);
  if (!root.valid()) root = Oid(def.query().entry);
  if (Algorithm1Maintainer::ValidateDefinition(def).ok()) {
    live->accessor = std::make_unique<LocalAccessor>(&store_);
    live->algorithm1 = std::make_unique<Algorithm1Maintainer>(
        live->view.get(), live->accessor.get(), def, root);
    store_.AddListener(live->algorithm1.get());
  } else {
    live->general = std::make_unique<GeneralMaintainer>(live->view.get(),
                                                        &store_, def, root);
    store_.AddListener(live->general.get());
  }
  std::string result = "materialized view " + def.name() + " = " +
                       FormatMembers(live->view->BaseMembers()) +
                       (live->algorithm1 != nullptr
                            ? "  [Algorithm 1]"
                            : "  [general maintainer]");
  views_.push_back(std::move(live));
  return result;
}

Result<std::string> Shell::CmdViews() {
  std::string out;
  for (const auto& live : views_) {
    if (!out.empty()) out += "\n";
    const Status& status = live->algorithm1 != nullptr
                               ? live->algorithm1->last_status()
                               : live->general->last_status();
    out += live->def.name() + " = " +
           FormatMembers(live->view->BaseMembers()) +
           (status.ok() ? "" : "  [maintenance error: " + status.ToString() +
                                   "]");
  }
  for (const auto& live : unions_) {
    if (!out.empty()) out += "\n";
    out += live->view->view_oid().str() + " = " +
           FormatMembers(live->view->Members()) + "  [union, " +
           std::to_string(live->view->branch_count()) + " branches]";
  }
  for (const auto& view : aggregates_) {
    if (!out.empty()) out += "\n";
    out += view->view_oid().str() + " = " + FormatMembers(view->Members()) +
           "  [aggregate]";
  }
  if (out.empty()) return std::string("no materialized views");
  return out;
}

Result<std::string> Shell::CmdStats() {
  const StoreMetrics& metrics = store_.metrics();
  std::ostringstream out;
  out << "objects=" << store_.size()
      << " edges_traversed=" << metrics.edges_traversed
      << " parent_lookups=" << metrics.parent_lookups
      << " lookups=" << metrics.lookups
      << " scanned=" << metrics.objects_scanned
      << " index_probes=" << metrics.index_probes
      << " index_fallbacks=" << metrics.index_fallbacks;
  store_.metrics().Reset();
  return out.str();
}

Result<std::string> Shell::ProcessLine(std::string_view line) {
  // Strip comments and whitespace-only lines.
  size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string> args = Tokens(line);
  if (args.empty()) return std::string();
  const std::string& command = args[0];

  if (command == "help") return std::string(kHelp);
  if (command == "quit" || command == "exit") {
    return Status::NotFound("quit");
  }
  if (command == "load") {
    if (args.size() != 2) return Status::InvalidArgument("load <file>");
    GSV_RETURN_IF_ERROR(LoadStoreFromFile(args[1], &store_));
    return "loaded " + std::to_string(store_.size()) + " objects";
  }
  if (command == "save") {
    if (args.size() != 2) return Status::InvalidArgument("save <file>");
    GSV_RETURN_IF_ERROR(SaveStoreToFile(store_, args[1]));
    return "saved " + std::to_string(store_.size()) + " objects";
  }
  if (command == "put") return CmdPut(args);
  if (command == "begin") {
    if (transaction_ != nullptr) {
      return Status::FailedPrecondition("a transaction is already open");
    }
    transaction_ = std::make_unique<Transaction>(&store_);
    return std::string("transaction started");
  }
  if (command == "commit") {
    if (transaction_ == nullptr) {
      return Status::FailedPrecondition("no open transaction");
    }
    size_t buffered = transaction_->size();
    Status status = transaction_->Commit();
    transaction_.reset();
    GSV_RETURN_IF_ERROR(status);
    return "committed " + std::to_string(buffered) + " updates";
  }
  if (command == "abort") {
    if (transaction_ == nullptr) {
      return Status::FailedPrecondition("no open transaction");
    }
    size_t buffered = transaction_->size();
    transaction_.reset();
    return "aborted " + std::to_string(buffered) + " buffered updates";
  }
  if (command == "insert" || command == "delete") {
    if (args.size() != 3) {
      return Status::InvalidArgument(command + " <parent> <child>");
    }
    if (transaction_ != nullptr) {
      if (command == "insert") {
        transaction_->Insert(Oid(args[1]), Oid(args[2]));
      } else {
        transaction_->Delete(Oid(args[1]), Oid(args[2]));
      }
      return "buffered " + command + "(" + args[1] + ", " + args[2] + ")";
    }
    GSV_RETURN_IF_ERROR(command == "insert"
                            ? store_.Insert(Oid(args[1]), Oid(args[2]))
                            : store_.Delete(Oid(args[1]), Oid(args[2])));
    return command + "(" + args[1] + ", " + args[2] + ") ok";
  }
  if (command == "modify") return CmdModify(args);
  if (command == "show") return CmdShow(args);
  if (command == "register") {
    if (args.size() != 3) {
      return Status::InvalidArgument("register <db-name> <oid>");
    }
    GSV_RETURN_IF_ERROR(store_.RegisterDatabase(args[1], Oid(args[2])));
    return "database " + args[1] + " -> " + args[2];
  }
  if (command == "databases") {
    std::string out;
    for (const std::string& name : store_.DatabaseNames()) {
      if (!out.empty()) out += "\n";
      out += name + " -> " + store_.DatabaseOid(name).str();
    }
    return out.empty() ? "no databases" : out;
  }
  if (command == "query" || command == "select") {
    // Keep the original text (tokenizing would lose string literals).
    size_t pos = line.find(command);
    std::string_view rest = line.substr(pos + command.size());
    if (command == "select") rest = line;  // allow bare SELECT ...
    return CmdQuery(rest);
  }
  if (command == "explain") {
    size_t pos = line.find(command);
    GSV_ASSIGN_OR_RETURN(
        QueryExplanation explanation,
        ExplainQueryText(store_, line.substr(pos + command.size())));
    return explanation.ToString();
  }
  if (command == "define") return CmdDefine(line, args);
  if (command == "branch") {
    if (args.size() < 3) {
      return Status::InvalidArgument("branch <union-name> as: SELECT ...");
    }
    return CmdDefineUnion(line, args, /*first_branch=*/false);
  }
  if (command == "views") return CmdViews();
  if (command == "gc") {
    std::vector<Oid> roots;
    for (size_t i = 1; i < args.size(); ++i) roots.push_back(Oid(args[i]));
    size_t collected = store_.CollectGarbage(roots);
    return "collected " + std::to_string(collected) + " objects";
  }
  if (command == "stats") return CmdStats();
  return Status::InvalidArgument("unknown command '" + command +
                                 "' (try: help)");
}

Result<std::string> Shell::RunScript(std::string_view script) {
  std::string out;
  size_t line_number = 0;
  for (const std::string& line : Split(script, '\n')) {
    ++line_number;
    Result<std::string> result = ProcessLine(line);
    if (!result.ok()) {
      if (result.status().message() == "quit") return out;
      return Status(result.status().code(),
                    "line " + std::to_string(line_number) + ": " +
                        result.status().message());
    }
    if (!result->empty()) {
      out += *result;
      out += "\n";
    }
  }
  return out;
}

}  // namespace gsv
