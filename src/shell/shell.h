#ifndef GSV_SHELL_SHELL_H_
#define GSV_SHELL_SHELL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/aggregate_view.h"
#include "core/algorithm1.h"
#include "core/general_maintainer.h"
#include "core/materialized_view.h"
#include "core/union_view.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "oem/transaction.h"
#include "util/status.h"

namespace gsv {

// An interactive session over one GSDB: load/save stores, apply the basic
// updates, run queries, and define views — materialized views are
// maintained live (Algorithm 1 for simple definitions, the general
// candidate-recheck maintainer otherwise). Drives everything through the
// public library API; the gsvsh binary is a thin REPL around ProcessLine.
//
// Commands (one per line; '#' starts a comment):
//   help
//   load <file>               load store records (see oem/serialize.h)
//   save <file>
//   put atomic <oid> <label> int|real|string|bool <value>
//   put set <oid> <label> [child ...]
//   insert <parent> <child>
//   delete <parent> <child>
//   modify <oid> int|real|string|bool <value>
//   show <oid>
//   register <name> <oid>     register a database
//   query SELECT ... | explain SELECT ...
//   define [m]view <name> as: SELECT ...
//   define union <name> as: SELECT ...       (first branch)
//   branch <union-name> as: SELECT ...       (additional branches)
//   define agg <name> count|sum|min|max <path> as: SELECT ...
//   views                     list views and their members
//   databases
//   begin | commit | abort    buffered atomic update batches
//   gc [root ...]
//   stats                     store metrics since the last `stats`
//   quit | exit
class Shell {
 public:
  Shell();

  // Executes one command line; returns the text to display. kNotFound with
  // message "quit" signals end of session.
  Result<std::string> ProcessLine(std::string_view line);

  // Runs a whole script, concatenating outputs; stops at the first error
  // (reported with its line number) or at quit.
  Result<std::string> RunScript(std::string_view script);

  ObjectStore& store() { return store_; }

 private:
  struct LiveView {
    explicit LiveView(ViewDefinition d) : def(std::move(d)) {}
    ViewDefinition def;
    std::unique_ptr<MaterializedView> view;
    std::unique_ptr<LocalAccessor> accessor;
    std::unique_ptr<Algorithm1Maintainer> algorithm1;
    std::unique_ptr<GeneralMaintainer> general;
  };

  Result<std::string> CmdPut(const std::vector<std::string>& args);
  Result<std::string> CmdModify(const std::vector<std::string>& args);
  Result<std::string> CmdShow(const std::vector<std::string>& args);
  Result<std::string> CmdQuery(std::string_view text);
  Result<std::string> CmdDefine(std::string_view text,
                                const std::vector<std::string>& args);
  Result<std::string> CmdDefineUnion(std::string_view line,
                                     const std::vector<std::string>& args,
                                     bool first_branch);
  Result<std::string> CmdDefineAggregate(std::string_view line,
                                         const std::vector<std::string>& args);
  Result<std::string> CmdViews();
  Result<std::string> CmdStats();

  // Resolves a query entry to a root OID in store_.
  Oid ResolveRoot(const Query& query) const;

  Result<Value> ParseTypedValue(const std::string& type,
                                const std::string& text);

  ObjectStore store_;
  std::vector<std::unique_ptr<LiveView>> views_;
  struct LiveUnion {
    std::unique_ptr<LocalAccessor> accessor;
    std::unique_ptr<UnionView> view;
  };
  std::vector<std::unique_ptr<LiveUnion>> unions_;
  std::vector<std::unique_ptr<AggregateView>> aggregates_;
  std::unique_ptr<Transaction> transaction_;  // open `begin` block, if any
  size_t answer_counter_ = 0;
  size_t branch_counter_ = 0;
};

}  // namespace gsv

#endif  // GSV_SHELL_SHELL_H_
