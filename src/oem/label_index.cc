#include "oem/label_index.h"

#include <algorithm>

namespace gsv {

namespace {

// Sorted-vector insert; returns false if already present.
bool SortedInsert(std::vector<uint64_t>* v, uint64_t value) {
  auto it = std::lower_bound(v->begin(), v->end(), value);
  if (it != v->end() && *it == value) return false;
  v->insert(it, value);
  return true;
}

// Sorted-vector erase; returns false if absent.
bool SortedErase(std::vector<uint64_t>* v, uint64_t value) {
  auto it = std::lower_bound(v->begin(), v->end(), value);
  if (it == v->end() || *it != value) return false;
  v->erase(it);
  return true;
}

bool SortedContains(const std::vector<uint64_t>& v, uint64_t value) {
  auto it = std::lower_bound(v.begin(), v.end(), value);
  return it != v.end() && *it == value;
}

}  // namespace

bool Postings::Add(uint64_t value) {
  if (SortedErase(&dels_, value)) return true;  // undelete from base
  if (base_ != nullptr && SortedContains(*base_, value)) return false;
  bool added = SortedInsert(&adds_, value);
  if (added) CompactIfNeeded();
  return added;
}

bool Postings::Erase(uint64_t value) {
  if (SortedErase(&adds_, value)) return true;
  if (base_ == nullptr || !SortedContains(*base_, value)) return false;
  bool erased = SortedInsert(&dels_, value);
  if (erased) CompactIfNeeded();
  return erased;
}

bool Postings::Contains(uint64_t value) const {
  if (SortedContains(adds_, value)) return true;
  if (base_ == nullptr || !SortedContains(*base_, value)) return false;
  return !SortedContains(dels_, value);
}

bool Postings::Empty() const { return Size() == 0; }

size_t Postings::Size() const {
  return (base_ ? base_->size() : 0) - dels_.size() + adds_.size();
}

void Postings::CompactIfNeeded() {
  if (adds_.size() + dels_.size() < kCompactThreshold) return;
  auto merged = std::make_shared<std::vector<uint64_t>>();
  merged->reserve(Size());
  Scan([&](uint64_t v) { merged->push_back(v); });
  base_ = std::move(merged);
  adds_.clear();
  dels_.clear();
}

const Postings* LabelIndexSnapshot::Labels(const std::string& label) const {
  const IndexShard* shard =
      shards[std::hash<std::string>{}(label) % kIndexShards].get();
  if (shard == nullptr) return nullptr;
  auto it = shard->labels.find(label);
  return it == shard->labels.end() ? nullptr : &it->second;
}

const StepBucket* LabelIndexSnapshot::Step(
    std::string_view parent_label, std::string_view child_label) const {
  const IndexShard* shard =
      shards[std::hash<std::string_view>{}(child_label) % kIndexShards].get();
  if (shard == nullptr) return nullptr;
  auto it = shard->steps.find(StepKeyView{parent_label, child_label});
  return it == shard->steps.end() ? nullptr : &it->second;
}

const Postings* LabelIndexSnapshot::UpAny(
    const std::string& child_label) const {
  const IndexShard* shard =
      shards[std::hash<std::string>{}(child_label) % kIndexShards].get();
  if (shard == nullptr) return nullptr;
  auto it = shard->up_any.find(child_label);
  return it == shard->up_any.end() ? nullptr : &it->second;
}

const Postings* LabelIndexSnapshot::Values(const std::string& label) const {
  const IndexShard* shard =
      shards[std::hash<std::string>{}(label) % kIndexShards].get();
  if (shard == nullptr) return nullptr;
  auto it = shard->values.find(label);
  return it == shard->values.end() ? nullptr : &it->second;
}

const Postings* LabelIndexSnapshot::ValuesOther(
    const std::string& label) const {
  const IndexShard* shard =
      shards[std::hash<std::string>{}(label) % kIndexShards].get();
  if (shard == nullptr) return nullptr;
  auto it = shard->values_other.find(label);
  return it == shard->values_other.end() ? nullptr : &it->second;
}

IndexShard& LabelIndex::Dirty(const std::string& label) {
  int shard = ShardOf(label);
  dirty_mask_ |= 1u << shard;
  return live_[shard];
}

void LabelIndex::AddObject(const std::string& label, uint32_t oid) {
  Dirty(label).labels[label].Add(oid);
}

void LabelIndex::RemoveObject(const std::string& label, uint32_t oid) {
  IndexShard& shard = Dirty(label);
  auto it = shard.labels.find(label);
  if (it == shard.labels.end()) return;
  it->second.Erase(oid);
  if (it->second.Empty()) shard.labels.erase(it);
}

void LabelIndex::AddValue(const std::string& label, uint32_t oid,
                          const Value& value) {
  if (value.IsSet()) return;
  IndexShard& shard = Dirty(label);
  uint32_t bucket = 0;
  if (ValueBucketOf(value, &bucket)) {
    shard.values[label].Add(PackPair(oid, bucket));
  } else {
    shard.values_other[label].Add(oid);
  }
}

void LabelIndex::RemoveValue(const std::string& label, uint32_t oid,
                             const Value& value) {
  if (value.IsSet()) return;
  IndexShard& shard = Dirty(label);
  uint32_t bucket = 0;
  if (ValueBucketOf(value, &bucket)) {
    auto it = shard.values.find(label);
    if (it == shard.values.end()) return;
    it->second.Erase(PackPair(oid, bucket));
    if (it->second.Empty()) shard.values.erase(it);
  } else {
    auto it = shard.values_other.find(label);
    if (it == shard.values_other.end()) return;
    it->second.Erase(oid);
    if (it->second.Empty()) shard.values_other.erase(it);
  }
}

// Step buckets and up_any both live in the child label's shard, so one edge
// dirties at most two shards (child label + the object-posting shard).
void LabelIndex::AddEdge(const std::string& parent_label, uint32_t parent,
                         const std::string& child_label, uint32_t child) {
  IndexShard& shard = Dirty(child_label);
  StepBucket& bucket = shard.steps[StepKey{parent_label, child_label}];
  bucket.down.Add(PackPair(parent, child));
  bucket.up.Add(PackPair(child, parent));
  shard.up_any[child_label].Add(PackPair(child, parent));
}

void LabelIndex::RemoveEdge(const std::string& parent_label, uint32_t parent,
                            const std::string& child_label, uint32_t child) {
  IndexShard& shard = Dirty(child_label);
  auto it = shard.steps.find(StepKey{parent_label, child_label});
  if (it != shard.steps.end()) {
    it->second.down.Erase(PackPair(parent, child));
    it->second.up.Erase(PackPair(child, parent));
    if (it->second.down.Empty()) shard.steps.erase(it);
  }
  auto up = shard.up_any.find(child_label);
  if (up != shard.up_any.end()) {
    up->second.Erase(PackPair(child, parent));
    if (up->second.Empty()) shard.up_any.erase(up);
  }
}

void LabelIndex::Publish() {
  if (dirty_mask_ == 0) return;
  LabelIndexSnapshotPtr prev =
      std::atomic_load_explicit(&published_, std::memory_order_relaxed);
  auto next = std::make_shared<LabelIndexSnapshot>();
  next->epoch = ++epoch_;
  for (int i = 0; i < kIndexShards; ++i) {
    if (dirty_mask_ & (1u << i)) {
      next->shards[i] = std::make_shared<const IndexShard>(live_[i]);
    } else {
      next->shards[i] = prev->shards[i];
    }
  }
  std::atomic_store_explicit(&published_, LabelIndexSnapshotPtr(std::move(next)),
                             std::memory_order_release);
  dirty_mask_ = 0;
}

}  // namespace gsv
