#ifndef GSV_OEM_OID_TABLE_H_
#define GSV_OEM_OID_TABLE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace gsv {

// Process-wide OID interner. Every distinct OID string is stored exactly
// once and mapped to a dense uint32_t id; Oid holds the id and all equality
// and hashing throughout the library become integer operations. Id 0 is
// reserved for the empty (invalid) OID.
//
// Thread-safe: Intern takes a shared lock on the hit path and an exclusive
// lock only when a new string is added; String() is lock-free. Interned
// strings are immortal and never move, so references returned by String()
// remain valid for the life of the process (string_views into them are safe
// to hand out — see Oid::BaseView).
class OidTable {
 public:
  static OidTable& Global();

  OidTable(const OidTable&) = delete;
  OidTable& operator=(const OidTable&) = delete;

  // Returns the id of `text`, interning it on first sight. "" -> 0.
  uint32_t Intern(std::string_view text);

  // Interns the delegate form "<view>.<base>" with a single allocation.
  uint32_t InternDelegate(uint32_t view_id, uint32_t base_id);

  // The string for an id previously returned by Intern. Lock-free.
  const std::string& String(uint32_t id) const {
    return blocks_[id >> kBlockBits].load(std::memory_order_acquire)
        [id & (kBlockSize - 1)];
  }

  // Number of interned strings (including the reserved empty slot).
  size_t size() const;

 private:
  // 4096 strings per block; blocks are allocated on demand and never freed,
  // so String() can read without taking the lock.
  static constexpr uint32_t kBlockBits = 12;
  static constexpr uint32_t kBlockSize = 1u << kBlockBits;
  static constexpr uint32_t kMaxBlocks = 1u << 15;  // ~134M distinct OIDs

  OidTable();

  mutable std::shared_mutex mutex_;
  // Views point into block storage; guarded by mutex_.
  std::unordered_map<std::string_view, uint32_t> ids_;
  uint32_t size_ = 0;  // guarded by mutex_
  std::atomic<std::string*> blocks_[kMaxBlocks] = {};
};

}  // namespace gsv

#endif  // GSV_OEM_OID_TABLE_H_
