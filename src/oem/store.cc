#include "oem/store.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>

namespace gsv {

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert:
      return "insert";
    case UpdateKind::kDelete:
      return "delete";
    case UpdateKind::kModify:
      return "modify";
  }
  return "unknown";
}

std::string Update::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      out << UpdateKindName(kind) << '(' << parent.str() << ", " << child.str()
          << ')';
      break;
    case UpdateKind::kModify:
      out << "modify(" << parent.str() << ", " << old_value.ToString() << ", "
          << new_value.ToString() << ')';
      break;
  }
  return out.str();
}

Status ObjectStore::Put(Object object) {
  if (!object.oid().valid()) {
    return Status::InvalidArgument("object has an invalid OID");
  }
  const Oid oid = object.oid();
  Status status = engine_->Put(std::move(object));
  ++metrics_.lookups;
  if (!status.ok()) return status;
  const Object* stored = engine_->Get(oid);
  if (options_.enable_parent_index && stored->IsSet()) {
    IndexChildren(*stored);
  }
  if (options_.enable_label_index) {
    LabelIndexPutObject(*stored);
    label_index_.Publish();
  }
  return Status::Ok();
}

Status ObjectStore::PutAtomic(const Oid& oid, std::string label, Value value) {
  if (value.IsSet()) {
    return Status::InvalidArgument("PutAtomic called with a set value");
  }
  return Put(Object(oid, std::move(label), std::move(value)));
}

Status ObjectStore::PutSet(const Oid& oid, std::string label,
                           std::vector<Oid> children) {
  return Put(Object(oid, std::move(label), Value::SetOf(std::move(children))));
}

Status ObjectStore::Remove(const Oid& oid) {
  const Object* object = engine_->Get(oid);
  ++metrics_.lookups;
  if (object == nullptr) {
    return Status::NotFound("object " + oid.str() + " does not exist");
  }
  if (options_.enable_label_index) {
    LabelIndexRemoveObject(*object);
  }
  if (options_.enable_parent_index && object->IsSet()) {
    UnindexChildren(*object);
  }
  GSV_RETURN_IF_ERROR(engine_->Erase(oid));
  // The removed object's own parent_index_ entry is kept: the surviving
  // parents still hold the (now dangling) edge, and a later re-Put of this
  // OID must find them to re-index. Only an empty entry is dropped.
  if (options_.check_dangling) {
    for (const Oid& parent : Parents(oid)) {
      dangling_log_.push_back(DanglingEdge{parent, oid});
    }
  }
  auto pit = parent_index_.find(oid);
  if (pit != parent_index_.end() && pit->second.empty()) {
    parent_index_.erase(pit);
  }
  for (auto db = databases_.begin(); db != databases_.end();) {
    if (db->second == oid) {
      db = databases_.erase(db);
    } else {
      ++db;
    }
  }
  label_index_.Publish();
  return Status::Ok();
}

const Object* ObjectStore::Get(const Oid& oid) const {
  ++metrics_.lookups;
  return engine_->Get(oid);
}

bool ObjectStore::Contains(const Oid& oid) const {
  ++metrics_.lookups;
  return engine_->Get(oid) != nullptr;
}

std::vector<Oid> ObjectStore::Parents(const Oid& oid) const {
  if (options_.enable_parent_index) {
    ++metrics_.parent_lookups;
    auto it = parent_index_.find(oid);
    if (it == parent_index_.end()) return {};
    return it->second.elements();
  }
  // No inverse index: scan every set object (§4.4: "evaluating the same
  // function may require a traversal").
  std::vector<Oid> parents;
  engine_->ScanUnordered([&](const Object& object) {
    ++metrics_.objects_scanned;
    if (object.IsSet() && object.children().Contains(oid)) {
      parents.push_back(object.oid());
    }
  });
  std::sort(parents.begin(), parents.end());
  return parents;
}

void ObjectStore::ForEach(
    const std::function<void(const Object&)>& fn) const {
  engine_->ScanUnordered([&](const Object& object) {
    ++metrics_.objects_scanned;
    fn(object);
  });
}

void ObjectStore::ScanInOrder(
    const std::function<void(const Object&)>& fn) const {
  engine_->ScanInOrder([&](const Object& object) {
    ++metrics_.objects_scanned;
    fn(object);
  });
}

Status ObjectStore::Insert(const Oid& parent, const Oid& child) {
  Object* object = engine_->GetMutable(parent);
  ++metrics_.lookups;
  if (object == nullptr) {
    return Status::NotFound("insert: parent " + parent.str() + " not found");
  }
  if (!object->IsSet()) {
    return Status::FailedPrecondition("insert: parent " + parent.str() +
                                      " is not a set object");
  }
  if (!Contains(child)) {
    return Status::NotFound("insert: child " + child.str() + " not found");
  }
  if (!object->mutable_children().Insert(child)) {
    return Status::Ok();  // already a child: no-op, no notification
  }
  if (options_.enable_parent_index) {
    parent_index_[child].Insert(parent);
  }
  if (options_.enable_label_index) {
    LabelIndexAddEdge(*object, child);
    label_index_.Publish();  // listeners must probe the post-update epoch
  }
  Notify(Update::Insert(parent, child));
  return Status::Ok();
}

Status ObjectStore::Delete(const Oid& parent, const Oid& child) {
  Object* object = engine_->GetMutable(parent);
  ++metrics_.lookups;
  if (object == nullptr) {
    return Status::NotFound("delete: parent " + parent.str() + " not found");
  }
  if (!object->IsSet()) {
    return Status::FailedPrecondition("delete: parent " + parent.str() +
                                      " is not a set object");
  }
  if (!object->mutable_children().Erase(child)) {
    return Status::NotFound("delete: " + child.str() + " is not a child of " +
                            parent.str());
  }
  if (options_.enable_parent_index) {
    auto pit = parent_index_.find(child);
    if (pit != parent_index_.end()) {
      pit->second.Erase(parent);
      if (pit->second.empty()) parent_index_.erase(pit);
    }
  }
  if (options_.enable_label_index) {
    LabelIndexRemoveEdge(*object, child);
    label_index_.Publish();
  }
  Notify(Update::Delete(parent, child));
  return Status::Ok();
}

Status ObjectStore::Modify(const Oid& oid, Value new_value) {
  Object* object = engine_->GetMutable(oid);
  ++metrics_.lookups;
  if (object == nullptr) {
    return Status::NotFound("modify: object " + oid.str() + " not found");
  }
  if (!object->IsAtomic()) {
    return Status::FailedPrecondition(
        "modify: " + oid.str() +
        " is a set object; change sets via insert/delete");
  }
  if (new_value.IsSet()) {
    return Status::InvalidArgument("modify: new value must be atomic");
  }
  Value old_value = object->value();
  if (options_.enable_label_index) {
    label_index_.RemoveValue(object->label(), oid.id(), old_value);
    label_index_.AddValue(object->label(), oid.id(), new_value);
    label_index_.Publish();  // listeners must probe the post-update epoch
  }
  object->mutable_value() = new_value;
  Notify(Update::Modify(oid, std::move(old_value), std::move(new_value)));
  return Status::Ok();
}

Status ObjectStore::Apply(const Update& update) {
  switch (update.kind) {
    case UpdateKind::kInsert:
      return Insert(update.parent, update.child);
    case UpdateKind::kDelete:
      return Delete(update.parent, update.child);
    case UpdateKind::kModify:
      return Modify(update.parent, update.new_value);
  }
  return Status::InvalidArgument("unknown update kind");
}

Result<bool> ObjectStore::ApplyFromLog(const Update& update) {
  switch (update.kind) {
    case UpdateKind::kInsert: {
      const Object* parent = Get(update.parent);
      if (parent == nullptr || !parent->IsSet()) return false;
      if (parent->children().Contains(update.child)) return false;
      GSV_RETURN_IF_ERROR(AddChildRaw(update.parent, update.child));
      return true;
    }
    case UpdateKind::kDelete: {
      const Object* parent = Get(update.parent);
      if (parent == nullptr || !parent->IsSet()) return false;
      if (!parent->children().Contains(update.child)) return false;
      GSV_RETURN_IF_ERROR(RemoveChildRaw(update.parent, update.child));
      return true;
    }
    case UpdateKind::kModify: {
      const Object* object = Get(update.parent);
      if (object == nullptr || !object->IsAtomic()) return false;
      if (object->value() == update.new_value) return false;
      GSV_RETURN_IF_ERROR(SetValueRaw(update.parent, update.new_value));
      return true;
    }
  }
  return Status::InvalidArgument("unknown update kind");
}

Status ObjectStore::AddChildRaw(const Oid& parent, const Oid& child) {
  Object* object = engine_->GetMutable(parent);
  ++metrics_.lookups;
  if (object == nullptr) {
    return Status::NotFound("raw add: parent " + parent.str() + " not found");
  }
  if (!object->IsSet()) {
    return Status::FailedPrecondition("raw add: parent " + parent.str() +
                                      " is not a set object");
  }
  if (object->mutable_children().Insert(child)) {
    if (options_.enable_parent_index) {
      parent_index_[child].Insert(parent);
    }
    if (options_.enable_label_index) {
      LabelIndexAddEdge(*object, child);
      label_index_.Publish();
    }
  }
  return Status::Ok();
}

Status ObjectStore::RemoveChildRaw(const Oid& parent, const Oid& child) {
  Object* object = engine_->GetMutable(parent);
  ++metrics_.lookups;
  if (object == nullptr) {
    return Status::NotFound("raw remove: parent " + parent.str() +
                            " not found");
  }
  if (!object->IsSet()) {
    return Status::FailedPrecondition("raw remove: parent " + parent.str() +
                                      " is not a set object");
  }
  if (object->mutable_children().Erase(child)) {
    if (options_.enable_parent_index) {
      auto pit = parent_index_.find(child);
      if (pit != parent_index_.end()) {
        pit->second.Erase(parent);
        if (pit->second.empty()) parent_index_.erase(pit);
      }
    }
    if (options_.enable_label_index) {
      LabelIndexRemoveEdge(*object, child);
      label_index_.Publish();
    }
  }
  return Status::Ok();
}

Status ObjectStore::ReplaceChildRaw(const Oid& parent, const Oid& from,
                                    const Oid& to) {
  const Object* object = engine_->Get(parent);
  ++metrics_.lookups;
  if (object == nullptr) {
    return Status::NotFound("raw replace: parent " + parent.str() +
                            " not found");
  }
  if (!object->IsSet()) {
    return Status::FailedPrecondition("raw replace: parent " + parent.str() +
                                      " is not a set object");
  }
  if (!object->children().Contains(from)) return Status::Ok();
  GSV_RETURN_IF_ERROR(RemoveChildRaw(parent, from));
  return AddChildRaw(parent, to);
}

Status ObjectStore::SetValueRaw(const Oid& oid, Value value) {
  Object* object = engine_->GetMutable(oid);
  ++metrics_.lookups;
  if (object == nullptr) {
    return Status::NotFound("raw set: object " + oid.str() + " not found");
  }
  if (object->IsSet()) {
    if (options_.enable_label_index) {
      for (const Oid& child : object->children()) {
        LabelIndexRemoveEdge(*object, child);
      }
    }
    if (options_.enable_parent_index) UnindexChildren(*object);
  }
  if (options_.enable_label_index) {
    label_index_.RemoveValue(object->label(), oid.id(), object->value());
    label_index_.AddValue(object->label(), oid.id(), value);
  }
  object->mutable_value() = std::move(value);
  if (object->IsSet()) {
    if (options_.enable_parent_index) IndexChildren(*object);
    if (options_.enable_label_index) {
      for (const Oid& child : object->children()) {
        LabelIndexAddEdge(*object, child);
      }
    }
  }
  label_index_.Publish();
  return Status::Ok();
}

Status ObjectStore::CreateDatabase(const std::string& name, const Oid& oid,
                                   std::string label) {
  GSV_RETURN_IF_ERROR(PutSet(oid, std::move(label)));
  return RegisterDatabase(name, oid);
}

Status ObjectStore::RegisterDatabase(const std::string& name, const Oid& oid) {
  const Object* object = Get(oid);
  if (object == nullptr) {
    return Status::NotFound("database object " + oid.str() + " not found");
  }
  if (!object->IsSet()) {
    return Status::FailedPrecondition("database object " + oid.str() +
                                      " must have set type");
  }
  auto [it, inserted] = databases_.emplace(name, oid);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("database " + name + " already registered");
  }
  return Status::Ok();
}

Oid ObjectStore::DatabaseOid(const std::string& name) const {
  auto it = databases_.find(name);
  return it == databases_.end() ? Oid() : it->second;
}

bool ObjectStore::InDatabase(const std::string& name, const Oid& oid) const {
  auto it = databases_.find(name);
  if (it == databases_.end()) return false;
  const Object* db = Get(it->second);
  return db != nullptr && db->IsSet() && db->children().Contains(oid);
}

std::vector<std::string> ObjectStore::DatabaseNames() const {
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [name, oid] : databases_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void ObjectStore::AddListener(UpdateListener* listener) {
  listeners_.push_back(listener);
}

void ObjectStore::RemoveListener(UpdateListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

size_t ObjectStore::CollectGarbage(const std::vector<Oid>& extra_roots) {
  std::unordered_set<uint32_t> reachable;
  std::deque<Oid> frontier;
  auto add_root = [&](const Oid& oid) {
    if (Contains(oid) && reachable.insert(oid.id()).second) {
      frontier.push_back(oid);
    }
  };
  for (const auto& [name, oid] : databases_) add_root(oid);
  for (const Oid& oid : extra_roots) add_root(oid);

  while (!frontier.empty()) {
    Oid current = frontier.front();
    frontier.pop_front();
    const Object* object = Get(current);
    if (object == nullptr || !object->IsSet()) continue;
    for (const Oid& child : object->children()) {
      ++metrics_.edges_traversed;
      if (Contains(child) && reachable.insert(child.id()).second) {
        frontier.push_back(child);
      }
    }
  }

  std::vector<Oid> doomed;
  engine_->ScanUnordered([&](const Object& object) {
    if (reachable.find(object.oid().id()) == reachable.end()) {
      doomed.push_back(object.oid());
    }
  });
  for (const Oid& oid : doomed) Remove(oid);
  return doomed.size();
}

void ObjectStore::Notify(const Update& update) {
  // Copy: a listener may add/remove listeners while being notified.
  std::vector<UpdateListener*> listeners = listeners_;
  for (UpdateListener* listener : listeners) {
    listener->OnUpdate(*this, update);
  }
}

const Object* ObjectStore::RawGet(const Oid& oid) const {
  return engine_->Get(oid);
}

void ObjectStore::LabelIndexPutObject(const Object& object) {
  label_index_.AddObject(object.label(), object.oid().id());
  label_index_.AddValue(object.label(), object.oid().id(), object.value());
  if (object.IsSet()) {
    for (const Oid& child : object.children()) {
      LabelIndexAddEdge(object, child);
    }
  }
  // Edges *to* this object from surviving parents (a re-Put of a previously
  // removed OID, or a load that puts parents before children): the parent
  // index kept them even while the child was missing.
  auto pit = parent_index_.find(object.oid());
  if (pit != parent_index_.end()) {
    for (const Oid& parent : pit->second) {
      const Object* p = RawGet(parent);
      if (p != nullptr) {
        label_index_.AddEdge(p->label(), parent.id(), object.label(),
                             object.oid().id());
      }
    }
  }
}

void ObjectStore::LabelIndexRemoveObject(const Object& object) {
  label_index_.RemoveObject(object.label(), object.oid().id());
  label_index_.RemoveValue(object.label(), object.oid().id(), object.value());
  if (object.IsSet()) {
    for (const Oid& child : object.children()) {
      LabelIndexRemoveEdge(object, child);
    }
  }
  auto pit = parent_index_.find(object.oid());
  if (pit != parent_index_.end()) {
    for (const Oid& parent : pit->second) {
      const Object* p = RawGet(parent);
      if (p != nullptr) {
        label_index_.RemoveEdge(p->label(), parent.id(), object.label(),
                                object.oid().id());
      }
    }
  }
}

// Both edge hooks resolve the child first: an edge to a missing child is
// dangling and deliberately absent from the index, exactly as traversal
// skips children whose Get() fails.
void ObjectStore::LabelIndexAddEdge(const Object& parent, const Oid& child) {
  const Object* c = RawGet(child);
  if (c == nullptr) return;
  label_index_.AddEdge(parent.label(), parent.oid().id(), c->label(),
                       child.id());
}

void ObjectStore::LabelIndexRemoveEdge(const Object& parent,
                                       const Oid& child) {
  const Object* c = RawGet(child);
  if (c == nullptr) return;
  label_index_.RemoveEdge(parent.label(), parent.oid().id(), c->label(),
                          child.id());
}

std::vector<DanglingEdge> ObjectStore::AuditDanglingEdges() const {
  std::vector<DanglingEdge> dangling;
  engine_->ScanUnordered([&](const Object& object) {
    ++metrics_.objects_scanned;
    if (!object.IsSet()) return;
    for (const Oid& child : object.children()) {
      if (engine_->Get(child) == nullptr) {
        dangling.push_back(DanglingEdge{object.oid(), child});
      }
    }
  });
  std::sort(dangling.begin(), dangling.end(),
            [](const DanglingEdge& a, const DanglingEdge& b) {
              if (a.parent != b.parent) return a.parent < b.parent;
              return a.child < b.child;
            });
  return dangling;
}

void ObjectStore::IndexChildren(const Object& object) {
  for (const Oid& child : object.children()) {
    parent_index_[child].Insert(object.oid());
  }
}

void ObjectStore::UnindexChildren(const Object& object) {
  for (const Oid& child : object.children()) {
    auto it = parent_index_.find(child);
    if (it == parent_index_.end()) continue;
    it->second.Erase(object.oid());
    if (it->second.empty()) parent_index_.erase(it);
  }
}

}  // namespace gsv
