#include "oem/value.h"

#include <sstream>

namespace gsv {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "integer";
    case ValueType::kReal:
      return "real";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
    case ValueType::kSet:
      return "set";
  }
  return "unknown";
}

OidSet::OidSet(std::vector<Oid> oids) : oids_(std::move(oids)) {
  SortOidsLexicographic(&oids_);
  oids_.erase(std::unique(oids_.begin(), oids_.end()), oids_.end());
}

bool OidSet::Insert(const Oid& oid) {
  auto it = std::lower_bound(oids_.begin(), oids_.end(), oid);
  if (it != oids_.end() && *it == oid) return false;
  oids_.insert(it, oid);
  return true;
}

bool OidSet::Erase(const Oid& oid) {
  auto it = std::lower_bound(oids_.begin(), oids_.end(), oid);
  if (it == oids_.end() || *it != oid) return false;
  oids_.erase(it);
  return true;
}

bool OidSet::Contains(const Oid& oid) const {
  return std::binary_search(oids_.begin(), oids_.end(), oid);
}

bool OidSet::Contains(std::string_view repr) const {
  auto it = std::lower_bound(
      oids_.begin(), oids_.end(), repr,
      [](const Oid& oid, std::string_view r) { return oid.str() < r; });
  return it != oids_.end() && it->str() == repr;
}

OidSet OidSet::Union(const OidSet& a, const OidSet& b) {
  OidSet out;
  out.oids_.reserve(a.size() + b.size());
  std::set_union(a.oids_.begin(), a.oids_.end(), b.oids_.begin(),
                 b.oids_.end(), std::back_inserter(out.oids_));
  return out;
}

OidSet OidSet::Intersect(const OidSet& a, const OidSet& b) {
  OidSet out;
  std::set_intersection(a.oids_.begin(), a.oids_.end(), b.oids_.begin(),
                        b.oids_.end(), std::back_inserter(out.oids_));
  return out;
}

Value::CompareResult Value::Compare(const Value& other) const {
  CompareResult result;
  if (IsSet() || other.IsSet()) return result;

  auto numeric = [](const Value& v, double* out) {
    switch (v.type()) {
      case ValueType::kInt:
        *out = static_cast<double>(v.AsInt());
        return true;
      case ValueType::kReal:
        *out = v.AsReal();
        return true;
      default:
        return false;
    }
  };

  double lhs_num = 0;
  double rhs_num = 0;
  if (numeric(*this, &lhs_num) && numeric(other, &rhs_num)) {
    result.comparable = true;
    result.order = lhs_num < rhs_num ? -1 : (lhs_num > rhs_num ? 1 : 0);
    return result;
  }
  if (type() != other.type()) return result;

  switch (type()) {
    case ValueType::kString: {
      int cmp = AsString().compare(other.AsString());
      result.comparable = true;
      result.order = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      return result;
    }
    case ValueType::kBool:
      result.comparable = true;
      result.order = static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
      return result;
    default:
      return result;
  }
}

std::string Value::ToString() const {
  std::ostringstream out;
  switch (type()) {
    case ValueType::kInt:
      out << AsInt();
      break;
    case ValueType::kReal:
      out << AsReal();
      break;
    case ValueType::kString:
      out << '\'' << AsString() << '\'';
      break;
    case ValueType::kBool:
      out << (AsBool() ? "true" : "false");
      break;
    case ValueType::kSet: {
      out << '{';
      bool first = true;
      for (const Oid& oid : AsSet()) {
        if (!first) out << ',';
        first = false;
        out << oid.str();
      }
      out << '}';
      break;
    }
  }
  return out.str();
}

}  // namespace gsv
