#ifndef GSV_OEM_OBJECT_H_
#define GSV_OEM_OBJECT_H_

#include <string>
#include <utility>

#include "oem/oid.h"
#include "oem/value.h"

namespace gsv {

// An OEM object (paper §2): <OID, label, type, value>. The type field is
// derived from the value alternative, as the paper notes for atomic objects
// ("we omit the type since it can be inferred by its value").
class Object {
 public:
  Object() = default;
  Object(Oid oid, std::string label, Value value)
      : oid_(std::move(oid)), label_(std::move(label)), value_(std::move(value)) {}

  const Oid& oid() const { return oid_; }
  const std::string& label() const { return label_; }
  ValueType type() const { return value_.type(); }
  const Value& value() const { return value_; }
  Value& mutable_value() { return value_; }

  bool IsAtomic() const { return value_.IsAtomic(); }
  bool IsSet() const { return value_.IsSet(); }

  // Children of a set object. Requires IsSet().
  const OidSet& children() const { return value_.AsSet(); }
  OidSet& mutable_children() { return value_.MutableSet(); }

  void set_label(std::string label) { label_ = std::move(label); }

  // Paper notation: <OID, label, type, value>.
  std::string ToString() const;

  bool operator==(const Object& other) const {
    return oid_ == other.oid_ && label_ == other.label_ &&
           value_ == other.value_;
  }

 private:
  Oid oid_;
  std::string label_;
  Value value_;
};

}  // namespace gsv

#endif  // GSV_OEM_OBJECT_H_
