#include "oem/oid_table.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace gsv {

OidTable& OidTable::Global() {
  static OidTable table;
  return table;
}

OidTable::OidTable() {
  // Reserve id 0 for the empty (invalid) OID.
  auto* block = new std::string[kBlockSize];
  blocks_[0].store(block, std::memory_order_release);
  ids_.emplace(std::string_view(block[0]), 0);
  size_ = 1;
}

uint32_t OidTable::Intern(std::string_view text) {
  if (text.empty()) return 0;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  const uint32_t id = size_;
  if ((id >> kBlockBits) >= kMaxBlocks) {
    std::fprintf(stderr, "OidTable: interned-OID capacity exhausted\n");
    std::abort();
  }
  std::string* block = blocks_[id >> kBlockBits].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new std::string[kBlockSize];
    blocks_[id >> kBlockBits].store(block, std::memory_order_release);
  }
  std::string& slot = block[id & (kBlockSize - 1)];
  slot.assign(text.data(), text.size());
  ids_.emplace(std::string_view(slot), id);
  ++size_;
  return id;
}

uint32_t OidTable::InternDelegate(uint32_t view_id, uint32_t base_id) {
  const std::string& view = String(view_id);
  const std::string& base = String(base_id);
  std::string repr;
  repr.reserve(view.size() + 1 + base.size());
  repr += view;
  repr += '.';
  repr += base;
  return Intern(repr);
}

size_t OidTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return size_;
}

}  // namespace gsv
