#ifndef GSV_OEM_STORAGE_ENGINE_H_
#define GSV_OEM_STORAGE_ENGINE_H_

#include <functional>
#include <memory>

#include "oem/object.h"
#include "oem/oid.h"
#include "util/status.h"

namespace gsv {

struct StoreMetrics;

// The adapter seam between ObjectStore's logic (basic updates, listeners,
// parent/label indexes, databases) and the bytes that back the objects.
// ObjectStore routes every object access through one of these; everything
// above the store — Warehouse, MaterializedView delegates, auxiliary
// caches, the label/path index base layers — is engine-agnostic.
//
// Two engines ship: InMemoryEngine (the original memory-resident hash
// table; the default) and PagedEngine (oem/paged_engine.h: fixed-size
// on-disk pages in the checkpoint text encoding behind a bounded buffer
// pool), which takes a warehouse beyond RAM.
//
// ## Pointer contract
//
// Get/GetMutable return pointers into engine-resident state. A returned
// pointer stays valid until
//   (a) that object is erased or re-put, or
//   (b) the next SafePoint() on this engine,
// whichever comes first. InMemoryEngine pointers additionally survive safe
// points (hash-table nodes are stable), but callers must not rely on that:
// code written against the seam treats SafePoint() as invalidating. The
// ObjectStore documents the same contract to its own callers.
//
// ## Thread compatibility
//
// Mirrors ObjectStore: mutating calls (GetMutable/Put/Erase/SafePoint/
// Flush) require external synchronization; read calls (Get/Size/scans) are
// safe concurrently with each other. A paged engine's reads fault pages in
// behind an internal lock, so concurrent readers are safe even though a
// read physically mutates the pool.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  // Engine name for diagnostics ("memory", "paged").
  virtual const char* EngineName() const = 0;

  // ---- Point operations ----

  // The object, or nullptr when absent. See the pointer contract above.
  virtual const Object* Get(const Oid& oid) = 0;

  // Mutable access; the engine marks the object's backing page dirty. The
  // caller must not change the object's OID.
  virtual Object* GetMutable(const Oid& oid) = 0;

  // Adds a new object. kAlreadyExists when the OID is present.
  virtual Status Put(Object object) = 0;

  // Removes an object. kNotFound when absent.
  virtual Status Erase(const Oid& oid) = 0;

  virtual size_t Size() const = 0;

  // ---- Scans ----

  // Visits every object in canonical lexicographic OID order (the on-disk
  // and checkpoint order). A paged engine streams page by page, pinning
  // only the page under the cursor, so a full scan of a beyond-RAM store
  // stays within the pool budget. `fn` must not mutate this engine.
  virtual void ScanInOrder(const std::function<void(const Object&)>& fn) = 0;

  // Visits every object in unspecified order. Default: the ordered scan;
  // InMemoryEngine overrides with a raw hash-table walk (no sort).
  virtual void ScanUnordered(const std::function<void(const Object&)>& fn) {
    ScanInOrder(fn);
  }

  // ---- Residency / durability hooks ----

  // Declares a quiescent point: the caller holds no pointers obtained from
  // Get/GetMutable. A bounded-pool engine evicts back down to its budget
  // here (second-chance over unpinned frames); the in-memory engine
  // no-ops. The warehouse calls this at drain/checkpoint boundaries, the
  // replica after applying each commit group, and bulk loads periodically.
  virtual void SafePoint() {}

  // Writes every dirty page and the page directory to the engine's backing
  // files (checkpoint integration; no-op for in-memory). The engine's
  // on-disk image is only guaranteed complete after a Flush.
  virtual Status Flush() { return Status::Ok(); }

  // Points the engine's counters (page faults, evictions, writeback bytes,
  // pinned peak) at the owning store's metrics sheet. Called once by
  // ObjectStore's constructor, before any operation.
  virtual void AttachMetrics(StoreMetrics* metrics) { (void)metrics; }
};

// Builds one engine instance. A factory may be invoked several times (one
// store per shard, one per auxiliary cache); each call must return an
// independent engine.
using StorageEngineFactory = std::function<std::unique_ptr<StorageEngine>()>;

// The default memory-resident engine (the pre-seam ObjectStore backing).
std::unique_ptr<StorageEngine> MakeInMemoryEngine();

}  // namespace gsv

#endif  // GSV_OEM_STORAGE_ENGINE_H_
