#include "oem/object.h"

#include <sstream>

namespace gsv {

std::string Object::ToString() const {
  std::ostringstream out;
  out << '<' << oid_.str() << ", " << label_ << ", "
      << ValueTypeName(type()) << ", " << value_.ToString() << '>';
  return out.str();
}

}  // namespace gsv
