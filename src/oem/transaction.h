#ifndef GSV_OEM_TRANSACTION_H_
#define GSV_OEM_TRANSACTION_H_

#include <vector>

#include "oem/store.h"
#include "oem/update.h"
#include "util/status.h"

namespace gsv {

// A buffered batch of basic updates applied atomically at Commit():
// nothing touches the store — and no listener (maintainer, monitor) is
// notified — until the whole batch has been validated and applied. The
// paper's §4.3 remark that "view maintenance can be performed by the same
// transaction as the triggering update" corresponds to listeners running
// per update inside the commit, in order.
//
// Commit validates updates against the evolving state (an insert may rely
// on an earlier buffered insert), applying them one at a time; if any
// update fails, the already-applied prefix is rolled back with inverse
// updates — listener notifications for the prefix are compensated by the
// inverse notifications, so convergent maintainers (all maintainers in
// this library) end where they started.
//
// Buffered reads are not provided: queries inside a transaction see the
// pre-transaction state until Commit.
class Transaction {
 public:
  // `store` must outlive the transaction.
  explicit Transaction(ObjectStore* store) : store_(store) {}

  // Buffer basic updates (validated only at Commit).
  void Insert(const Oid& parent, const Oid& child) {
    updates_.push_back(Update::Insert(parent, child));
  }
  void Delete(const Oid& parent, const Oid& child) {
    updates_.push_back(Update::Delete(parent, child));
  }
  // The old value recorded in the notification is the store's value at
  // commit time, not at buffering time.
  void Modify(const Oid& oid, Value new_value) {
    updates_.push_back(Update::Modify(oid, Value(), std::move(new_value)));
  }
  void Add(const Update& update) { updates_.push_back(update); }

  size_t size() const { return updates_.size(); }
  bool committed() const { return committed_; }

  // Applies the batch. On failure, rolls back the applied prefix and
  // returns the original error; the store (and every convergent listener)
  // is back in its pre-commit state. A committed transaction cannot be
  // reused.
  Status Commit();

  // Discards the buffer without touching the store.
  void Abort() { updates_.clear(); }

 private:
  static Update Inverse(const Update& applied);

  ObjectStore* store_;
  std::vector<Update> updates_;
  bool committed_ = false;
};

}  // namespace gsv

#endif  // GSV_OEM_TRANSACTION_H_
