#ifndef GSV_OEM_PAGE_CODEC_H_
#define GSV_OEM_PAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace gsv {

// The page-payload codec seam of the paged storage engine (DESIGN.md §4i).
//
// A page's logical payload is a run of canonical checkpoint record lines
// (serialize.h). The engine passes that raw text through a PageCodec before
// writing it to pages.gsp and through Decode when faulting the page back
// in. The per-page CRC in PAGEDIR is always computed over the *stored*
// bytes, so offline tooling (`wal_inspect pages`) can audit a cold file
// without decoding it; the codec id and the raw size are recorded per page
// so the same tooling can also report compression ratios and refuse images
// it does not understand.
//
// Codecs are stateless singletons: Encode/Decode are const and safe to call
// concurrently (the background writeback thread compresses off the engine
// lock while readers fault other pages in).
class PageCodec {
 public:
  virtual ~PageCodec() = default;

  // Stable on-disk identifier, recorded in every PAGEDIR page line.
  virtual uint8_t id() const = 0;
  // Human-readable name ("identity", "gsvz"), used in specs and tooling.
  virtual const char* name() const = 0;

  // Encodes `raw` into the stored representation. Must be loss-free;
  // Decode(Encode(raw)) == raw for every input.
  virtual std::string Encode(std::string_view raw) const = 0;

  // Decodes a stored payload back to the raw text. kDataLoss on a
  // malformed stream (truncated, out-of-window match, size mismatch).
  virtual Result<std::string> Decode(std::string_view stored) const = 0;
};

// Codec 0: the stored bytes are the raw bytes (PR 7 behavior).
const PageCodec* IdentityPageCodec();

// Codec 1 ("gsvz"): a dependency-free LZSS over the text encoding — a
// varint raw-size header, then literal/match tokens against a 4 KiB
// sliding window. The checkpoint text encoding repeats record keywords,
// labels, and OID prefixes densely, so pages typically store well under
// 0.6x their raw size (E20 gates this).
const PageCodec* GsvzPageCodec();

// Lookup by on-disk id; nullptr when unknown (tooling must then refuse the
// image rather than misread it).
const PageCodec* PageCodecById(uint8_t id);

// Lookup by spec name: "identity", "gsvz", or the alias "compressed"
// (what GSV_STORAGE_ENGINE=paged:...:compressed selects). kInvalidArgument
// with the known names listed on anything else.
Result<const PageCodec*> PageCodecByName(std::string_view name);

}  // namespace gsv

#endif  // GSV_OEM_PAGE_CODEC_H_
