#include "oem/set_ops.h"

namespace gsv {
namespace {

// Validates the operands and builds the result object.
Result<Oid> Combine(ObjectStore* store, const Oid& s1, const Oid& s2,
                    const Oid& result_oid, bool intersect) {
  const Object* lhs = store->Get(s1);
  const Object* rhs = store->Get(s2);
  if (lhs == nullptr || rhs == nullptr) {
    return Status::NotFound("set operation operand missing");
  }
  if (!lhs->IsSet() || !rhs->IsSet()) {
    return Status::FailedPrecondition(
        "set operations require set objects (§2)");
  }
  OidSet value = intersect ? OidSet::Intersect(lhs->children(), rhs->children())
                           : OidSet::Union(lhs->children(), rhs->children());
  GSV_RETURN_IF_ERROR(
      store->Put(Object(result_oid, lhs->label(), Value::Set(std::move(value)))));
  return result_oid;
}

}  // namespace

Result<Oid> UnionObjects(ObjectStore* store, const Oid& s1, const Oid& s2,
                         const Oid& result_oid) {
  return Combine(store, s1, s2, result_oid, /*intersect=*/false);
}

Result<Oid> IntersectObjects(ObjectStore* store, const Oid& s1,
                             const Oid& s2, const Oid& result_oid) {
  return Combine(store, s1, s2, result_oid, /*intersect=*/true);
}

}  // namespace gsv
