#ifndef GSV_OEM_VALUE_H_
#define GSV_OEM_VALUE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "oem/oid.h"

namespace gsv {

// The type field of an object (paper §2). Atomic objects carry a scalar;
// set objects carry the OIDs of their children (the graph edges).
enum class ValueType {
  kInt = 0,
  kReal,
  kString,
  kBool,
  kSet,
};

const char* ValueTypeName(ValueType type);

// A duplicate-free, order-insensitive collection of OIDs, stored sorted so
// that membership tests are O(log n) and set comparison is O(n).
// This is the value of a set object; its elements are the object's children.
class OidSet {
 public:
  OidSet() = default;
  explicit OidSet(std::vector<Oid> oids);

  // Inserts `oid`; returns false (and leaves the set unchanged) if present.
  bool Insert(const Oid& oid);
  // Removes `oid`; returns false if it was not present.
  bool Erase(const Oid& oid);
  bool Contains(const Oid& oid) const;
  // Allocation-free membership probe by OID string (no interning); for
  // read-only callers holding e.g. an Oid::BaseView result.
  bool Contains(std::string_view repr) const;

  size_t size() const { return oids_.size(); }
  bool empty() const { return oids_.empty(); }
  void clear() { oids_.clear(); }

  const std::vector<Oid>& elements() const { return oids_; }
  std::vector<Oid>::const_iterator begin() const { return oids_.begin(); }
  std::vector<Oid>::const_iterator end() const { return oids_.end(); }

  // Set operations of paper §2: union(S1,S2) and int(S1,S2).
  static OidSet Union(const OidSet& a, const OidSet& b);
  static OidSet Intersect(const OidSet& a, const OidSet& b);

  bool operator==(const OidSet& other) const { return oids_ == other.oids_; }
  bool operator!=(const OidSet& other) const { return oids_ != other.oids_; }

 private:
  std::vector<Oid> oids_;  // sorted, unique
};

// The value of an object: one of the atomic scalars or an OidSet.
// The paper's object "type" field is derived from the value alternative.
class Value {
 public:
  // Default: empty set (a set object with no children).
  Value() : value_(OidSet()) {}

  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Set(OidSet v) { return Value(Repr(std::move(v))); }
  // Builds a set value from a plain OID list (sorted, deduplicated).
  static Value SetOf(std::vector<Oid> oids) {
    return Value(Repr(OidSet(std::move(oids))));
  }

  ValueType type() const { return static_cast<ValueType>(value_.index()); }
  bool IsAtomic() const { return type() != ValueType::kSet; }
  bool IsSet() const { return type() == ValueType::kSet; }

  // Accessors; each requires the matching type().
  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsReal() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  bool AsBool() const { return std::get<bool>(value_); }
  const OidSet& AsSet() const { return std::get<OidSet>(value_); }
  OidSet& MutableSet() { return std::get<OidSet>(value_); }

  // Three-way comparison for atomic values used by query conditions.
  // Int and Real compare numerically with each other; otherwise the two
  // values must have the same type. Returns false (via `comparable`) when
  // the values cannot be ordered (e.g. string vs int, or any set).
  struct CompareResult {
    bool comparable = false;
    int order = 0;  // <0, 0, >0 — valid only when comparable
  };
  CompareResult Compare(const Value& other) const;

  // Structural equality (sets compare as sets).
  bool operator==(const Value& other) const { return value_ == other.value_; }
  bool operator!=(const Value& other) const { return value_ != other.value_; }

  // Human-readable form: 45, 3.5, 'John', true, {P1,P2}.
  std::string ToString() const;

 private:
  using Repr = std::variant<int64_t, double, std::string, bool, OidSet>;
  explicit Value(Repr repr) : value_(std::move(repr)) {}

  Repr value_;  // alternative order must match ValueType
};

}  // namespace gsv

#endif  // GSV_OEM_VALUE_H_
