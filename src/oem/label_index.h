#ifndef GSV_OEM_LABEL_INDEX_H_
#define GSV_OEM_LABEL_INDEX_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "oem/value.h"

namespace gsv {

// Incrementally maintained label/path indexes (§4.4 generalised).
//
// Two structures, maintained inside every store mutation and published as
// epoch-versioned immutable snapshots:
//
//   * label index   : label -> postings of interned OID ids (sorted).
//   * step index    : (parent label, child label) -> postings of packed
//                     edges, kept in both directions:
//                       down: (parent_id << 32) | child_id
//                       up  : (child_id << 32) | parent_id
//     plus `up_any` : child label -> up postings regardless of the parent
//                     label (the last climb step of ancestor(N, p) has no
//                     parent-label constraint).
//
// Writers mutate the live shards under the store's external synchronisation
// and call Publish() once per store operation; readers call Acquire() — a
// single atomic shared_ptr load — and probe the frozen snapshot
// without ever touching the store. This is what lets the batch engine's
// parallel workers evaluate primitives while the coordinator installs the
// next epoch.

// Packs two interned ids into one posting value. Postings sorted by the
// packed value are grouped by `hi`, so all edges of one endpoint form the
// contiguous range [hi<<32, (hi+1)<<32).
inline uint64_t PackPair(uint32_t hi, uint32_t lo) {
  return (static_cast<uint64_t>(hi) << 32) | lo;
}
inline uint32_t PairHi(uint64_t v) { return static_cast<uint32_t>(v >> 32); }
inline uint32_t PairLo(uint64_t v) {
  return static_cast<uint32_t>(v & 0xffffffffu);
}

// Order-preserving bucket of an atomic integer value that fits in 32 bits:
// bucket(v) = v - INT32_MIN, a bijection on [INT32_MIN, INT32_MAX]. Value
// postings pack (oid id << 32 | bucket), so one monotone posting sweep over
// a sorted candidate frontier answers a comparison predicate for every
// in-range integer without fetching a single object. Returns false for
// anything else (sets, reals, strings, bools, out-of-range ints) — those
// values are tracked in the `values_other` postings and confirmed against
// the store individually.
inline bool ValueBucketOf(const Value& value, uint32_t* bucket) {
  if (value.type() != ValueType::kInt) return false;
  int64_t v = value.AsInt();
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *bucket = static_cast<uint32_t>(v - INT32_MIN);
  return true;
}

// An LSM-lite posting list: a shared immutable sorted base plus small sorted
// add/delete overlays. Mutations cost O(overlay); snapshot publication
// copies only the overlays and shares the base pointer; the overlays are
// folded into a fresh base once they exceed kCompactThreshold.
class Postings {
 public:
  static constexpr size_t kCompactThreshold = 64;

  // Returns true if the value was not already present.
  bool Add(uint64_t value);
  // Returns true if the value was present.
  bool Erase(uint64_t value);

  bool Contains(uint64_t value) const;
  bool Empty() const;
  // Number of live values (exact).
  size_t Size() const;

  // Visits live values in [lo, hi) in ascending order.
  template <typename Fn>
  void ScanRange(uint64_t lo, uint64_t hi, Fn&& fn) const {
    const std::vector<uint64_t>* base = base_.get();
    auto b = base ? std::lower_bound(base->begin(), base->end(), lo)
                  : std::vector<uint64_t>::const_iterator{};
    auto b_end = base ? std::lower_bound(base->begin(), base->end(), hi)
                      : std::vector<uint64_t>::const_iterator{};
    auto d = dels_.begin();
    auto a = std::lower_bound(adds_.begin(), adds_.end(), lo);
    auto a_end = std::lower_bound(adds_.begin(), adds_.end(), hi);
    while ((base && b != b_end) || a != a_end) {
      uint64_t v;
      if (!base || b == b_end) {
        v = *a++;
      } else if (a == a_end || *b < *a) {
        v = *b++;
        while (d != dels_.end() && *d < v) ++d;
        if (d != dels_.end() && *d == v) continue;  // deleted from base
      } else {
        v = *a++;
      }
      fn(v);
    }
  }

  // Visits every live value ascending.
  template <typename Fn>
  void Scan(Fn&& fn) const {
    ScanRange(0, ~uint64_t{0}, std::forward<Fn>(fn));
  }

  // Visits, for each hi word in `his` (sorted ascending, unique), every live
  // value in [hi<<32, (hi+1)<<32) ascending — the bulk form of per-node
  // ScanRange used by frontier expansion. One monotonic sweep: the cursors
  // only move forward, galloping over gaps, so a dense frontier costs one
  // pass over the touched span instead of a from-scratch binary search per
  // node.
  template <typename Fn>
  void ScanHiRanges(const std::vector<uint32_t>& his, Fn&& fn) const {
    const std::vector<uint64_t>* base = base_.get();
    auto b = base ? base->begin() : std::vector<uint64_t>::const_iterator{};
    auto b_end = base ? base->end() : std::vector<uint64_t>::const_iterator{};
    auto a = adds_.begin();
    auto d = dels_.begin();
    for (uint32_t hi : his) {
      const uint64_t lo_v = static_cast<uint64_t>(hi) << 32;
      const uint64_t hi_v = hi == 0xffffffffu
                                ? ~uint64_t{0}
                                : (static_cast<uint64_t>(hi) + 1) << 32;
      if (base) b = GallopTo(b, b_end, lo_v);
      a = GallopTo(a, adds_.end(), lo_v);
      while ((base && b != b_end && *b < hi_v) ||
             (a != adds_.end() && *a < hi_v)) {
        uint64_t v;
        if (base && b != b_end && *b < hi_v &&
            (a == adds_.end() || *a >= hi_v || *b < *a)) {
          v = *b++;
          while (d != dels_.end() && *d < v) ++d;
          if (d != dels_.end() && *d == v) continue;  // deleted from base
        } else {
          v = *a++;
        }
        fn(v);
      }
    }
  }

 private:
  // First position in [it, end) with *pos >= target, found by exponential
  // probing from the current position (cheap when the answer is nearby).
  template <typename It>
  static It GallopTo(It it, It end, uint64_t target) {
    size_t step = 1;
    It prev = it;
    It cur = it;
    while (cur != end && *cur < target) {
      prev = cur;
      if (static_cast<size_t>(end - cur) > step) {
        cur += step;
      } else {
        cur = end;
      }
      step <<= 1;
    }
    return std::lower_bound(prev, cur, target);
  }

  void CompactIfNeeded();

  std::shared_ptr<const std::vector<uint64_t>> base_;  // sorted, may be null
  std::vector<uint64_t> adds_;  // sorted, disjoint from live base
  std::vector<uint64_t> dels_;  // sorted, subset of base
};

struct StepBucket {
  Postings down;  // (parent_id << 32) | child_id
  Postings up;    // (child_id << 32) | parent_id
};

// (parent label, child label) step key.
struct StepKey {
  std::string parent_label;
  std::string child_label;
  bool operator==(const StepKey& other) const {
    return parent_label == other.parent_label &&
           child_label == other.child_label;
  }
};

// Borrowed form of StepKey for heterogeneous lookup: the navigation hot
// path probes one step per frontier hop, and materializing a StepKey there
// means two string copies per probe.
struct StepKeyView {
  std::string_view parent_label;
  std::string_view child_label;
};

struct StepKeyHash {
  using is_transparent = void;
  // std::hash<std::string_view> is guaranteed to agree with
  // std::hash<std::string> on equal content, so both forms land in the
  // same bucket.
  size_t operator()(std::string_view parent, std::string_view child) const {
    size_t h = std::hash<std::string_view>{}(parent);
    h ^= std::hash<std::string_view>{}(child) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    return h;
  }
  size_t operator()(const StepKey& key) const {
    return (*this)(key.parent_label, key.child_label);
  }
  size_t operator()(const StepKeyView& key) const {
    return (*this)(key.parent_label, key.child_label);
  }
};

struct StepKeyEqual {
  using is_transparent = void;
  static StepKeyView View(const StepKey& key) {
    return {key.parent_label, key.child_label};
  }
  static StepKeyView View(const StepKeyView& key) { return key; }
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    StepKeyView lhs = View(a);
    StepKeyView rhs = View(b);
    return lhs.parent_label == rhs.parent_label &&
           lhs.child_label == rhs.child_label;
  }
};

// One shard of the index maps. Shards are the unit of copy-on-write:
// publishing an epoch clones only the shards a mutation dirtied.
struct IndexShard {
  std::unordered_map<std::string, Postings> labels;  // label -> oid ids
  std::unordered_map<StepKey, StepBucket, StepKeyHash, StepKeyEqual> steps;
  std::unordered_map<std::string, Postings> up_any;  // child label -> up edges
  // Value postings (per label): (oid id << 32 | bucket) for bucketable
  // atomic integers, and plain oid ids for other atomic values. Together
  // they make predicate rechecks a posting sweep instead of a per-id
  // Get+Holds loop; ids absent from both are set objects.
  std::unordered_map<std::string, Postings> values;
  std::unordered_map<std::string, Postings> values_other;
};

inline constexpr int kIndexShards = 16;

// A frozen, immutable view of the whole index at one epoch. Readers may hold
// it for as long as they like; the writer never mutates published shards.
struct LabelIndexSnapshot {
  uint64_t epoch = 0;
  std::array<std::shared_ptr<const IndexShard>, kIndexShards> shards;

  // All return nullptr when the key has no postings. Step takes views and
  // probes without materializing a StepKey (no per-probe allocation).
  const Postings* Labels(const std::string& label) const;
  const StepBucket* Step(std::string_view parent_label,
                         std::string_view child_label) const;
  const Postings* UpAny(const std::string& child_label) const;
  const Postings* Values(const std::string& label) const;
  const Postings* ValuesOther(const std::string& label) const;
};

using LabelIndexSnapshotPtr = std::shared_ptr<const LabelIndexSnapshot>;

class LabelIndex {
 public:
  // Writer-side hooks. Callers hold the store's external synchronisation;
  // the hooks mutate live shards only, never a published snapshot.
  void AddObject(const std::string& label, uint32_t oid);
  void RemoveObject(const std::string& label, uint32_t oid);
  void AddEdge(const std::string& parent_label, uint32_t parent,
               const std::string& child_label, uint32_t child);
  void RemoveEdge(const std::string& parent_label, uint32_t parent,
                  const std::string& child_label, uint32_t child);
  // Value-posting hooks for atomic objects (no-ops for set values). The
  // store calls them alongside AddObject/RemoveObject and on every modify.
  void AddValue(const std::string& label, uint32_t oid, const Value& value);
  void RemoveValue(const std::string& label, uint32_t oid, const Value& value);

  // Installs a new immutable snapshot if anything changed since the last
  // publish. Clean shards are shared with the previous snapshot; dirty ones
  // are cloned (overlay vectors only — bases are shared_ptr'd).
  void Publish();

  // One atomic shared_ptr load (the free-function API: libstdc++ backs it
  // with a pooled mutex, which — unlike atomic<shared_ptr>'s spin-bit
  // protocol — ThreadSanitizer can verify). Safe concurrently with a writer
  // mutating live shards and publishing the next epoch; readers never wait
  // on the store lock.
  LabelIndexSnapshotPtr Acquire() const {
    return std::atomic_load_explicit(&published_, std::memory_order_acquire);
  }

 private:
  static int ShardOf(const std::string& label) {
    return static_cast<int>(std::hash<std::string>{}(label) % kIndexShards);
  }
  IndexShard& Dirty(const std::string& label);

  std::array<IndexShard, kIndexShards> live_;
  uint32_t dirty_mask_ = 0;
  uint64_t epoch_ = 0;
  LabelIndexSnapshotPtr published_ =
      std::make_shared<const LabelIndexSnapshot>();
};

}  // namespace gsv

#endif  // GSV_OEM_LABEL_INDEX_H_
