#include "oem/transaction.h"

namespace gsv {

Update Transaction::Inverse(const Update& applied) {
  switch (applied.kind) {
    case UpdateKind::kInsert:
      return Update::Delete(applied.parent, applied.child);
    case UpdateKind::kDelete:
      return Update::Insert(applied.parent, applied.child);
    case UpdateKind::kModify:
      return Update::Modify(applied.parent, applied.new_value,
                            applied.old_value);
  }
  return Update();
}

Status Transaction::Commit() {
  if (committed_) {
    return Status::FailedPrecondition("transaction already committed");
  }
  std::vector<Update> applied;
  applied.reserve(updates_.size());

  Status failure;
  for (const Update& update : updates_) {
    if (update.kind == UpdateKind::kModify) {
      // Capture the true old value so the rollback (and the listener
      // notification) carries it.
      const Object* object = store_->Get(update.parent);
      if (object == nullptr || !object->IsAtomic()) {
        failure = Status::FailedPrecondition(
            "modify target " + update.parent.str() + " missing or not atomic");
        break;
      }
      Update with_old = Update::Modify(update.parent, object->value(),
                                       update.new_value);
      failure = store_->Apply(with_old);
      if (!failure.ok()) break;
      applied.push_back(std::move(with_old));
    } else {
      // A duplicate insert is a silent store no-op; replaying its inverse
      // would wrongly delete the pre-existing edge, so skip buffer entries
      // that change nothing.
      if (update.kind == UpdateKind::kInsert) {
        const Object* parent = store_->Get(update.parent);
        if (parent != nullptr && parent->IsSet() &&
            parent->children().Contains(update.child)) {
          continue;
        }
      }
      failure = store_->Apply(update);
      if (!failure.ok()) break;
      applied.push_back(update);
    }
  }

  if (failure.ok()) {
    committed_ = true;
    updates_.clear();
    return Status::Ok();
  }

  // Roll back the applied prefix in reverse order; inverse updates notify
  // listeners, compensating the prefix notifications.
  for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
    Status undo = store_->Apply(Inverse(*it));
    if (!undo.ok()) {
      return Status::Internal("rollback failed (" + undo.ToString() +
                              ") after commit error: " + failure.ToString());
    }
  }
  return failure;
}

}  // namespace gsv
