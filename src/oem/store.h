#ifndef GSV_OEM_STORE_H_
#define GSV_OEM_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "oem/label_index.h"
#include "oem/object.h"
#include "oem/oid.h"
#include "oem/storage_engine.h"
#include "oem/update.h"
#include "oem/value.h"
#include "util/status.h"

namespace gsv {

// Cost counters for the access-pattern analyses of §4.4 / §5. All graph
// navigation in the library runs through the store and is metered here.
//
// The counters are relaxed atomics so that const store methods stay safe to
// call from several maintenance workers at once (the batch engine reads
// source stores concurrently); totals are exact, ordering between counters
// is not guaranteed mid-flight.
struct StoreMetrics {
  std::atomic<int64_t> edges_traversed{0};  // child links followed
  std::atomic<int64_t> parent_lookups{0};   // ancestor steps (inverse index)
  std::atomic<int64_t> objects_scanned{0};  // objects visited by full scans
  std::atomic<int64_t> lookups{0};          // OID hash-table probes
  std::atomic<int64_t> index_probes{0};     // label/step posting range scans
  std::atomic<int64_t> index_fallbacks{0};  // primitives answered by traversal
  // ---- Buffer-pool counters (paged storage engine; zero on memory) ----
  std::atomic<int64_t> page_faults{0};      // pages read in from the page file
  std::atomic<int64_t> page_evictions{0};   // frames dropped from the pool
  std::atomic<int64_t> page_writeback_bytes{0};  // dirty payload written out
  std::atomic<int64_t> pages_pinned_peak{0};     // high-water of pinned frames
  std::atomic<int64_t> swizzle_hits{0};    // point reads served by a direct ptr
  std::atomic<int64_t> swizzle_misses{0};  // point reads that took the slow path

  StoreMetrics() = default;
  StoreMetrics(const StoreMetrics& other) { *this = other; }
  StoreMetrics& operator=(const StoreMetrics& other) {
    edges_traversed = other.edges_traversed.load(std::memory_order_relaxed);
    parent_lookups = other.parent_lookups.load(std::memory_order_relaxed);
    objects_scanned = other.objects_scanned.load(std::memory_order_relaxed);
    lookups = other.lookups.load(std::memory_order_relaxed);
    index_probes = other.index_probes.load(std::memory_order_relaxed);
    index_fallbacks = other.index_fallbacks.load(std::memory_order_relaxed);
    page_faults = other.page_faults.load(std::memory_order_relaxed);
    page_evictions = other.page_evictions.load(std::memory_order_relaxed);
    page_writeback_bytes =
        other.page_writeback_bytes.load(std::memory_order_relaxed);
    pages_pinned_peak =
        other.pages_pinned_peak.load(std::memory_order_relaxed);
    swizzle_hits = other.swizzle_hits.load(std::memory_order_relaxed);
    swizzle_misses = other.swizzle_misses.load(std::memory_order_relaxed);
    return *this;
  }

  void Reset() { *this = StoreMetrics(); }

  // Adds `other`'s counters into this sheet (relaxed). A sharded warehouse
  // keeps one delegate store per shard; whole-warehouse reporting merges
  // their metrics instead of quoting shard 0.
  StoreMetrics& Merge(const StoreMetrics& other) {
    auto add = [](std::atomic<int64_t>* into, const std::atomic<int64_t>& from) {
      into->fetch_add(from.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    };
    add(&edges_traversed, other.edges_traversed);
    add(&parent_lookups, other.parent_lookups);
    add(&objects_scanned, other.objects_scanned);
    add(&lookups, other.lookups);
    add(&index_probes, other.index_probes);
    add(&index_fallbacks, other.index_fallbacks);
    add(&page_faults, other.page_faults);
    add(&page_evictions, other.page_evictions);
    add(&page_writeback_bytes, other.page_writeback_bytes);
    add(&swizzle_hits, other.swizzle_hits);
    add(&swizzle_misses, other.swizzle_misses);
    // A high-water mark merges as a max: the fleet's peak is the worst
    // shard's peak, not their sum.
    int64_t other_peak =
        other.pages_pinned_peak.load(std::memory_order_relaxed);
    int64_t mine = pages_pinned_peak.load(std::memory_order_relaxed);
    while (other_peak > mine &&
           !pages_pinned_peak.compare_exchange_weak(
               mine, other_peak, std::memory_order_relaxed)) {
    }
    return *this;
  }
};

// An edge whose child OID no longer resolves to an object.
struct DanglingEdge {
  Oid parent;
  Oid child;
  bool operator==(const DanglingEdge& other) const {
    return parent == other.parent && child == other.child;
  }
};

// The graph-structured database engine (paper §2). Holds OEM objects,
// applies the basic updates of §4.1, groups objects into named databases,
// and maintains an optional inverse (parent) index — the index whose
// presence §4.4 identifies as the key cost factor for ancestor().
//
// Thread-compatible: const methods are safe to call concurrently; mutating
// methods require external synchronization.
class ObjectStore {
 public:
  struct Options {
    // Maintain a child -> parents index. Without it, Parents() falls back
    // to a full scan (metered in StoreMetrics::objects_scanned).
    bool enable_parent_index = true;
    // Maintain the label/label-path index (label_index.h) inside every
    // mutation and publish epoch-versioned snapshots. Navigation primitives
    // probe the snapshot instead of walking the graph. Requires the parent
    // index; disabled automatically when enable_parent_index is false.
    bool enable_label_index = true;
    // When true, Remove() records edges left pointing at the removed object
    // in dangling_log() (the paper leaves them dangling; the index skips
    // them, but callers may want to notice).
    bool check_dangling = false;
    // Builds the storage engine backing this store's objects
    // (storage_engine.h). Null selects the memory-resident default. The
    // parent/label indexes, databases, and listeners stay in RAM regardless
    // of engine; only the object bytes go through the seam.
    StorageEngineFactory engine_factory;
  };

  ObjectStore() : ObjectStore(Options()) {}
  explicit ObjectStore(Options options) : options_(std::move(options)) {
    if (!options_.enable_parent_index) options_.enable_label_index = false;
    engine_ = options_.engine_factory ? options_.engine_factory()
                                      : MakeInMemoryEngine();
    engine_->AttachMetrics(&metrics_);
  }

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // ---- Object creation ----

  // Adds a new object. Fails with kAlreadyExists on a duplicate OID.
  Status Put(Object object);

  // Conveniences building the Object in place.
  Status PutAtomic(const Oid& oid, std::string label, Value value);
  Status PutSet(const Oid& oid, std::string label,
                std::vector<Oid> children = {});

  // Removes an object outright (not a paper basic update; used by GC and
  // materialized-view storage). Also removes it from the parent index and
  // from any databases. Edges *to* it from other objects are left dangling,
  // matching the paper's remark that GC is out of scope.
  Status Remove(const Oid& oid);

  // ---- Lookup ----

  // Returns the object or nullptr. Pointers are invalidated by Put/Remove
  // and by StorageSafePoint() (a paged engine may evict the backing page
  // there; the in-memory engine happens to keep pointers stable, but code
  // must not rely on that).
  const Object* Get(const Oid& oid) const;
  bool Contains(const Oid& oid) const;
  size_t size() const { return engine_->Size(); }

  // All parents of `oid` (objects whose set value contains it). Uses the
  // inverse index when enabled, otherwise a metered full scan.
  std::vector<Oid> Parents(const Oid& oid) const;

  // Iterates every object (unspecified order).
  void ForEach(const std::function<void(const Object&)>& fn) const;

  // Iterates every object in canonical lexicographic OID order — the
  // checkpoint/serialization order. On a paged engine this streams page by
  // page within the pool budget, so a beyond-RAM store can be captured
  // without materializing it. Metered like ForEach.
  void ScanInOrder(const std::function<void(const Object&)>& fn) const;

  // ---- Storage engine (DESIGN.md §4h) ----

  // Declares that the caller holds no Object pointers into this store.
  // A bounded-pool engine evicts back down to its budget here. Warehouse
  // drains, checkpoint writers, and bulk loads call this at their
  // quiescent boundaries; it is always safe (a no-op on memory).
  void StorageSafePoint() { engine_->SafePoint(); }

  // Writes the engine's dirty pages + page directory to its backing files
  // (no-op on memory). WriteCheckpoint calls this so the paged image on
  // disk is complete and CRC-verifiable at every checkpoint.
  Status FlushStorage() { return engine_->Flush(); }

  const char* engine_name() const { return engine_->EngineName(); }
  // The engine itself, for diagnostics probes (wal_inspect, exp19).
  StorageEngine* storage_engine() const { return engine_.get(); }

  // ---- Basic updates (paper §4.1) ----

  // insert(N1,N2): adds N2 to value(N1). N1 must be a set object; N2 must
  // exist. Inserting an already-present child is a no-op (no notification).
  Status Insert(const Oid& parent, const Oid& child);

  // delete(N1,N2): removes N2 from value(N1). Fails with kNotFound if N2
  // was not a child of N1 (state unchanged, no notification).
  Status Delete(const Oid& parent, const Oid& child);

  // modify(N, old, new): replaces the value of atomic object N. The new
  // value must be atomic too (changing a set is modeled as inserts/deletes,
  // §4.1). A modify to an equal value still notifies listeners.
  Status Modify(const Oid& oid, Value new_value);

  // Applies any basic update.
  Status Apply(const Update& update);

  // ---- Log replay (durability subsystem) ----

  // Applies a basic update recorded in a write-ahead log: idempotent and
  // silent. No listener runs (replay must not re-trigger maintenance or
  // monitors), and an update whose precondition no longer holds — parent
  // gone, edge already present/absent — is skipped rather than failed,
  // because an at-least-once log may carry updates the restored state
  // already reflects. Returns true when the store actually changed.
  // Indexes are maintained exactly as by the live path.
  Result<bool> ApplyFromLog(const Update& update);

  // ---- Raw edits (view-storage bookkeeping; NOT basic updates) ----
  //
  // These mutate objects without notifying listeners and without requiring
  // the referenced child to exist in this store (delegate values may hold
  // OIDs of remote base objects, §3.2). MaterializedView and SwizzleManager
  // use them; application code should use the basic updates above.

  // Adds `child` to set object `parent`; no-op if already present.
  Status AddChildRaw(const Oid& parent, const Oid& child);
  // Removes `child` from set object `parent`; no-op if absent.
  Status RemoveChildRaw(const Oid& parent, const Oid& child);
  // Replaces `from` with `to` inside set object `parent` (edge swizzling).
  // No-op if `from` is absent.
  Status ReplaceChildRaw(const Oid& parent, const Oid& from, const Oid& to);
  // Replaces the whole value of `oid` (any type -> any type).
  Status SetValueRaw(const Oid& oid, Value value);

  // ---- Databases (paper §2) ----

  // A database is an ordinary set object whose value lists the members.
  // CreateDatabase makes the object and registers the name; RegisterDatabase
  // names an existing set object.
  Status CreateDatabase(const std::string& name, const Oid& oid,
                        std::string label = "database");
  Status RegisterDatabase(const std::string& name, const Oid& oid);
  // OID of the named database object, or invalid Oid if unknown.
  Oid DatabaseOid(const std::string& name) const;
  // True if `oid` is a member of the named database.
  bool InDatabase(const std::string& name, const Oid& oid) const;
  std::vector<std::string> DatabaseNames() const;

  // ---- Listeners ----

  // Listeners are notified after each applied basic update, in registration
  // order. Not owned. Remove before destroying the listener.
  void AddListener(UpdateListener* listener);
  void RemoveListener(UpdateListener* listener);

  // ---- Garbage collection ----

  // Mark-and-sweep from the given roots plus all database objects; removes
  // unreachable objects. Returns the number collected. (Paper §4.1 notes GC
  // is possible after delete; we provide it as an explicit operation.)
  size_t CollectGarbage(const std::vector<Oid>& extra_roots = {});

  // ---- Label/path index (§4.4 generalised) ----

  // Current immutable index snapshot, or nullptr when the label index is
  // disabled. One atomic shared_ptr load, never the store lock; safe while
  // another thread mutates the store (readers probe the frozen epoch, the
  // writer publishes the next).
  LabelIndexSnapshotPtr AcquireIndexSnapshot() const {
    if (!options_.enable_label_index) return nullptr;
    return label_index_.Acquire();
  }

  // ---- Dangling-edge accounting ----

  // Edges recorded by Remove() while options().check_dangling. Oldest first.
  const std::vector<DanglingEdge>& dangling_log() const {
    return dangling_log_;
  }
  void ClearDanglingLog() { dangling_log_.clear(); }

  // Full audit: scans every set object for edges whose child is missing.
  // Independent of check_dangling; metered as a scan.
  std::vector<DanglingEdge> AuditDanglingEdges() const;

  // ---- Metrics ----
  StoreMetrics& metrics() const { return metrics_; }

  const Options& options() const { return options_; }

 private:
  void Notify(const Update& update);
  void IndexChildren(const Object& object);
  void UnindexChildren(const Object& object);

  // Label-index maintenance. The object lookups inside bypass metrics so
  // index upkeep does not perturb the traversal cost counters.
  const Object* RawGet(const Oid& oid) const;
  void LabelIndexPutObject(const Object& object);
  void LabelIndexRemoveObject(const Object& object);
  void LabelIndexAddEdge(const Object& parent, const Oid& child);
  void LabelIndexRemoveEdge(const Object& parent, const Oid& child);

  Options options_;
  // The bytes behind the objects (storage_engine.h). Const store methods
  // call through the pointer: a paged engine's reads fault pages behind an
  // internal lock, so concurrent const access stays safe.
  std::unique_ptr<StorageEngine> engine_;
  // child -> parents. Maintained only when options_.enable_parent_index.
  // Entries survive Remove() of the child: the surviving parents still hold
  // the dangling edge, and a later re-Put must see them to re-index.
  std::unordered_map<Oid, OidSet, OidHash> parent_index_;
  std::unordered_map<std::string, Oid> databases_;
  std::vector<UpdateListener*> listeners_;
  LabelIndex label_index_;
  std::vector<DanglingEdge> dangling_log_;
  mutable StoreMetrics metrics_;
};

}  // namespace gsv

#endif  // GSV_OEM_STORE_H_
