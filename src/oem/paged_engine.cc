#include "oem/paged_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "oem/page_codec.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "storage/wal.h"
#include "util/string_util.h"

namespace gsv {
namespace {

constexpr const char* kPageFileName = "pages.gsp";
constexpr const char* kPageDirName = "PAGEDIR";

// `min_key` encoded so the empty routing sentinel survives tokenization:
// "k" + key (OID strings never contain whitespace).
std::string EncodeKey(const std::string& key) { return "k" + key; }

using ObjectsMap = std::unordered_map<Oid, Object, OidHash>;

// A frame's logical payload plus the directory stats derived from it.
struct PageImage {
  std::string raw;
  uint64_t objects = 0;
  std::string first_oid;
  std::string last_oid;
};

// Frame contents decorated with their interned key strings, sorted into
// the canonical lexicographic page order.
std::vector<std::pair<std::string_view, const Object*>> SortedEntries(
    const ObjectsMap& objects) {
  std::vector<std::pair<std::string_view, const Object*>> sorted;
  sorted.reserve(objects.size());
  for (const auto& [oid, object] : objects) {
    sorted.emplace_back(oid.str(), &object);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return sorted;
}

PageImage BuildImage(const ObjectsMap& objects, size_t reserve_hint) {
  PageImage image;
  auto sorted = SortedEntries(objects);
  image.raw.reserve(reserve_hint + 64);
  for (const auto& [key, object] : sorted) {
    image.raw += EncodeObjectRecord(*object);
    image.raw += '\n';
  }
  image.objects = sorted.size();
  image.first_oid = sorted.empty() ? "" : std::string(sorted.front().first);
  image.last_oid = sorted.empty() ? "" : std::string(sorted.back().first);
  return image;
}

Status ReadAtFd(int fd, uint64_t offset, std::string* buffer) {
  size_t done = 0;
  while (done < buffer->size()) {
    ssize_t n = ::pread(fd, buffer->data() + done, buffer->size() - done,
                        static_cast<off_t>(offset + done));
    if (n <= 0) {
      return Status::DataLoss(
          "paged engine: short read at offset " + std::to_string(offset) +
          (n < 0 ? std::string(": ") + std::strerror(errno) : ""));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteAtFd(int fd, uint64_t offset, std::string_view payload) {
  size_t done = 0;
  while (done < payload.size()) {
    ssize_t n = ::pwrite(fd, payload.data() + done, payload.size() - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      return Status::Internal("paged engine: write failed at offset " +
                              std::to_string(offset) + ": " +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

struct Frame;

// One unit of background writeback. Enqueued under the engine lock; once
// `started` flips (under the lock) the job's content is immutable — the
// writeback thread reads it without the lock, and a concurrent fault may
// copy from it under the lock. A still-queued eviction job can instead be
// *stolen*: the fault moves `objects` back into the frame and flags the
// job `canceled`, so the page round-trips through the queue with zero I/O.
struct WritebackJob {
  Frame* frame = nullptr;
  uint64_t ticket = 0;
  bool has_objects = false;  // eviction job: `objects` is the content
  ObjectsMap objects;
  PageImage image;           // flush job: pre-serialized under the lock
  size_t approx_bytes = 0;   // frame estimate, restored on steal
  bool started = false;
  bool canceled = false;
};

struct Frame {
  uint64_t page_id = 0;
  std::string min_key;  // routing lower bound; "" on the first page

  // ---- On-disk extent (valid when on_disk) ----
  bool on_disk = false;
  uint64_t slot_start = 0;
  uint32_t slot_count = 0;
  uint32_t payload_bytes = 0;  // stored (post-codec) size; CRC covers this
  uint32_t raw_bytes = 0;      // pre-codec payload size
  uint8_t codec_id = 0;        // codec the extent was stored with
  uint32_t crc = 0;
  uint64_t lsn = 0;            // bumped per writeback
  uint64_t disk_objects = 0;   // object count as of the last writeback
  std::string first_oid;       // OID range as of the last writeback
  std::string last_oid;

  // ---- Residency ----
  bool loaded = false;
  bool dirty = false;
  bool ref = false;            // second-chance bit
  int pins = 0;
  uint64_t touched_epoch = 0;  // last epoch a pointer was handed out
  size_t approx_bytes = 0;     // encoded-size estimate driving splits
  ObjectsMap objects;
  // Newest writeback job carrying this frame's disk-bound content, or
  // null. While set, faults are served from the job, never the extent.
  std::shared_ptr<WritebackJob> inflight;
};

// A resident object's direct address plus its owning frame (for dirty
// marking and clock touches). Valid exactly while the frame stays loaded
// and the object is neither erased nor moved by a split.
struct SwizzleEntry {
  Object* object = nullptr;
  Frame* frame = nullptr;
};

class PagedEngine final : public StorageEngine {
 public:
  explicit PagedEngine(PagedEngineOptions options)
      : options_(std::move(options)) {
    if (options_.page_bytes == 0) options_.page_bytes = 64 * 1024;
    if (options_.pool_pages == 0) options_.pool_pages = 1;
    queue_cap_ = options_.writeback_queue != 0
                     ? options_.writeback_queue
                     : std::max<uint64_t>(4, options_.pool_pages);
    codec_ = IdentityPageCodec();
    Result<const PageCodec*> codec = PageCodecByName(options_.codec);
    if (codec.ok()) {
      codec_ = codec.value();
    } else {
      NoteIoErrorLocked(codec.status());
    }
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    // The home is scratch: always start empty (durable truth is the WAL +
    // checkpoints; recovery re-seeds through the bulk-load path).
    std::filesystem::remove(PageDirPath(), ec);
    fd_ = ::open(PageFilePath().c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
    if (fd_ < 0) {
      NoteIoErrorLocked(Status::Internal("paged engine: cannot open " +
                                         PageFilePath() + ": " +
                                         std::strerror(errno)));
    }
    if (options_.background_writeback) {
      writeback_ = std::thread([this] { WritebackLoop(); });
    }
  }

  ~PagedEngine() override {
    if (writeback_.joinable()) {
      {
        std::lock_guard<std::recursive_mutex> lock(mu_);
        stop_ = true;
        if (options_.abandon_queue_on_close) {
          // Simulated kill: still-queued pages never reach disk. The home
          // is scratch, so nothing above the engine may depend on them.
          for (auto& job : queue_) job->canceled = true;
        }
      }
      cv_.notify_all();
      writeback_.join();
    }
    if (fd_ >= 0) ::close(fd_);
    if (options_.wipe_on_close) {
      std::error_code ec;
      std::filesystem::remove_all(options_.dir, ec);
    }
  }

  const char* EngineName() const override { return "paged"; }

  const Object* Get(const Oid& oid) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    if (options_.enable_swizzle) {
      auto hit = swizzle_.find(oid);
      if (hit != swizzle_.end()) {
        if (metrics_ != nullptr) {
          metrics_->swizzle_hits.fetch_add(1, std::memory_order_relaxed);
        }
        TouchLocked(hit->second.frame);
        return hit->second.object;
      }
    }
    Frame* frame = RouteLocked(oid.str());
    if (frame == nullptr || !FaultLocked(frame)) return nullptr;
    TouchLocked(frame);
    auto it = frame->objects.find(oid);
    if (it == frame->objects.end()) return nullptr;
    SwizzleLocked(oid, &it->second, frame);
    return &it->second;
  }

  Object* GetMutable(const Oid& oid) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    if (options_.enable_swizzle) {
      auto hit = swizzle_.find(oid);
      if (hit != swizzle_.end()) {
        if (metrics_ != nullptr) {
          metrics_->swizzle_hits.fetch_add(1, std::memory_order_relaxed);
        }
        TouchLocked(hit->second.frame);
        hit->second.frame->dirty = true;
        return hit->second.object;
      }
    }
    Frame* frame = RouteLocked(oid.str());
    if (frame == nullptr || !FaultLocked(frame)) return nullptr;
    TouchLocked(frame);
    auto it = frame->objects.find(oid);
    if (it == frame->objects.end()) return nullptr;
    frame->dirty = true;
    SwizzleLocked(oid, &it->second, frame);
    return &it->second;
  }

  Status Put(Object object) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    const Oid oid = object.oid();
    const std::string& key = oid.str();
    if (pages_.empty()) CreateFrameLocked("");
    Frame* frame = RouteLocked(key);
    if (!FaultLocked(frame)) return io_error_;
    if (frame->objects.count(oid) > 0) {
      return Status::AlreadyExists("object " + key + " already exists");
    }
    frame->approx_bytes += EncodeObjectRecord(object).size() + 1;
    frame->objects.emplace(oid, std::move(object));
    frame->dirty = true;
    TouchLocked(frame);
    ++total_objects_;
    if (frame->approx_bytes > options_.page_bytes &&
        frame->objects.size() > 1) {
      SplitLocked(frame);
    }
    return Status::Ok();
  }

  Status Erase(const Oid& oid) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    Frame* frame = RouteLocked(oid.str());
    if (frame == nullptr) {
      return Status::NotFound("object " + oid.str() + " does not exist");
    }
    if (!FaultLocked(frame)) return io_error_;
    if (frame->objects.erase(oid) == 0) {
      return Status::NotFound("object " + oid.str() + " does not exist");
    }
    swizzle_.erase(oid);
    frame->dirty = true;
    TouchLocked(frame);
    --total_objects_;
    return Status::Ok();
  }

  size_t Size() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return total_objects_;
  }

  void ScanInOrder(const std::function<void(const Object&)>& fn) override {
    ScanLocked(fn, /*ordered=*/true);
  }

  void ScanUnordered(const std::function<void(const Object&)>& fn) override {
    ScanLocked(fn, /*ordered=*/false);
  }

  void SafePoint() override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    // No caller holds pointers now: every resident frame becomes a legal
    // victim (the new epoch has touched nothing yet). Run the clock back
    // down to budget; dirty victims enqueue for background writeback.
    ++epoch_;
    EnforceBudgetLocked(options_.pool_pages);
  }

  Status Flush() override {
    std::unique_lock<std::recursive_mutex> lock(mu_);
    for (auto& [key, frame] : pages_) {
      Frame* raw = frame.get();
      if (!raw->loaded || !raw->dirty) continue;
      // Same rule as EvictLocked: a frame with an in-flight job enqueues
      // past the cap so its writes stay FIFO-serialized on one thread.
      if (UseBackgroundLocked() &&
          (queue_.size() < queue_cap_ || raw->inflight != nullptr)) {
        auto job = std::make_shared<WritebackJob>();
        job->frame = raw;
        job->has_objects = false;
        job->image = BuildImage(raw->objects, raw->approx_bytes);
        job->approx_bytes = raw->approx_bytes;
        raw->dirty = false;
        EnqueueJobLocked(std::move(job));
      } else {
        if (UseBackgroundLocked()) ++sync_fallbacks_;
        if (!WritebackSyncLocked(raw)) break;
      }
    }
    if (options_.background_writeback) {
      // The enqueue-plus-wait watermark barrier: every job issued so far
      // (including canceled ones) must have left the queue before PAGEDIR
      // claims the image is complete.
      const uint64_t barrier = next_ticket_;
      cv_.wait(lock, [&] { return completed_ticket_ >= barrier; });
    }
    if (!io_error_.ok()) return io_error_;
    return WritePageDirLocked();
  }

  void AttachMetrics(StoreMetrics* metrics) override { metrics_ = metrics; }

  void FillStatus(PagedEngineStatus* status) const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    status->dir = options_.dir;
    status->page_bytes = options_.page_bytes;
    status->pool_pages = options_.pool_pages;
    status->pages_total = pages_.size();
    status->pages_resident = resident_;
    status->pages_pinned = pinned_;
    status->objects = total_objects_;
    status->disk_slots = eof_slots_;
    status->codec = codec_->name();
    uint64_t stored = 0;
    uint64_t raw = 0;
    for (const auto& [key, frame] : pages_) {
      if (frame->on_disk) {
        stored += frame->payload_bytes;
        raw += frame->raw_bytes;
      }
    }
    status->disk_payload_bytes = stored;
    status->disk_raw_bytes = raw;
    status->free_slots = free_slots_;
    status->extent_merges = extent_merges_;
    status->slots_reclaimed = slots_reclaimed_;
    status->writeback_queue_peak = queue_peak_;
    status->writeback_steals = writeback_steals_;
    status->writeback_sync_fallbacks = sync_fallbacks_;
    status->swizzle_entries = swizzle_.size();
    status->io_error = io_error_;
  }

 private:
  std::string PageFilePath() const {
    return options_.dir + "/" + kPageFileName;
  }
  std::string PageDirPath() const { return options_.dir + "/" + kPageDirName; }

  void NoteIoErrorLocked(Status status) {
    if (io_error_.ok()) io_error_ = std::move(status);
  }

  bool UseBackgroundLocked() const {
    return options_.background_writeback && !stop_;
  }

  // The frame whose key range covers `key`, or nullptr on an empty store.
  Frame* RouteLocked(const std::string& key) {
    if (pages_.empty()) return nullptr;
    auto it = pages_.upper_bound(key);
    if (it != pages_.begin()) --it;
    return it->second.get();
  }

  Frame* CreateFrameLocked(std::string min_key) {
    auto frame = std::make_unique<Frame>();
    frame->page_id = next_page_id_++;
    frame->min_key = min_key;
    frame->loaded = true;
    frame->touched_epoch = epoch_;
    Frame* raw = frame.get();
    pages_.emplace(std::move(min_key), std::move(frame));
    ++resident_;
    return raw;
  }

  void TouchLocked(Frame* frame) {
    frame->ref = true;
    frame->touched_epoch = epoch_;
  }

  void SwizzleLocked(const Oid& oid, Object* object, Frame* frame) {
    if (!options_.enable_swizzle) return;
    if (metrics_ != nullptr) {
      metrics_->swizzle_misses.fetch_add(1, std::memory_order_relaxed);
    }
    swizzle_[oid] = SwizzleEntry{object, frame};
  }

  void UnswizzleFrameLocked(const Frame& frame) {
    if (!options_.enable_swizzle) return;
    for (const auto& [oid, object] : frame.objects) swizzle_.erase(oid);
  }

  // Parses checkpoint record lines into the frame's object map. False (and
  // sticky io_error_) on a malformed record.
  bool LoadFromTextLocked(Frame* frame, const std::string& text) {
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      std::string line = text.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      Result<Object> object = DecodeObjectRecord(line);
      if (!object.ok()) {
        NoteIoErrorLocked(Status::DataLoss(
            "paged engine: bad record on page " +
            std::to_string(frame->page_id) + ": " +
            object.status().message()));
        frame->objects.clear();
        return false;
      }
      Oid oid = object.value().oid();
      frame->objects.emplace(oid, std::move(object).value());
    }
    return true;
  }

  // Materializes the frame's objects, evicting cold frames first so the
  // pool stays near budget. A frame with an in-flight writeback job is
  // served from the job — stealing the map back outright when the job has
  // not started (the write is canceled: zero I/O), copying otherwise.
  // False on I/O or decode failure (sticky).
  bool FaultLocked(Frame* frame) {
    if (frame->loaded) return true;
    EnforceBudgetLocked(
        options_.pool_pages > 0 ? options_.pool_pages - 1 : 0);
    if (metrics_ != nullptr) {
      metrics_->page_faults.fetch_add(1, std::memory_order_relaxed);
    }
    if (frame->inflight != nullptr) {
      std::shared_ptr<WritebackJob> job = frame->inflight;
      if (job->has_objects && !job->started) {
        frame->objects = std::move(job->objects);
        job->canceled = true;
        frame->inflight = nullptr;
        frame->dirty = true;  // the canceled write never reached disk
        frame->approx_bytes = job->approx_bytes;
        ++writeback_steals_;
      } else if (job->has_objects) {
        // Running: the thread only reads the job now, so a copy is safe.
        frame->objects = job->objects;
        frame->dirty = false;  // disk will match once the job lands
        frame->approx_bytes = job->approx_bytes;
      } else {
        if (!LoadFromTextLocked(frame, job->image.raw)) return false;
        frame->dirty = false;
        frame->approx_bytes = job->image.raw.size();
      }
      frame->loaded = true;
      ++resident_;
      return true;
    }
    if (!frame->on_disk) {
      // Evicted while empty and clean: nothing to read back.
      frame->loaded = true;
      frame->approx_bytes = 0;
      ++resident_;
      return true;
    }
    std::string stored(frame->payload_bytes, '\0');
    Status read = ReadAtFd(fd_, frame->slot_start * options_.page_bytes,
                           &stored);
    if (!read.ok()) {
      NoteIoErrorLocked(std::move(read));
      return false;
    }
    if (Crc32(stored.data(), stored.size()) != frame->crc) {
      NoteIoErrorLocked(Status::DataLoss(
          "paged engine: CRC mismatch on page " +
          std::to_string(frame->page_id)));
      return false;
    }
    const PageCodec* codec = PageCodecById(frame->codec_id);
    if (codec == nullptr) {
      NoteIoErrorLocked(Status::DataLoss(
          "paged engine: page " + std::to_string(frame->page_id) +
          " stored with unknown codec " + std::to_string(frame->codec_id)));
      return false;
    }
    Result<std::string> raw = codec->Decode(stored);
    if (!raw.ok()) {
      NoteIoErrorLocked(Status::DataLoss(
          "paged engine: page " + std::to_string(frame->page_id) +
          " failed to decode: " + raw.status().message()));
      return false;
    }
    if (!LoadFromTextLocked(frame, raw.value())) return false;
    frame->loaded = true;
    frame->approx_bytes = frame->raw_bytes;
    ++resident_;
    return true;
  }

  // Second-chance clock over resident frames until the pool is back at
  // `target` or nothing is evictable. Only cold frames — untouched since
  // before the last safe point, so no valid pointers reach into them — and
  // unpinned ones are victims; a hot working set may overshoot the budget
  // until the next SafePoint().
  void EnforceBudgetLocked(uint64_t target) {
    if (resident_ <= target || pages_.empty()) return;
    size_t sweeps = 2 * pages_.size() + 2;
    auto it = pages_.lower_bound(clock_key_);
    while (resident_ > target && sweeps-- > 0) {
      if (it == pages_.end()) it = pages_.begin();
      Frame* frame = it->second.get();
      ++it;
      if (!frame->loaded || frame->pins > 0 ||
          frame->touched_epoch >= epoch_) {
        continue;
      }
      if (frame->ref) {
        frame->ref = false;  // one more pass before eviction
        continue;
      }
      EvictLocked(frame);
    }
    clock_key_ = it == pages_.end() ? std::string() : it->first;
  }

  bool EvictLocked(Frame* frame) {
    UnswizzleFrameLocked(*frame);
    if (frame->dirty) {
      // A frame that already has an in-flight job MUST enqueue even past
      // the cap: the background thread serializes this frame's writes in
      // FIFO ticket order, whereas an inline write here could race the
      // running job's pwrite on the same extent — or be overwritten later
      // by the older job's stale content.
      if (UseBackgroundLocked() &&
          (queue_.size() < queue_cap_ || frame->inflight != nullptr)) {
        auto job = std::make_shared<WritebackJob>();
        job->frame = frame;
        job->has_objects = true;
        job->approx_bytes = frame->approx_bytes;
        job->objects = std::move(frame->objects);
        frame->dirty = false;
        EnqueueJobLocked(std::move(job));
      } else {
        // Full queue (or synchronous mode): write inline rather than
        // block — the engine lock may be held at arbitrary depth here.
        if (UseBackgroundLocked()) ++sync_fallbacks_;
        if (!WritebackSyncLocked(frame)) return false;
      }
    }
    frame->objects = ObjectsMap();
    frame->loaded = false;
    frame->approx_bytes = 0;
    --resident_;
    if (metrics_ != nullptr) {
      metrics_->page_evictions.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  void EnqueueJobLocked(std::shared_ptr<WritebackJob> job) {
    job->ticket = ++next_ticket_;
    job->frame->inflight = job;
    queue_.push_back(std::move(job));
    queue_peak_ = std::max<uint64_t>(queue_peak_, queue_.size());
    cv_.notify_all();
  }

  // ---- Extent allocation (address-ordered, coalescing first fit) ----

  uint64_t AllocExtentLocked(uint32_t slots) {
    for (auto it = free_extents_.begin(); it != free_extents_.end(); ++it) {
      if (it->second >= slots) {
        const uint64_t start = it->first;
        const uint64_t have = it->second;
        free_extents_.erase(it);
        if (have > slots) free_extents_.emplace(start + slots, have - slots);
        free_slots_ -= slots;
        return start;
      }
    }
    const uint64_t start = eof_slots_;
    eof_slots_ += slots;
    return start;
  }

  void FreeExtentLocked(uint64_t start, uint32_t slots) {
    uint64_t run_start = start;
    uint64_t run_len = slots;
    free_slots_ += slots;
    auto next = free_extents_.lower_bound(start);
    if (next != free_extents_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second == start) {
        run_start = prev->first;
        run_len += prev->second;
        free_extents_.erase(prev);
        ++extent_merges_;
      }
    }
    if (next != free_extents_.end() && next->first == start + slots) {
      run_len += next->second;
      free_extents_.erase(next);
      ++extent_merges_;
    }
    if (run_start + run_len == eof_slots_) {
      // The coalesced run reaches the file tail: shrink the file instead
      // of parking the slots on the list.
      eof_slots_ = run_start;
      free_slots_ -= run_len;
      slots_reclaimed_ += run_len;
      return;
    }
    free_extents_.emplace(run_start, run_len);
  }

  // Reuses the frame's extent when the stored size still fits the same
  // slot count; otherwise frees it and allocates a fresh one.
  void PlaceExtentLocked(Frame* frame, size_t stored_size) {
    const uint32_t slots = static_cast<uint32_t>(std::max<uint64_t>(
        1,
        (stored_size + options_.page_bytes - 1) / options_.page_bytes));
    if (frame->on_disk && frame->slot_count == slots) return;
    if (frame->on_disk) FreeExtentLocked(frame->slot_start, frame->slot_count);
    frame->slot_start = AllocExtentLocked(slots);
    frame->slot_count = slots;
  }

  void FinishImageLocked(Frame* frame, const PageImage& image,
                         size_t stored_size, uint32_t crc) {
    frame->payload_bytes = static_cast<uint32_t>(stored_size);
    frame->raw_bytes = static_cast<uint32_t>(image.raw.size());
    frame->codec_id = codec_->id();
    frame->crc = crc;
    frame->lsn = ++next_lsn_;
    frame->disk_objects = image.objects;
    frame->first_oid = image.first_oid;
    frame->last_oid = image.last_oid;
    frame->on_disk = true;
    if (metrics_ != nullptr) {
      metrics_->page_writeback_bytes.fetch_add(
          static_cast<int64_t>(stored_size), std::memory_order_relaxed);
    }
  }

  // Serializes, encodes, and writes the frame inline, under the lock (the
  // synchronous mode, and the full-queue fallback).
  bool WritebackSyncLocked(Frame* frame) {
    PageImage image = BuildImage(frame->objects, frame->approx_bytes);
    std::string stored = codec_->Encode(image.raw);
    PlaceExtentLocked(frame, stored.size());
    Status wrote = WriteAtFd(fd_, frame->slot_start * options_.page_bytes,
                             stored);
    if (!wrote.ok()) {
      NoteIoErrorLocked(std::move(wrote));
      return false;
    }
    FinishImageLocked(frame, image, stored.size(),
                      Crc32(stored.data(), stored.size()));
    frame->dirty = false;
    frame->approx_bytes = image.raw.size();
    return true;
  }

  void CompleteJobLocked(const std::shared_ptr<WritebackJob>& job) {
    if (job->frame->inflight == job) job->frame->inflight = nullptr;
    completed_ticket_ = job->ticket;
    cv_.notify_all();
  }

  // The dedicated writeback thread: serialize → encode → CRC off the lock,
  // then place the extent and publish metadata under it, then write. On
  // stop it drains the queue first (canceled jobs complete immediately),
  // so a normal destruction leaves no job behind.
  void WritebackLoop() {
    std::unique_lock<std::recursive_mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      std::shared_ptr<WritebackJob> job = queue_.front();
      queue_.pop_front();
      if (job->canceled || !io_error_.ok()) {
        CompleteJobLocked(job);
        continue;
      }
      job->started = true;
      Frame* frame = job->frame;
      lock.unlock();
      PageImage local;
      const PageImage* image = &job->image;
      if (job->has_objects) {
        local = BuildImage(job->objects, job->approx_bytes);
        image = &local;
      }
      std::string stored = codec_->Encode(image->raw);
      const uint32_t crc = Crc32(stored.data(), stored.size());
      lock.lock();
      PlaceExtentLocked(frame, stored.size());
      FinishImageLocked(frame, *image, stored.size(), crc);
      const uint64_t offset = frame->slot_start * options_.page_bytes;
      lock.unlock();
      // Safe off the lock: while the job is in flight no fault reads the
      // extent (faults are served from the job), and FIFO processing means
      // no second writer can touch this frame's extent concurrently.
      Status wrote = WriteAtFd(fd_, offset, stored);
      lock.lock();
      if (!wrote.ok()) NoteIoErrorLocked(std::move(wrote));
      CompleteJobLocked(job);
    }
  }

  // Rebalances an oversized frame: re-derives the exact encoded size and
  // splits off the upper half into a new page (recursively, for a frame
  // far over budget). Only called from Put — the one mutation whose
  // contract already invalidates outstanding pointers.
  void SplitLocked(Frame* frame) {
    auto sorted = SortedEntries(frame->objects);
    std::vector<size_t> sizes;
    sizes.reserve(sorted.size());
    size_t total = 0;
    for (const auto& [key, object] : sorted) {
      sizes.push_back(EncodeObjectRecord(*object).size() + 1);
      total += sizes.back();
    }
    frame->approx_bytes = total;
    if (total <= options_.page_bytes || sorted.size() <= 1) return;
    size_t cut = 0, lower = 0;
    while (cut < sorted.size() && lower + sizes[cut] <= total / 2) {
      lower += sizes[cut++];
    }
    if (cut == 0) cut = 1;  // a giant head object: keep it alone
    if (cut >= sorted.size()) cut = sorted.size() - 1;
    Frame* upper = CreateFrameLocked(std::string(sorted[cut].first));
    upper->dirty = true;
    upper->ref = true;
    size_t moved = 0;
    for (size_t i = cut; i < sorted.size(); ++i) {
      const Oid oid = sorted[i].second->oid();
      swizzle_.erase(oid);  // the entry's frame is about to change
      auto node = frame->objects.extract(oid);
      upper->objects.insert(std::move(node));
      moved += sizes[i];
    }
    upper->approx_bytes = moved;
    frame->approx_bytes = total - moved;
    frame->dirty = true;
    if (upper->approx_bytes > options_.page_bytes) SplitLocked(upper);
    if (frame->approx_bytes > options_.page_bytes) SplitLocked(frame);
  }

  void ScanLocked(const std::function<void(const Object&)>& fn,
                  bool ordered) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    for (auto it = pages_.begin(); it != pages_.end(); ++it) {
      Frame* frame = it->second.get();
      const bool was_loaded = frame->loaded;
      if (!FaultLocked(frame)) continue;  // sticky io_error_ records it
      ++frame->pins;
      ++pinned_;
      NotePinnedPeakLocked();
      if (ordered) {
        for (const auto& [key, object] : SortedEntries(frame->objects)) {
          fn(*object);
        }
      } else {
        for (const auto& [oid, object] : frame->objects) fn(object);
      }
      --frame->pins;
      --pinned_;
      if (!was_loaded && frame->pins == 0) {
        // The scan faulted this page for itself: release it promptly so a
        // full scan of a beyond-RAM store stays within budget. Marking it
        // cold is safe — the references handed to `fn` were callback-local.
        frame->ref = false;
        frame->touched_epoch = epoch_ > 0 ? epoch_ - 1 : 0;
        if (resident_ > options_.pool_pages) EvictLocked(frame);
      }
    }
  }

  void NotePinnedPeakLocked() {
    if (metrics_ == nullptr) return;
    int64_t peak =
        metrics_->pages_pinned_peak.load(std::memory_order_relaxed);
    if (static_cast<int64_t>(pinned_) > peak) {
      metrics_->pages_pinned_peak.store(static_cast<int64_t>(pinned_),
                                        std::memory_order_relaxed);
    }
  }

  Status WritePageDirLocked() {
    std::ostringstream out;
    out << "# gsv paged pages v2\n";
    out << "meta page_bytes " << options_.page_bytes << " pages "
        << pages_.size() << " eof_slots " << eof_slots_ << " codec "
        << codec_->name() << "\n";
    for (const auto& [key, frame] : pages_) {
      if (!frame->on_disk) continue;  // empty, never-written page
      out << "page " << frame->page_id << ' ' << EncodeKey(frame->min_key)
          << ' ' << frame->slot_start << ' ' << frame->slot_count << ' '
          << frame->payload_bytes << ' ' << frame->raw_bytes << ' '
          << static_cast<uint32_t>(frame->codec_id) << ' ' << frame->crc
          << ' ' << frame->lsn << ' ' << frame->disk_objects << ' '
          << EncodeKey(frame->first_oid) << ' ' << EncodeKey(frame->last_oid)
          << ' ' << (frame->loaded ? "resident" : "evicted") << "\n";
    }
    std::string body = out.str();
    std::ostringstream trailer;
    trailer << "crc " << Crc32(body.data(), body.size()) << "\n";
    const std::string tmp = PageDirPath() + ".tmp";
    {
      std::ofstream file(tmp, std::ios::trunc);
      if (!file.is_open()) {
        return Status::Internal("paged engine: cannot open " + tmp);
      }
      file << body << trailer.str();
      if (!file.good()) {
        return Status::Internal("paged engine: PAGEDIR write failed");
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, PageDirPath(), ec);
    if (ec) {
      return Status::Internal("paged engine: PAGEDIR rename failed: " +
                              ec.message());
    }
    return Status::Ok();
  }

  PagedEngineOptions options_;
  mutable std::recursive_mutex mu_;
  // Signals the writeback thread (queue work, stop) and its observers
  // (job completions: the Flush barrier). condition_variable_any because
  // the engine lock is recursive; every waiter holds it exactly once.
  std::condition_variable_any cv_;
  // min_key → frame. The first page's min_key is "" so every OID routes.
  std::map<std::string, std::unique_ptr<Frame>> pages_;
  // Direct object addresses for resident frames, keyed by interned OID.
  std::unordered_map<Oid, SwizzleEntry, OidHash> swizzle_;
  // start slot → run length; disjoint, coalesced, address-ordered.
  std::map<uint64_t, uint64_t> free_extents_;
  std::deque<std::shared_ptr<WritebackJob>> queue_;
  std::thread writeback_;
  bool stop_ = false;
  uint64_t queue_cap_ = 0;
  uint64_t next_ticket_ = 0;
  uint64_t completed_ticket_ = 0;
  uint64_t queue_peak_ = 0;
  uint64_t writeback_steals_ = 0;
  uint64_t sync_fallbacks_ = 0;
  uint64_t free_slots_ = 0;
  uint64_t extent_merges_ = 0;
  uint64_t slots_reclaimed_ = 0;
  const PageCodec* codec_ = nullptr;
  uint64_t eof_slots_ = 0;
  uint64_t next_page_id_ = 1;
  uint64_t next_lsn_ = 0;
  uint64_t epoch_ = 1;
  std::string clock_key_;  // clock hand position (map key)
  size_t resident_ = 0;
  size_t pinned_ = 0;
  size_t total_objects_ = 0;
  int fd_ = -1;
  StoreMetrics* metrics_ = nullptr;
  Status io_error_;
};

}  // namespace

std::unique_ptr<StorageEngine> MakePagedEngine(PagedEngineOptions options) {
  return std::make_unique<PagedEngine>(std::move(options));
}

StorageEngineFactory MakePagedEngineFactory(PagedEngineOptions options) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  return [options, counter]() -> std::unique_ptr<StorageEngine> {
    PagedEngineOptions instance = options;
    instance.dir = options.dir + "/eng-" +
                   std::to_string(counter->fetch_add(1));
    return MakePagedEngine(std::move(instance));
  };
}

Result<StorageEngineFactory> ParseStorageEngineSpec(std::string_view spec) {
  if (spec.empty() || spec == "memory") return StorageEngineFactory(nullptr);

  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    size_t colon = spec.find(':', start);
    parts.emplace_back(spec.substr(
        start, colon == std::string_view::npos ? colon : colon - start));
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }

  if (parts[0] != "paged") {
    return Status::InvalidArgument(
        "unknown storage engine '" + parts[0] +
        "' (known: memory, paged[:<pool>[:<bytes>[:<codec>]]])");
  }
  if (parts.size() > 4) {
    return Status::InvalidArgument(
        "storage engine spec '" + std::string(spec) +
        "' has too many ':' fields (paged[:<pool>[:<bytes>[:<codec>]]])");
  }

  PagedEngineOptions options;
  options.wipe_on_close = true;
  if (parts.size() >= 2) {
    std::optional<int64_t> pool = ParseInt64(parts[1]);
    if (!pool.has_value() || *pool <= 0) {
      return Status::InvalidArgument(
          "storage engine spec: pool_pages must be a positive integer, got "
          "'" + parts[1] + "'");
    }
    options.pool_pages = static_cast<uint64_t>(*pool);
  }
  if (parts.size() >= 3) {
    std::optional<int64_t> bytes = ParseInt64(parts[2]);
    if (!bytes.has_value() || *bytes <= 0) {
      return Status::InvalidArgument(
          "storage engine spec: page_bytes must be a positive integer, got "
          "'" + parts[2] + "'");
    }
    options.page_bytes = static_cast<uint64_t>(*bytes);
  }
  if (parts.size() == 4) {
    GSV_ASSIGN_OR_RETURN(const PageCodec* codec, PageCodecByName(parts[3]));
    options.codec = codec->name();
  }

  const char* tmpdir = std::getenv("TMPDIR");
  std::string root = (tmpdir != nullptr && *tmpdir != '\0')
                         ? std::string(tmpdir)
                         : std::string("/tmp");
  std::string pattern = root + "/gsv-paged-XXXXXX";
  std::vector<char> buf(pattern.begin(), pattern.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::Internal("storage engine spec: mkdtemp failed under " +
                            root + ": " + std::strerror(errno));
  }
  options.dir = buf.data();
  return MakePagedEngineFactory(std::move(options));
}

StorageEngineFactory MakeEngineFactoryFromEnv() {
  const char* env = std::getenv("GSV_STORAGE_ENGINE");
  Result<StorageEngineFactory> parsed =
      ParseStorageEngineSpec(env != nullptr ? std::string_view(env)
                                            : std::string_view());
  if (!parsed.ok()) {
    // A typo'd override silently running the default engine would void
    // every suite the caller meant to re-home; die loudly instead.
    std::fprintf(stderr, "GSV_STORAGE_ENGINE rejected: %s\n",
                 parsed.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(parsed).value();
}

bool QueryPagedEngineStatus(const StorageEngine* engine,
                            PagedEngineStatus* status) {
  const auto* paged = dynamic_cast<const PagedEngine*>(engine);
  if (paged == nullptr) return false;
  paged->FillStatus(status);
  return true;
}

namespace {

// Decodes a "k<key>" field; false when the prefix is missing.
bool DecodeKeyField(std::string_view field, std::string* key) {
  if (field.empty() || field[0] != 'k') return false;
  *key = std::string(field.substr(1));
  return true;
}

std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

}  // namespace

Result<PageDirectory> ReadPageDirectory(const std::string& dir) {
  std::ifstream in(dir + "/" + kPageDirName);
  if (!in.is_open()) {
    return Status::NotFound("no PAGEDIR in " + dir);
  }
  std::string body, line;
  PageDirectory directory;
  bool saw_trailer = false;
  while (std::getline(in, line)) {
    if (line.rfind("crc ", 0) == 0) {
      std::optional<int64_t> want = ParseInt64(std::string_view(line).substr(4));
      if (!want.has_value()) {
        return Status::DataLoss("PAGEDIR: malformed crc trailer");
      }
      if (Crc32(body.data(), body.size()) !=
          static_cast<uint32_t>(*want)) {
        return Status::DataLoss("PAGEDIR: trailer CRC mismatch");
      }
      saw_trailer = true;
      break;
    }
    body += line;
    body += '\n';
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> f = SplitFields(line);
    if (f.empty()) continue;
    if (f[0] == "meta") {
      for (size_t i = 1; i + 1 < f.size(); i += 2) {
        if (f[i] == "codec") {
          directory.codec = std::string(f[i + 1]);
          continue;
        }
        std::optional<int64_t> v = ParseInt64(f[i + 1]);
        if (!v.has_value()) continue;
        if (f[i] == "page_bytes") directory.page_bytes = *v;
        if (f[i] == "eof_slots") directory.eof_slots = *v;
      }
      continue;
    }
    if (f[0] != "page") {
      return Status::DataLoss("PAGEDIR: unknown record '" + line + "'");
    }
    if (f.size() < 14) {
      return Status::DataLoss("PAGEDIR: short page record '" + line + "'");
    }
    PageDirEntry entry;
    auto num = [&](size_t idx, auto* out) {
      std::optional<int64_t> v = ParseInt64(f[idx]);
      if (v.has_value()) *out = static_cast<std::decay_t<decltype(*out)>>(*v);
      return v.has_value();
    };
    bool ok = num(1, &entry.page_id) && num(3, &entry.slot_start) &&
              num(4, &entry.slot_count) && num(5, &entry.payload_bytes) &&
              num(6, &entry.raw_bytes) && num(7, &entry.codec_id) &&
              num(8, &entry.crc) && num(9, &entry.lsn) &&
              num(10, &entry.objects) &&
              DecodeKeyField(f[2], &entry.min_key) &&
              DecodeKeyField(f[11], &entry.first_oid) &&
              DecodeKeyField(f[12], &entry.last_oid);
    entry.resident = f[13] == "resident";
    if (!ok) {
      return Status::DataLoss("PAGEDIR: malformed page record '" + line +
                              "'");
    }
    directory.pages.push_back(std::move(entry));
  }
  if (!saw_trailer) {
    return Status::DataLoss("PAGEDIR: missing crc trailer");
  }
  return directory;
}

Status VerifyPagedImage(const std::string& dir, std::ostream* out) {
  GSV_ASSIGN_OR_RETURN(PageDirectory directory, ReadPageDirectory(dir));
  std::ifstream pages(dir + "/" + kPageFileName, std::ios::binary);
  if (!pages.is_open()) {
    return Status::NotFound("no " + std::string(kPageFileName) + " in " +
                            dir);
  }
  Status result = Status::Ok();
  auto note = [&result](Status status) {
    if (result.ok()) result = std::move(status);
  };
  uint64_t stored_total = 0;
  uint64_t raw_total = 0;
  for (const PageDirEntry& entry : directory.pages) {
    std::string payload(entry.payload_bytes, '\0');
    pages.seekg(static_cast<std::streamoff>(entry.slot_start *
                                            directory.page_bytes));
    pages.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    bool crc_ok =
        pages.gcount() == static_cast<std::streamsize>(payload.size());
    pages.clear();
    if (crc_ok) crc_ok = Crc32(payload.data(), payload.size()) == entry.crc;
    if (!crc_ok) {
      note(Status::DataLoss("page " + std::to_string(entry.page_id) +
                            ": CRC mismatch"));
    }
    // CRC covers the stored bytes, so the audit above works even on a
    // codec this build has never heard of — but the page is then
    // unreadable here, and claiming it verified would be a lie.
    const PageCodec* codec =
        PageCodecById(static_cast<uint8_t>(entry.codec_id));
    const char* codec_name = codec != nullptr ? codec->name() : "?";
    bool decode_ok = codec != nullptr;
    if (codec == nullptr) {
      note(Status::DataLoss("page " + std::to_string(entry.page_id) +
                            ": unrecognized codec id " +
                            std::to_string(entry.codec_id)));
    } else if (crc_ok) {
      Result<std::string> raw = codec->Decode(payload);
      decode_ok = raw.ok() && raw.value().size() == entry.raw_bytes;
      if (!decode_ok) {
        note(Status::DataLoss(
            "page " + std::to_string(entry.page_id) + ": " +
            (raw.ok() ? "decoded size disagrees with directory"
                      : raw.status().message())));
      }
    }
    stored_total += entry.payload_bytes;
    raw_total += entry.raw_bytes;
    if (out != nullptr) {
      const double ratio =
          entry.raw_bytes == 0
              ? 1.0
              : static_cast<double>(entry.payload_bytes) / entry.raw_bytes;
      char ratio_text[32];
      std::snprintf(ratio_text, sizeof(ratio_text), "%.2f", ratio);
      *out << "page " << entry.page_id << " range [" << entry.first_oid
           << " .. " << entry.last_oid << "] objects " << entry.objects
           << " slots " << entry.slot_start << "+" << entry.slot_count
           << " codec " << entry.codec_id << "(" << codec_name << ") bytes "
           << entry.payload_bytes << "/" << entry.raw_bytes << " ratio "
           << ratio_text << " lsn " << entry.lsn << ' '
           << (entry.resident ? "resident" : "evicted") << " crc "
           << (crc_ok ? "ok" : "MISMATCH")
           << (decode_ok ? "" : " decode FAILED") << "\n";
    }
  }
  if (out != nullptr) {
    const double total_ratio =
        raw_total == 0 ? 1.0
                       : static_cast<double>(stored_total) / raw_total;
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof(ratio_text), "%.2f", total_ratio);
    *out << directory.pages.size() << " page(s), page_bytes "
         << directory.page_bytes << ", eof_slots " << directory.eof_slots
         << ", codec " << (directory.codec.empty() ? "?" : directory.codec)
         << ", stored/raw " << stored_total << "/" << raw_total << " ("
         << ratio_text << "), "
         << (result.ok() ? "all pages verify" : result.message()) << "\n";
  }
  return result;
}

}  // namespace gsv
