#include "oem/paged_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "oem/serialize.h"
#include "oem/store.h"
#include "storage/wal.h"
#include "util/string_util.h"

namespace gsv {
namespace {

constexpr const char* kPageFileName = "pages.gsp";
constexpr const char* kPageDirName = "PAGEDIR";

// `min_key` encoded so the empty routing sentinel survives tokenization:
// "k" + key (OID strings never contain whitespace).
std::string EncodeKey(const std::string& key) { return "k" + key; }

struct Frame {
  uint64_t page_id = 0;
  std::string min_key;  // routing lower bound; "" on the first page

  // ---- On-disk extent (valid when on_disk) ----
  bool on_disk = false;
  uint64_t slot_start = 0;
  uint32_t slot_count = 0;
  uint32_t payload_bytes = 0;
  uint32_t crc = 0;
  uint64_t lsn = 0;            // bumped per writeback
  uint64_t disk_objects = 0;   // object count as of the last writeback
  std::string first_oid;       // OID range as of the last writeback
  std::string last_oid;

  // ---- Residency ----
  bool loaded = false;
  bool dirty = false;
  bool ref = false;            // second-chance bit
  int pins = 0;
  uint64_t touched_epoch = 0;  // last epoch a pointer was handed out
  size_t approx_bytes = 0;     // encoded-size estimate driving splits
  std::unordered_map<Oid, Object, OidHash> objects;
};

class PagedEngine final : public StorageEngine {
 public:
  explicit PagedEngine(PagedEngineOptions options)
      : options_(std::move(options)) {
    if (options_.page_bytes == 0) options_.page_bytes = 64 * 1024;
    if (options_.pool_pages == 0) options_.pool_pages = 1;
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    // The home is scratch: always start empty (durable truth is the WAL +
    // checkpoints; recovery re-seeds through the bulk-load path).
    std::filesystem::remove(PageDirPath(), ec);
    fd_ = ::open(PageFilePath().c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
    if (fd_ < 0) {
      NoteIoError(Status::Internal("paged engine: cannot open " +
                                   PageFilePath() + ": " +
                                   std::strerror(errno)));
    }
  }

  ~PagedEngine() override {
    if (fd_ >= 0) ::close(fd_);
    if (options_.wipe_on_close) {
      std::error_code ec;
      std::filesystem::remove_all(options_.dir, ec);
    }
  }

  const char* EngineName() const override { return "paged"; }

  const Object* Get(const Oid& oid) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    Frame* frame = RouteLocked(oid.str());
    if (frame == nullptr || !FaultLocked(frame)) return nullptr;
    TouchLocked(frame);
    auto it = frame->objects.find(oid);
    return it == frame->objects.end() ? nullptr : &it->second;
  }

  Object* GetMutable(const Oid& oid) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    Frame* frame = RouteLocked(oid.str());
    if (frame == nullptr || !FaultLocked(frame)) return nullptr;
    TouchLocked(frame);
    auto it = frame->objects.find(oid);
    if (it == frame->objects.end()) return nullptr;
    frame->dirty = true;
    return &it->second;
  }

  Status Put(Object object) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    const Oid oid = object.oid();
    const std::string& key = oid.str();
    if (pages_.empty()) CreateFrameLocked("");
    Frame* frame = RouteLocked(key);
    if (!FaultLocked(frame)) return io_error_;
    if (frame->objects.count(oid) > 0) {
      return Status::AlreadyExists("object " + key + " already exists");
    }
    frame->approx_bytes += EncodeObjectRecord(object).size() + 1;
    frame->objects.emplace(oid, std::move(object));
    frame->dirty = true;
    TouchLocked(frame);
    ++total_objects_;
    if (frame->approx_bytes > options_.page_bytes &&
        frame->objects.size() > 1) {
      SplitLocked(frame);
    }
    return Status::Ok();
  }

  Status Erase(const Oid& oid) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    Frame* frame = RouteLocked(oid.str());
    if (frame == nullptr) {
      return Status::NotFound("object " + oid.str() + " does not exist");
    }
    if (!FaultLocked(frame)) return io_error_;
    if (frame->objects.erase(oid) == 0) {
      return Status::NotFound("object " + oid.str() + " does not exist");
    }
    frame->dirty = true;
    TouchLocked(frame);
    --total_objects_;
    return Status::Ok();
  }

  size_t Size() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return total_objects_;
  }

  void ScanInOrder(const std::function<void(const Object&)>& fn) override {
    ScanLocked(fn, /*ordered=*/true);
  }

  void ScanUnordered(const std::function<void(const Object&)>& fn) override {
    ScanLocked(fn, /*ordered=*/false);
  }

  void SafePoint() override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    // No caller holds pointers now: every resident frame becomes a legal
    // victim (the new epoch has touched nothing yet). Run the clock back
    // down to budget.
    ++epoch_;
    EnforceBudgetLocked(options_.pool_pages);
  }

  Status Flush() override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    for (auto& [key, frame] : pages_) {
      if (frame->loaded && frame->dirty) WritebackLocked(frame.get());
    }
    if (!io_error_.ok()) return io_error_;
    return WritePageDirLocked();
  }

  void AttachMetrics(StoreMetrics* metrics) override { metrics_ = metrics; }

  void FillStatus(PagedEngineStatus* status) const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    status->dir = options_.dir;
    status->page_bytes = options_.page_bytes;
    status->pool_pages = options_.pool_pages;
    status->pages_total = pages_.size();
    status->pages_resident = resident_;
    status->pages_pinned = pinned_;
    status->objects = total_objects_;
    status->disk_slots = eof_slots_;
    uint64_t payload = 0;
    for (const auto& [key, frame] : pages_) {
      if (frame->on_disk) payload += frame->payload_bytes;
    }
    status->disk_payload_bytes = payload;
    status->io_error = io_error_;
  }

 private:
  std::string PageFilePath() const {
    return options_.dir + "/" + kPageFileName;
  }
  std::string PageDirPath() const { return options_.dir + "/" + kPageDirName; }

  void NoteIoError(Status status) {
    if (io_error_.ok()) io_error_ = std::move(status);
  }

  // The frame whose key range covers `key`, or nullptr on an empty store.
  Frame* RouteLocked(const std::string& key) {
    if (pages_.empty()) return nullptr;
    auto it = pages_.upper_bound(key);
    if (it != pages_.begin()) --it;
    return it->second.get();
  }

  Frame* CreateFrameLocked(std::string min_key) {
    auto frame = std::make_unique<Frame>();
    frame->page_id = next_page_id_++;
    frame->min_key = min_key;
    frame->loaded = true;
    frame->touched_epoch = epoch_;
    Frame* raw = frame.get();
    pages_.emplace(std::move(min_key), std::move(frame));
    ++resident_;
    return raw;
  }

  void TouchLocked(Frame* frame) {
    frame->ref = true;
    frame->touched_epoch = epoch_;
  }

  // Materializes the frame's objects, evicting cold frames first so the
  // pool stays near budget. False on I/O or decode failure (sticky).
  bool FaultLocked(Frame* frame) {
    if (frame->loaded) return true;
    EnforceBudgetLocked(
        options_.pool_pages > 0 ? options_.pool_pages - 1 : 0);
    if (metrics_ != nullptr) {
      metrics_->page_faults.fetch_add(1, std::memory_order_relaxed);
    }
    if (!frame->on_disk) {
      // Evicted while empty and clean: nothing to read back.
      frame->loaded = true;
      frame->approx_bytes = 0;
      ++resident_;
      return true;
    }
    std::string payload(frame->payload_bytes, '\0');
    if (!ReadAt(frame->slot_start * options_.page_bytes, &payload)) {
      return false;
    }
    if (Crc32(payload.data(), payload.size()) != frame->crc) {
      NoteIoError(Status::DataLoss("paged engine: CRC mismatch on page " +
                                   std::to_string(frame->page_id)));
      return false;
    }
    size_t start = 0;
    while (start < payload.size()) {
      size_t end = payload.find('\n', start);
      if (end == std::string::npos) end = payload.size();
      std::string line = payload.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      Result<Object> object = DecodeObjectRecord(line);
      if (!object.ok()) {
        NoteIoError(Status::DataLoss("paged engine: bad record on page " +
                                     std::to_string(frame->page_id) + ": " +
                                     object.status().message()));
        frame->objects.clear();
        return false;
      }
      Oid oid = object.value().oid();
      frame->objects.emplace(oid, std::move(object).value());
    }
    frame->loaded = true;
    frame->approx_bytes = frame->payload_bytes;
    ++resident_;
    return true;
  }

  // Second-chance clock over resident frames until the pool is back at
  // `target` or nothing is evictable. Only cold frames — untouched since
  // before the last safe point, so no valid pointers reach into them — and
  // unpinned ones are victims; a hot working set may overshoot the budget
  // until the next SafePoint().
  void EnforceBudgetLocked(uint64_t target) {
    if (resident_ <= target || pages_.empty()) return;
    size_t sweeps = 2 * pages_.size() + 2;
    auto it = pages_.lower_bound(clock_key_);
    while (resident_ > target && sweeps-- > 0) {
      if (it == pages_.end()) it = pages_.begin();
      Frame* frame = it->second.get();
      ++it;
      if (!frame->loaded || frame->pins > 0 ||
          frame->touched_epoch >= epoch_) {
        continue;
      }
      if (frame->ref) {
        frame->ref = false;  // one more pass before eviction
        continue;
      }
      EvictLocked(frame);
    }
    clock_key_ = it == pages_.end() ? std::string() : it->first;
  }

  bool EvictLocked(Frame* frame) {
    if (frame->dirty && !WritebackLocked(frame)) return false;
    frame->objects = std::unordered_map<Oid, Object, OidHash>();
    frame->loaded = false;
    frame->approx_bytes = 0;
    --resident_;
    if (metrics_ != nullptr) {
      metrics_->page_evictions.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  // Frame objects decorated with their interned key strings, sorted.
  std::vector<std::pair<std::string_view, const Object*>> SortedLocked(
      const Frame& frame) const {
    std::vector<std::pair<std::string_view, const Object*>> sorted;
    sorted.reserve(frame.objects.size());
    for (const auto& [oid, object] : frame.objects) {
      sorted.emplace_back(oid.str(), &object);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return sorted;
  }

  // Serializes the frame and writes it to a (possibly new) extent.
  bool WritebackLocked(Frame* frame) {
    auto sorted = SortedLocked(*frame);
    std::string payload;
    payload.reserve(frame->approx_bytes + 64);
    for (const auto& [key, object] : sorted) {
      payload += EncodeObjectRecord(*object);
      payload += '\n';
    }
    const uint32_t slots = std::max<uint64_t>(
        1, (payload.size() + options_.page_bytes - 1) / options_.page_bytes);
    if (!frame->on_disk || frame->slot_count != slots) {
      if (frame->on_disk) FreeExtentLocked(frame->slot_start,
                                           frame->slot_count);
      frame->slot_start = AllocExtentLocked(slots);
      frame->slot_count = slots;
    }
    if (!WriteAt(frame->slot_start * options_.page_bytes, payload)) {
      return false;
    }
    frame->payload_bytes = static_cast<uint32_t>(payload.size());
    frame->crc = Crc32(payload.data(), payload.size());
    frame->lsn = ++next_lsn_;
    frame->disk_objects = sorted.size();
    frame->first_oid = sorted.empty() ? "" : std::string(sorted.front().first);
    frame->last_oid = sorted.empty() ? "" : std::string(sorted.back().first);
    frame->on_disk = true;
    frame->dirty = false;
    frame->approx_bytes = payload.size();
    if (metrics_ != nullptr) {
      metrics_->page_writeback_bytes.fetch_add(
          static_cast<int64_t>(payload.size()), std::memory_order_relaxed);
    }
    return true;
  }

  uint64_t AllocExtentLocked(uint32_t slots) {
    auto it = free_extents_.lower_bound(slots);
    if (it != free_extents_.end()) {
      uint64_t start = it->second;
      uint32_t have = it->first;
      free_extents_.erase(it);
      if (have > slots) free_extents_.emplace(have - slots, start + slots);
      return start;
    }
    uint64_t start = eof_slots_;
    eof_slots_ += slots;
    return start;
  }

  void FreeExtentLocked(uint64_t start, uint32_t slots) {
    free_extents_.emplace(slots, start);
  }

  // Rebalances an oversized frame: re-derives the exact encoded size and
  // splits off the upper half into a new page (recursively, for a frame
  // far over budget). Only called from Put — the one mutation whose
  // contract already invalidates outstanding pointers.
  void SplitLocked(Frame* frame) {
    auto sorted = SortedLocked(*frame);
    std::vector<size_t> sizes;
    sizes.reserve(sorted.size());
    size_t total = 0;
    for (const auto& [key, object] : sorted) {
      sizes.push_back(EncodeObjectRecord(*object).size() + 1);
      total += sizes.back();
    }
    frame->approx_bytes = total;
    if (total <= options_.page_bytes || sorted.size() <= 1) return;
    size_t cut = 0, lower = 0;
    while (cut < sorted.size() && lower + sizes[cut] <= total / 2) {
      lower += sizes[cut++];
    }
    if (cut == 0) cut = 1;  // a giant head object: keep it alone
    if (cut >= sorted.size()) cut = sorted.size() - 1;
    Frame* upper = CreateFrameLocked(std::string(sorted[cut].first));
    upper->dirty = true;
    upper->ref = true;
    size_t moved = 0;
    for (size_t i = cut; i < sorted.size(); ++i) {
      const Oid oid = sorted[i].second->oid();
      auto node = frame->objects.extract(oid);
      upper->objects.insert(std::move(node));
      moved += sizes[i];
    }
    upper->approx_bytes = moved;
    frame->approx_bytes = total - moved;
    frame->dirty = true;
    if (upper->approx_bytes > options_.page_bytes) SplitLocked(upper);
    if (frame->approx_bytes > options_.page_bytes) SplitLocked(frame);
  }

  void ScanLocked(const std::function<void(const Object&)>& fn,
                  bool ordered) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    for (auto it = pages_.begin(); it != pages_.end(); ++it) {
      Frame* frame = it->second.get();
      const bool was_loaded = frame->loaded;
      if (!FaultLocked(frame)) continue;  // sticky io_error_ records it
      ++frame->pins;
      ++pinned_;
      NotePinnedPeakLocked();
      if (ordered) {
        for (const auto& [key, object] : SortedLocked(*frame)) fn(*object);
      } else {
        for (const auto& [oid, object] : frame->objects) fn(object);
      }
      --frame->pins;
      --pinned_;
      if (!was_loaded && frame->pins == 0) {
        // The scan faulted this page for itself: release it promptly so a
        // full scan of a beyond-RAM store stays within budget. Marking it
        // cold is safe — the references handed to `fn` were callback-local.
        frame->ref = false;
        frame->touched_epoch = epoch_ > 0 ? epoch_ - 1 : 0;
        if (resident_ > options_.pool_pages) EvictLocked(frame);
      }
    }
  }

  void NotePinnedPeakLocked() {
    if (metrics_ == nullptr) return;
    int64_t peak =
        metrics_->pages_pinned_peak.load(std::memory_order_relaxed);
    if (static_cast<int64_t>(pinned_) > peak) {
      metrics_->pages_pinned_peak.store(static_cast<int64_t>(pinned_),
                                        std::memory_order_relaxed);
    }
  }

  bool ReadAt(uint64_t offset, std::string* buffer) {
    size_t done = 0;
    while (done < buffer->size()) {
      ssize_t n = ::pread(fd_, buffer->data() + done, buffer->size() - done,
                          static_cast<off_t>(offset + done));
      if (n <= 0) {
        NoteIoError(Status::DataLoss(
            "paged engine: short read at offset " + std::to_string(offset) +
            (n < 0 ? std::string(": ") + std::strerror(errno) : "")));
        return false;
      }
      done += static_cast<size_t>(n);
    }
    return true;
  }

  bool WriteAt(uint64_t offset, const std::string& payload) {
    size_t done = 0;
    while (done < payload.size()) {
      ssize_t n = ::pwrite(fd_, payload.data() + done, payload.size() - done,
                           static_cast<off_t>(offset + done));
      if (n < 0) {
        NoteIoError(Status::Internal("paged engine: write failed at offset " +
                                     std::to_string(offset) + ": " +
                                     std::strerror(errno)));
        return false;
      }
      done += static_cast<size_t>(n);
    }
    return true;
  }

  Status WritePageDirLocked() {
    std::ostringstream out;
    out << "# gsv paged pages v1\n";
    out << "meta page_bytes " << options_.page_bytes << " pages "
        << pages_.size() << " eof_slots " << eof_slots_ << "\n";
    for (const auto& [key, frame] : pages_) {
      if (!frame->on_disk) continue;  // empty, never-written page
      out << "page " << frame->page_id << ' ' << EncodeKey(frame->min_key)
          << ' ' << frame->slot_start << ' ' << frame->slot_count << ' '
          << frame->payload_bytes << ' ' << frame->crc << ' ' << frame->lsn
          << ' ' << frame->disk_objects << ' ' << EncodeKey(frame->first_oid)
          << ' ' << EncodeKey(frame->last_oid) << ' '
          << (frame->loaded ? "resident" : "evicted") << " clean\n";
    }
    std::string body = out.str();
    std::ostringstream trailer;
    trailer << "crc " << Crc32(body.data(), body.size()) << "\n";
    const std::string tmp = PageDirPath() + ".tmp";
    {
      std::ofstream file(tmp, std::ios::trunc);
      if (!file.is_open()) {
        return Status::Internal("paged engine: cannot open " + tmp);
      }
      file << body << trailer.str();
      if (!file.good()) {
        return Status::Internal("paged engine: PAGEDIR write failed");
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, PageDirPath(), ec);
    if (ec) {
      return Status::Internal("paged engine: PAGEDIR rename failed: " +
                              ec.message());
    }
    return Status::Ok();
  }

  PagedEngineOptions options_;
  mutable std::recursive_mutex mu_;
  // min_key → frame. The first page's min_key is "" so every OID routes.
  std::map<std::string, std::unique_ptr<Frame>> pages_;
  std::multimap<uint32_t, uint64_t> free_extents_;  // slot_count → start
  uint64_t eof_slots_ = 0;
  uint64_t next_page_id_ = 1;
  uint64_t next_lsn_ = 0;
  uint64_t epoch_ = 1;
  std::string clock_key_;  // clock hand position (map key)
  size_t resident_ = 0;
  size_t pinned_ = 0;
  size_t total_objects_ = 0;
  int fd_ = -1;
  StoreMetrics* metrics_ = nullptr;
  Status io_error_;
};

}  // namespace

std::unique_ptr<StorageEngine> MakePagedEngine(PagedEngineOptions options) {
  return std::make_unique<PagedEngine>(std::move(options));
}

StorageEngineFactory MakePagedEngineFactory(PagedEngineOptions options) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  return [options, counter]() -> std::unique_ptr<StorageEngine> {
    PagedEngineOptions instance = options;
    instance.dir = options.dir + "/eng-" +
                   std::to_string(counter->fetch_add(1));
    return MakePagedEngine(std::move(instance));
  };
}

StorageEngineFactory MakeEngineFactoryFromEnv() {
  const char* env = std::getenv("GSV_STORAGE_ENGINE");
  if (env == nullptr || *env == '\0') return nullptr;
  std::string spec(env);
  if (spec == "memory") return nullptr;
  if (spec.rfind("paged", 0) != 0) return nullptr;
  PagedEngineOptions options;
  options.wipe_on_close = true;
  // "paged[:pool_pages[:page_bytes]]"
  size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    std::string rest = spec.substr(colon + 1);
    size_t second = rest.find(':');
    std::optional<int64_t> pool =
        ParseInt64(second == std::string::npos ? rest
                                               : rest.substr(0, second));
    if (pool.has_value() && *pool > 0) {
      options.pool_pages = static_cast<uint64_t>(*pool);
    }
    if (second != std::string::npos) {
      std::optional<int64_t> bytes = ParseInt64(rest.substr(second + 1));
      if (bytes.has_value() && *bytes > 0) {
        options.page_bytes = static_cast<uint64_t>(*bytes);
      }
    }
  }
  const char* tmpdir = std::getenv("TMPDIR");
  std::string root = (tmpdir != nullptr && *tmpdir != '\0')
                         ? std::string(tmpdir)
                         : std::string("/tmp");
  std::string pattern = root + "/gsv-paged-XXXXXX";
  std::vector<char> buf(pattern.begin(), pattern.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) return nullptr;
  options.dir = buf.data();
  return MakePagedEngineFactory(std::move(options));
}

bool QueryPagedEngineStatus(const StorageEngine* engine,
                            PagedEngineStatus* status) {
  const auto* paged = dynamic_cast<const PagedEngine*>(engine);
  if (paged == nullptr) return false;
  paged->FillStatus(status);
  return true;
}

namespace {

// Decodes a "k<key>" field; false when the prefix is missing.
bool DecodeKeyField(std::string_view field, std::string* key) {
  if (field.empty() || field[0] != 'k') return false;
  *key = std::string(field.substr(1));
  return true;
}

std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

}  // namespace

Result<PageDirectory> ReadPageDirectory(const std::string& dir) {
  std::ifstream in(dir + "/" + kPageDirName);
  if (!in.is_open()) {
    return Status::NotFound("no PAGEDIR in " + dir);
  }
  std::string body, line;
  PageDirectory directory;
  bool saw_trailer = false;
  while (std::getline(in, line)) {
    if (line.rfind("crc ", 0) == 0) {
      std::optional<int64_t> want = ParseInt64(std::string_view(line).substr(4));
      if (!want.has_value()) {
        return Status::DataLoss("PAGEDIR: malformed crc trailer");
      }
      if (Crc32(body.data(), body.size()) !=
          static_cast<uint32_t>(*want)) {
        return Status::DataLoss("PAGEDIR: trailer CRC mismatch");
      }
      saw_trailer = true;
      break;
    }
    body += line;
    body += '\n';
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> f = SplitFields(line);
    if (f.empty()) continue;
    if (f[0] == "meta") {
      for (size_t i = 1; i + 1 < f.size(); i += 2) {
        std::optional<int64_t> v = ParseInt64(f[i + 1]);
        if (!v.has_value()) continue;
        if (f[i] == "page_bytes") directory.page_bytes = *v;
        if (f[i] == "eof_slots") directory.eof_slots = *v;
      }
      continue;
    }
    if (f[0] != "page") {
      return Status::DataLoss("PAGEDIR: unknown record '" + line + "'");
    }
    if (f.size() < 12) {
      return Status::DataLoss("PAGEDIR: short page record '" + line + "'");
    }
    PageDirEntry entry;
    auto num = [&](size_t idx, auto* out) {
      std::optional<int64_t> v = ParseInt64(f[idx]);
      if (v.has_value()) *out = static_cast<std::decay_t<decltype(*out)>>(*v);
      return v.has_value();
    };
    bool ok = num(1, &entry.page_id) && num(3, &entry.slot_start) &&
              num(4, &entry.slot_count) && num(5, &entry.payload_bytes) &&
              num(6, &entry.crc) && num(7, &entry.lsn) &&
              num(8, &entry.objects) &&
              DecodeKeyField(f[2], &entry.min_key) &&
              DecodeKeyField(f[9], &entry.first_oid) &&
              DecodeKeyField(f[10], &entry.last_oid);
    entry.resident = f[11] == "resident";
    if (!ok) {
      return Status::DataLoss("PAGEDIR: malformed page record '" + line +
                              "'");
    }
    directory.pages.push_back(std::move(entry));
  }
  if (!saw_trailer) {
    return Status::DataLoss("PAGEDIR: missing crc trailer");
  }
  return directory;
}

Status VerifyPagedImage(const std::string& dir, std::ostream* out) {
  GSV_ASSIGN_OR_RETURN(PageDirectory directory, ReadPageDirectory(dir));
  std::ifstream pages(dir + "/" + kPageFileName, std::ios::binary);
  if (!pages.is_open()) {
    return Status::NotFound("no " + std::string(kPageFileName) + " in " +
                            dir);
  }
  Status result = Status::Ok();
  for (const PageDirEntry& entry : directory.pages) {
    std::string payload(entry.payload_bytes, '\0');
    pages.seekg(static_cast<std::streamoff>(entry.slot_start *
                                            directory.page_bytes));
    pages.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    bool ok = pages.gcount() == static_cast<std::streamsize>(payload.size());
    pages.clear();
    if (ok) ok = Crc32(payload.data(), payload.size()) == entry.crc;
    if (out != nullptr) {
      *out << "page " << entry.page_id << " range [" << entry.first_oid
           << " .. " << entry.last_oid << "] objects " << entry.objects
           << " slots " << entry.slot_start << "+" << entry.slot_count
           << " payload " << entry.payload_bytes << " lsn " << entry.lsn
           << " clean " << (entry.resident ? "resident" : "evicted")
           << " crc " << (ok ? "ok" : "MISMATCH") << "\n";
    }
    if (!ok && result.ok()) {
      result = Status::DataLoss("page " + std::to_string(entry.page_id) +
                                ": CRC mismatch");
    }
  }
  if (out != nullptr) {
    *out << directory.pages.size() << " page(s), page_bytes "
         << directory.page_bytes << ", eof_slots " << directory.eof_slots
         << ", " << (result.ok() ? "all CRCs ok" : result.message()) << "\n";
  }
  return result;
}

}  // namespace gsv
