#include "oem/page_codec.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace gsv {
namespace {

// ---- gsvz stream format -------------------------------------------------
//
//   varint raw_size
//   repeated groups:
//     control byte C (bit i set = item i is a literal byte)
//     8 items, LSB first; the final group may be short
//   literal item: 1 byte, copied verbatim
//   match item:   2 bytes: [offset >> 4] [((offset & 0xF) << 4) | (len - 3)]
//                 offset in [1, 4095] back from the output cursor,
//                 len in [3, 18]; matches may self-overlap (RLE).
//
// The window (4 KiB) deliberately fits inside the default 64 KiB page, and
// the 18-byte match cap keeps the matcher a cheap hash-chain walk: page
// encode sits on the background writeback thread, decode on the fault
// path, so both lean simple over maximal ratio.

constexpr size_t kWindow = 4096;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 18;
constexpr int kHashBits = 13;
constexpr int kMaxChain = 32;  // positions probed per emitted token

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(0x80 | (value & 0x7F)));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(std::string_view in, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(in[*pos]);
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline uint32_t Hash3(const uint8_t* p) {
  // Multiplicative hash of 3 bytes down to kHashBits.
  uint32_t v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

class IdentityCodec final : public PageCodec {
 public:
  uint8_t id() const override { return 0; }
  const char* name() const override { return "identity"; }
  std::string Encode(std::string_view raw) const override {
    return std::string(raw);
  }
  Result<std::string> Decode(std::string_view stored) const override {
    return std::string(stored);
  }
};

class GsvzCodec final : public PageCodec {
 public:
  uint8_t id() const override { return 1; }
  const char* name() const override { return "gsvz"; }

  std::string Encode(std::string_view raw) const override {
    std::string out;
    out.reserve(raw.size() / 2 + 16);
    PutVarint(&out, raw.size());
    if (raw.empty()) return out;

    const uint8_t* data = reinterpret_cast<const uint8_t*>(raw.data());
    std::vector<int32_t> head(size_t{1} << kHashBits, -1);
    std::vector<int32_t> chain(raw.size(), -1);

    std::string group;        // up to 8 encoded items
    uint8_t control = 0;      // literal bits for the pending group
    int items = 0;
    auto flush_group = [&] {
      if (items == 0) return;
      out.push_back(static_cast<char>(control));
      out.append(group);
      group.clear();
      control = 0;
      items = 0;
    };

    size_t pos = 0;
    while (pos < raw.size()) {
      size_t best_len = 0;
      size_t best_offset = 0;
      if (pos + kMinMatch <= raw.size()) {
        uint32_t h = Hash3(data + pos);
        int32_t candidate = head[h];
        int probes = kMaxChain;
        const size_t limit = std::min(kMaxMatch, raw.size() - pos);
        while (candidate >= 0 && probes-- > 0) {
          const size_t offset = pos - static_cast<size_t>(candidate);
          if (offset >= kWindow) break;  // chain only gets older
          size_t len = 0;
          while (len < limit && data[candidate + len] == data[pos + len]) {
            ++len;
          }
          if (len > best_len) {
            best_len = len;
            best_offset = offset;
            if (len == limit) break;
          }
          candidate = chain[candidate];
        }
      }

      if (best_len >= kMinMatch) {
        group.push_back(static_cast<char>(best_offset >> 4));
        group.push_back(static_cast<char>(((best_offset & 0xF) << 4) |
                                          (best_len - kMinMatch)));
        ++items;
        // Index every covered position so later matches can start inside
        // this one.
        const size_t end = pos + best_len;
        while (pos < end) {
          if (pos + kMinMatch <= raw.size()) {
            uint32_t h = Hash3(data + pos);
            chain[pos] = head[h];
            head[h] = static_cast<int32_t>(pos);
          }
          ++pos;
        }
      } else {
        control |= static_cast<uint8_t>(1u << items);
        group.push_back(static_cast<char>(data[pos]));
        ++items;
        if (pos + kMinMatch <= raw.size()) {
          uint32_t h = Hash3(data + pos);
          chain[pos] = head[h];
          head[h] = static_cast<int32_t>(pos);
        }
        ++pos;
      }
      if (items == 8) flush_group();
    }
    flush_group();
    return out;
  }

  Result<std::string> Decode(std::string_view stored) const override {
    size_t pos = 0;
    uint64_t raw_size = 0;
    if (!GetVarint(stored, &pos, &raw_size)) {
      return Status::DataLoss("gsvz: truncated size header");
    }
    std::string out;
    out.reserve(raw_size);
    while (out.size() < raw_size) {
      if (pos >= stored.size()) {
        return Status::DataLoss("gsvz: truncated stream");
      }
      uint8_t control = static_cast<uint8_t>(stored[pos++]);
      for (int item = 0; item < 8 && out.size() < raw_size; ++item) {
        if (control & (1u << item)) {
          if (pos >= stored.size()) {
            return Status::DataLoss("gsvz: truncated literal");
          }
          out.push_back(stored[pos++]);
        } else {
          if (pos + 1 >= stored.size()) {
            return Status::DataLoss("gsvz: truncated match");
          }
          const uint8_t b0 = static_cast<uint8_t>(stored[pos]);
          const uint8_t b1 = static_cast<uint8_t>(stored[pos + 1]);
          pos += 2;
          const size_t offset =
              (static_cast<size_t>(b0) << 4) | (b1 >> 4);
          const size_t len = (b1 & 0xF) + kMinMatch;
          if (offset == 0 || offset > out.size()) {
            return Status::DataLoss("gsvz: match offset outside window");
          }
          if (out.size() + len > raw_size) {
            return Status::DataLoss("gsvz: match overruns declared size");
          }
          // Byte-by-byte: matches may self-overlap.
          size_t src = out.size() - offset;
          for (size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
        }
      }
    }
    if (pos != stored.size()) {
      return Status::DataLoss("gsvz: trailing bytes after declared size");
    }
    return out;
  }
};

}  // namespace

const PageCodec* IdentityPageCodec() {
  static const IdentityCodec codec;
  return &codec;
}

const PageCodec* GsvzPageCodec() {
  static const GsvzCodec codec;
  return &codec;
}

const PageCodec* PageCodecById(uint8_t id) {
  switch (id) {
    case 0:
      return IdentityPageCodec();
    case 1:
      return GsvzPageCodec();
    default:
      return nullptr;
  }
}

Result<const PageCodec*> PageCodecByName(std::string_view name) {
  if (name == "identity") return IdentityPageCodec();
  if (name == "gsvz" || name == "compressed") return GsvzPageCodec();
  return Status::InvalidArgument("unknown page codec '" + std::string(name) +
                                 "' (known: identity, compressed/gsvz)");
}

}  // namespace gsv
