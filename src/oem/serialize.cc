#include "oem/serialize.h"

#include <algorithm>
#include <string_view>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace gsv {
namespace {

std::string EscapeString(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

// Parses a quoted string starting at (*pos); advances *pos past it.
Result<std::string> UnescapeString(const std::string& line, size_t* pos) {
  if (*pos >= line.size() || line[*pos] != '"') {
    return Status::InvalidArgument("expected '\"' in: " + line);
  }
  std::string out;
  for (size_t i = *pos + 1; i < line.size(); ++i) {
    char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) {
        return Status::InvalidArgument("dangling escape in: " + line);
      }
      char next = line[++i];
      out += next == 'n' ? '\n' : next;
    } else if (c == '"') {
      *pos = i + 1;
      return out;
    } else {
      out += c;
    }
  }
  return Status::InvalidArgument("unterminated string in: " + line);
}

// Splits on runs of spaces, no empty tokens. The views alias `text`, so
// callers must keep the line alive while using them; the checkpoint/cache
// load path parses hundreds of thousands of tokens, and a per-token
// std::string (let alone a per-line istringstream) dominates restart time.
std::vector<std::string_view> Tokens(std::string_view text) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t' ||
                               text[i] == '\r')) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t' &&
           text[i] != '\r') {
      ++i;
    }
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

}  // namespace

std::string EncodeObjectRecord(const Object& object) {
  std::ostringstream out;
  out << "obj " << object.oid().str() << ' ' << object.label() << ' ';
  switch (object.type()) {
    case ValueType::kInt:
      out << "int " << object.value().AsInt();
      break;
    case ValueType::kReal:
      out << "real " << object.value().AsReal();
      break;
    case ValueType::kString:
      out << "string " << EscapeString(object.value().AsString());
      break;
    case ValueType::kBool:
      out << "bool " << (object.value().AsBool() ? "true" : "false");
      break;
    case ValueType::kSet: {
      out << "set";
      for (const Oid& child : object.children()) {
        out << ' ' << child.str();
      }
      break;
    }
  }
  return out.str();
}

Result<Object> DecodeObjectRecord(const std::string& line) {
  // obj <oid> <label> <type> <payload...>
  std::vector<std::string_view> head =
      Tokens(std::string_view(line).substr(0, line.find('"')));
  if (head.size() < 4 || head[0] != "obj") {
    return Status::InvalidArgument("malformed object record");
  }
  const Oid oid(head[1]);
  std::string label(head[2]);
  const std::string_view type = head[3];
  if (type == "int") {
    if (head.size() != 5) {
      return Status::InvalidArgument("int record needs one value");
    }
    std::optional<int64_t> value = ParseInt64(head[4]);
    if (!value.has_value()) {
      return Status::InvalidArgument("bad integer '" + std::string(head[4]) +
                                     "'");
    }
    return Object(oid, std::move(label), Value::Int(*value));
  }
  if (type == "real") {
    if (head.size() != 5) {
      return Status::InvalidArgument("real record needs one value");
    }
    std::optional<double> value = ParseDouble(head[4]);
    if (!value.has_value()) {
      return Status::InvalidArgument("bad real '" + std::string(head[4]) +
                                     "'");
    }
    return Object(oid, std::move(label), Value::Real(*value));
  }
  if (type == "bool") {
    if (head.size() != 5) {
      return Status::InvalidArgument("bool record needs one value");
    }
    return Object(oid, std::move(label), Value::Bool(head[4] == "true"));
  }
  if (type == "string") {
    size_t pos = line.find('"');
    if (pos == std::string::npos) {
      return Status::InvalidArgument("string record needs quotes");
    }
    GSV_ASSIGN_OR_RETURN(std::string text, UnescapeString(line, &pos));
    return Object(oid, std::move(label), Value::Str(std::move(text)));
  }
  if (type == "set") {
    std::vector<Oid> children;
    children.reserve(head.size() - 4);
    for (size_t i = 4; i < head.size(); ++i) {
      children.push_back(Oid(head[i]));
    }
    return Object(oid, std::move(label), Value::SetOf(std::move(children)));
  }
  return Status::InvalidArgument("unknown type '" + std::string(type) + "'");
}

Status WriteStore(const ObjectStore& store, std::ostream& out) {
  out << "# gsview store: " << store.size() << " objects\n";
  store.ScanInOrder([&](const Object& object) {
    out << EncodeObjectRecord(object) << '\n';
  });
  for (const std::string& name : store.DatabaseNames()) {
    out << "db " << name << ' ' << store.DatabaseOid(name).str() << '\n';
  }
  if (!out.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Status ReadStore(std::istream& in, ObjectStore* store) {
  std::string line;
  size_t line_number = 0;
  size_t objects_loaded = 0;
  while (std::getline(in, line)) {
    ++line_number;
    auto fail = [&](const std::string& message) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + message);
    };
    if (line.empty() || line[0] == '#') continue;

    if (line.rfind("obj ", 0) == 0) {
      Result<Object> object = DecodeObjectRecord(line);
      if (!object.ok()) return fail(object.status().message());
      GSV_RETURN_IF_ERROR(store->Put(std::move(object).value()));
      // Bulk load is a quiescent boundary every stretch of records: the
      // caller holds no object pointers mid-load, so a bounded-pool engine
      // can evict back to budget instead of materializing the whole image.
      if (++objects_loaded % 2048 == 0) store->StorageSafePoint();
    } else if (line.rfind("db ", 0) == 0) {
      std::vector<std::string_view> head = Tokens(line);
      if (head.size() != 3) return fail("malformed db record");
      GSV_RETURN_IF_ERROR(
          store->RegisterDatabase(std::string(head[1]), Oid(head[2])));
    } else {
      return fail("unknown record '" + line + "'");
    }
  }
  return Status::Ok();
}

Status SaveStoreToFile(const ObjectStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  return WriteStore(store, out);
}

Status LoadStoreFromFile(const std::string& path, ObjectStore* store) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return ReadStore(in, store);
}

std::string StoreToString(const ObjectStore& store) {
  std::ostringstream out;
  (void)WriteStore(store, out);
  return out.str();
}

Status StoreFromString(const std::string& text, ObjectStore* store) {
  std::istringstream in(text);
  return ReadStore(in, store);
}

}  // namespace gsv
