#include "oem/oid.h"

// Oid is header-only; this file exists so every module has a .cc anchor
// (keeps the library layout uniform and link-time symbols predictable).
namespace gsv {}  // namespace gsv
