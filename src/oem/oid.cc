#include "oem/oid.h"

#include <algorithm>
#include <utility>

namespace gsv {

void SortOidsLexicographic(std::vector<Oid>* oids) {
  // Below this size the decoration allocation costs more than the repeated
  // str() lookups it saves.
  constexpr size_t kDecorateThreshold = 16;
  if (oids->size() < kDecorateThreshold) {
    std::sort(oids->begin(), oids->end());
    return;
  }
  std::vector<std::pair<std::string_view, uint32_t>> decorated;
  decorated.reserve(oids->size());
  for (const Oid& oid : *oids) decorated.emplace_back(oid.str(), oid.id());
  std::sort(decorated.begin(), decorated.end());
  oids->clear();
  for (const auto& [repr, id] : decorated) oids->push_back(Oid::FromId(id));
}

}  // namespace gsv
