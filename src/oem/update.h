#ifndef GSV_OEM_UPDATE_H_
#define GSV_OEM_UPDATE_H_

#include <string>

#include "oem/oid.h"
#include "oem/value.h"

namespace gsv {

// The three basic updates of a GSDB (paper §4.1).
enum class UpdateKind {
  kInsert = 0,  // insert(N1,N2): add edge N1 -> N2
  kDelete,      // delete(N1,N2): remove edge N1 -> N2
  kModify,      // modify(N, old, new): change an atomic object's value
};

const char* UpdateKindName(UpdateKind kind);

// One applied basic update, as seen by update listeners and (in the
// warehouse architecture) reported by source monitors.
struct Update {
  UpdateKind kind = UpdateKind::kInsert;

  // insert/delete: the edge endpoints. modify: target is in `parent`.
  Oid parent;  // N1, or N for modify
  Oid child;   // N2; invalid for modify

  // modify only: the value before and after.
  Value old_value;
  Value new_value;

  static Update Insert(Oid parent, Oid child) {
    Update u;
    u.kind = UpdateKind::kInsert;
    u.parent = std::move(parent);
    u.child = std::move(child);
    return u;
  }
  static Update Delete(Oid parent, Oid child) {
    Update u;
    u.kind = UpdateKind::kDelete;
    u.parent = std::move(parent);
    u.child = std::move(child);
    return u;
  }
  static Update Modify(Oid target, Value old_value, Value new_value) {
    Update u;
    u.kind = UpdateKind::kModify;
    u.parent = std::move(target);
    u.old_value = std::move(old_value);
    u.new_value = std::move(new_value);
    return u;
  }

  std::string ToString() const;
};

class ObjectStore;

// Observer of applied updates. The store invokes listeners *after* applying
// each update, matching the paper's "the algorithm uses the base databases
// right after the triggering update and before any further updates" (§4.3).
class UpdateListener {
 public:
  virtual ~UpdateListener() = default;
  virtual void OnUpdate(const ObjectStore& store, const Update& update) = 0;
};

}  // namespace gsv

#endif  // GSV_OEM_UPDATE_H_
