#ifndef GSV_OEM_OID_H_
#define GSV_OEM_OID_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

namespace gsv {

// A universally unique object identifier (paper §2).
//
// OIDs are opaque strings. Materialized views give each delegate a *semantic*
// OID formed by concatenating the view OID and the base OID with a dot
// (paper §3.2: the delegate of P1 in view MV is "MV.P1"). So that delegate
// OIDs can be split unambiguously — including for views over views, where a
// base OID may itself be a delegate OID ("MV2.MV1.P1") — view OIDs must not
// contain '.'; MaterializedView enforces this at creation.
class Oid {
 public:
  // An invalid (empty) OID; valid() is false.
  Oid() = default;

  explicit Oid(std::string repr) : repr_(std::move(repr)) {}
  explicit Oid(const char* repr) : repr_(repr) {}

  // The delegate OID of `base` inside view `view`: "<view>.<base>".
  static Oid Delegate(const Oid& view, const Oid& base) {
    return Oid(view.repr_ + "." + base.repr_);
  }

  bool valid() const { return !repr_.empty(); }
  const std::string& str() const { return repr_; }

  // True if this OID has the "<view>.<rest>" shape for the given view.
  bool IsDelegateOf(const Oid& view) const {
    return repr_.size() > view.repr_.size() + 1 &&
           repr_.compare(0, view.repr_.size(), view.repr_) == 0 &&
           repr_[view.repr_.size()] == '.';
  }

  // For a delegate OID, the base OID it was derived from ("MV.P1" -> "P1").
  // Requires IsDelegateOf(view).
  Oid BaseIn(const Oid& view) const {
    return Oid(repr_.substr(view.repr_.size() + 1));
  }

  bool operator==(const Oid& other) const { return repr_ == other.repr_; }
  bool operator!=(const Oid& other) const { return repr_ != other.repr_; }
  bool operator<(const Oid& other) const { return repr_ < other.repr_; }

 private:
  std::string repr_;
};

struct OidHash {
  size_t operator()(const Oid& oid) const {
    return std::hash<std::string>()(oid.str());
  }
};

}  // namespace gsv

#endif  // GSV_OEM_OID_H_
