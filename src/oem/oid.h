#ifndef GSV_OEM_OID_H_
#define GSV_OEM_OID_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "oem/oid_table.h"

namespace gsv {

// A universally unique object identifier (paper §2).
//
// OIDs are opaque strings, interned once in the process-wide OidTable: an
// Oid holds only the dense uint32_t id, so copies are trivial, equality and
// hashing are integer operations, and the string form is touched only at
// API boundaries (parsing, serialization) and for lexicographic ordering.
//
// Materialized views give each delegate a *semantic* OID formed by
// concatenating the view OID and the base OID with a dot (paper §3.2: the
// delegate of P1 in view MV is "MV.P1"). So that delegate OIDs can be split
// unambiguously — including for views over views, where a base OID may
// itself be a delegate OID ("MV2.MV1.P1") — view OIDs must not contain '.';
// MaterializedView enforces this at creation.
class Oid {
 public:
  // An invalid (empty) OID; valid() is false.
  Oid() = default;

  explicit Oid(std::string_view repr) : id_(OidTable::Global().Intern(repr)) {}
  explicit Oid(const std::string& repr) : Oid(std::string_view(repr)) {}
  explicit Oid(const char* repr) : Oid(std::string_view(repr)) {}

  // The delegate OID of `base` inside view `view`: "<view>.<base>".
  static Oid Delegate(const Oid& view, const Oid& base) {
    return FromId(OidTable::Global().InternDelegate(view.id_, base.id_));
  }

  // Wraps an id previously obtained from id() / OidTable::Intern.
  static Oid FromId(uint32_t id) {
    Oid oid;
    oid.id_ = id;
    return oid;
  }

  bool valid() const { return id_ != 0; }
  const std::string& str() const { return OidTable::Global().String(id_); }
  // The dense interned id (0 for the invalid OID).
  uint32_t id() const { return id_; }

  // True if this OID has the "<view>.<rest>" shape for the given view.
  bool IsDelegateOf(const Oid& view) const {
    const std::string_view repr = str();
    const std::string_view prefix = view.str();
    return repr.size() > prefix.size() + 1 &&
           repr.compare(0, prefix.size(), prefix) == 0 &&
           repr[prefix.size()] == '.';
  }

  // For a delegate OID, the base OID it was derived from ("MV.P1" -> "P1").
  // Requires IsDelegateOf(view).
  Oid BaseIn(const Oid& view) const { return Oid(BaseView(view)); }

  // Allocation-free form of BaseIn for read-only callers: a view of the
  // base part, valid for the life of the process (interned strings are
  // immortal). Requires IsDelegateOf(view).
  std::string_view BaseView(const Oid& view) const {
    return std::string_view(str()).substr(view.str().size() + 1);
  }

  bool operator==(const Oid& other) const { return id_ == other.id_; }
  bool operator!=(const Oid& other) const { return id_ != other.id_; }
  // Lexicographic, matching the on-disk and user-visible OID ordering.
  bool operator<(const Oid& other) const {
    return id_ != other.id_ && str() < other.str();
  }

 private:
  uint32_t id_ = 0;
};

struct OidHash {
  size_t operator()(const Oid& oid) const {
    uint64_t x = oid.id();
    x *= 0x9E3779B97F4A7C15ull;  // Fibonacci hashing spreads the dense ids
    return static_cast<size_t>(x ^ (x >> 32));
  }
};

// Sorts `oids` into the canonical lexicographic order (Oid::operator<).
// Large inputs are sorted decorated with their interned string views, which
// avoids the two table lookups Oid::operator< pays on every comparison —
// the difference is measurable when index probes materialize wide results.
void SortOidsLexicographic(std::vector<Oid>* oids);

}  // namespace gsv

#endif  // GSV_OEM_OID_H_
