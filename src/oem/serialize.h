#ifndef GSV_OEM_SERIALIZE_H_
#define GSV_OEM_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// Plain-text persistence for GSDBs in (a machine-readable variant of) the
// paper's object notation. Each line is one record:
//
//   obj <oid> <label> int <value>
//   obj <oid> <label> real <value>
//   obj <oid> <label> string "<escaped>"
//   obj <oid> <label> bool true|false
//   obj <oid> <label> set <child> <child> ...
//   db  <name> <oid>
//
// OIDs and labels are written verbatim and therefore must not contain
// whitespace (true throughout this library); strings are quoted with
// backslash escapes for '"', '\' and newline. Lines starting with '#' and
// blank lines are ignored on load.

// One object as its canonical record line ("obj ...", no trailing
// newline). This is both the checkpoint line format and the unit the paged
// storage engine packs into pages, so a page image is a byte slice of the
// store's serialized form.
std::string EncodeObjectRecord(const Object& object);

// Parses one record produced by EncodeObjectRecord.
Result<Object> DecodeObjectRecord(const std::string& line);

// Writes every object (streamed in OID order — a paged store is captured
// without materializing it) and every database registration.
Status WriteStore(const ObjectStore& store, std::ostream& out);

// Parses records into `store` (which may already hold objects; duplicate
// OIDs fail with kAlreadyExists). Children may be forward references.
Status ReadStore(std::istream& in, ObjectStore* store);

// Convenience: file round trips.
Status SaveStoreToFile(const ObjectStore& store, const std::string& path);
Status LoadStoreFromFile(const std::string& path, ObjectStore* store);

// String round trips (testing, tooling).
std::string StoreToString(const ObjectStore& store);
Status StoreFromString(const std::string& text, ObjectStore* store);

}  // namespace gsv

#endif  // GSV_OEM_SERIALIZE_H_
