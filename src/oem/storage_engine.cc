#include "oem/storage_engine.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace gsv {

namespace {

// The original ObjectStore backing, verbatim: one node-stable hash table.
// Pointers survive safe points and unrelated mutations; every operation is
// O(1) expected. The whole store lives in RAM.
class InMemoryEngine final : public StorageEngine {
 public:
  const char* EngineName() const override { return "memory"; }

  const Object* Get(const Oid& oid) override {
    auto it = objects_.find(oid);
    return it == objects_.end() ? nullptr : &it->second;
  }

  Object* GetMutable(const Oid& oid) override {
    auto it = objects_.find(oid);
    return it == objects_.end() ? nullptr : &it->second;
  }

  Status Put(Object object) override {
    const Oid oid = object.oid();
    auto [it, inserted] = objects_.emplace(oid, std::move(object));
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("object " + oid.str() + " already exists");
    }
    return Status::Ok();
  }

  Status Erase(const Oid& oid) override {
    if (objects_.erase(oid) == 0) {
      return Status::NotFound("object " + oid.str() + " does not exist");
    }
    return Status::Ok();
  }

  size_t Size() const override { return objects_.size(); }

  void ScanInOrder(const std::function<void(const Object&)>& fn) override {
    std::vector<const Object*> sorted;
    sorted.reserve(objects_.size());
    for (const auto& [oid, object] : objects_) sorted.push_back(&object);
    std::sort(sorted.begin(), sorted.end(),
              [](const Object* a, const Object* b) {
                return a->oid() < b->oid();  // lexicographic (Oid contract)
              });
    for (const Object* object : sorted) fn(*object);
  }

  void ScanUnordered(const std::function<void(const Object&)>& fn) override {
    for (const auto& [oid, object] : objects_) fn(object);
  }

 private:
  std::unordered_map<Oid, Object, OidHash> objects_;
};

}  // namespace

std::unique_ptr<StorageEngine> MakeInMemoryEngine() {
  return std::make_unique<InMemoryEngine>();
}

}  // namespace gsv
