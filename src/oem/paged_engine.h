#ifndef GSV_OEM_PAGED_ENGINE_H_
#define GSV_OEM_PAGED_ENGINE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "oem/storage_engine.h"
#include "util/status.h"

namespace gsv {

// The beyond-RAM storage engine (DESIGN.md §4h): objects live in
// fixed-size on-disk pages under a bounded buffer pool, so a store's
// footprint is capped by `pool_pages * page_bytes` of RAM no matter how
// large the graph grows.
//
// ## Page format
//
// A page's payload is a run of canonical checkpoint record lines
// (serialize.h EncodeObjectRecord, '\n'-terminated) for a contiguous
// lexicographic OID range — the PR 4 checkpoint encoding IS the page
// image, so pages are human-readable, CRC-checkable with the WAL's Crc32,
// and an in-order page walk reproduces the checkpoint byte-for-byte. All
// pages live in one file (`pages.gsp`) carved into `page_bytes` slots; a
// page whose payload outgrows one slot (a single huge set object, say)
// occupies a multi-slot extent. Freed extents go on a first-fit free list
// (no coalescing — pages are scratch, rebuilt from checkpoint on every
// open, so fragmentation dies with the process).
//
// ## Directory
//
// `Flush()` writes every dirty page plus `PAGEDIR`: one line per page
// (id, min key, extent, payload bytes, CRC, LSN, object count, OID range)
// with a whole-file CRC trailer, atomically via tmp+rename. `wal_inspect
// pages` reads it offline and re-verifies every page CRC against
// `pages.gsp`.
//
// ## Caching & eviction
//
// Resident pages form a pool with pin counts and second-chance (clock)
// eviction. Two rules keep the store's pointer contract honest — a
// pointer from Get() stays valid until the object's own erase/re-put or
// the next SafePoint():
//   1. a frame touched since the last SafePoint() is never evicted
//      mid-epoch (only "cold" frames — untouched since before the last
//      safe point, whose pointers are already invalid — may be dropped
//      when a fault overflows the pool);
//   2. SafePoint() advances the epoch and runs the clock back down to
//      budget, writing dirty victims out first.
// The pool may therefore overshoot its budget between safe points by the
// epoch's working set; callers bound that by placing safe points at their
// natural quiescent boundaries (drain ends, checkpoint writes, bulk-load
// strides). Scans pin the frame under the cursor and release pages they
// themselves faulted, so a full scan of a beyond-RAM store stays within
// budget.
//
// The engine's home directory is scratch: opening always starts empty
// (durable truth is the WAL + checkpoints; recovery re-seeds through the
// same bulk-load path as a fresh store).
struct PagedEngineOptions {
  std::string dir;                      // home (created; contents replaced)
  uint64_t page_bytes = 64 * 1024;      // slot size = split target
  uint64_t pool_pages = 64;             // buffer-pool budget, in slots
  bool wipe_on_close = false;           // delete the home in the destructor
};

std::unique_ptr<StorageEngine> MakePagedEngine(PagedEngineOptions options);

// A factory stamping out independent engines (one per shard / aux cache):
// call n gets `<options.dir>/eng-<n>` as its home.
StorageEngineFactory MakePagedEngineFactory(PagedEngineOptions options);

// Reads GSV_STORAGE_ENGINE: "paged", "paged:<pool_pages>", or
// "paged:<pool_pages>:<page_bytes>" yield a factory over a fresh
// mkdtemp scratch root (wiped on engine close); unset/empty/"memory"
// yields nullptr (the in-memory default). CI points the existing
// recovery/replication suites at the paged backend through this.
StorageEngineFactory MakeEngineFactoryFromEnv();

// ---- Introspection (exp19, wal_inspect) ----

struct PagedEngineStatus {
  std::string dir;
  uint64_t page_bytes = 0;
  uint64_t pool_pages = 0;        // budget
  uint64_t pages_total = 0;       // pages that exist (resident or not)
  uint64_t pages_resident = 0;    // loaded frames right now
  uint64_t pages_pinned = 0;
  uint64_t objects = 0;
  uint64_t disk_slots = 0;        // slots allocated in pages.gsp
  uint64_t disk_payload_bytes = 0;  // sum of on-disk page payloads
  Status io_error;                // sticky first I/O failure, if any
};

// Fills `status` when `engine` is a PagedEngine; false otherwise.
bool QueryPagedEngineStatus(const StorageEngine* engine,
                            PagedEngineStatus* status);

// One PAGEDIR line, as read back by tooling.
struct PageDirEntry {
  uint64_t page_id = 0;
  std::string min_key;     // routing lower bound ("" on the first page)
  uint64_t slot_start = 0;
  uint32_t slot_count = 0;
  uint32_t payload_bytes = 0;
  uint32_t crc = 0;
  uint64_t lsn = 0;
  uint64_t objects = 0;
  std::string first_oid;   // "" when the page is empty
  std::string last_oid;
  bool resident = false;   // was the frame pooled when PAGEDIR was written
};

struct PageDirectory {
  uint64_t page_bytes = 0;
  uint64_t eof_slots = 0;
  std::vector<PageDirEntry> pages;
};

// Parses `<dir>/PAGEDIR` (validating its trailer CRC).
Result<PageDirectory> ReadPageDirectory(const std::string& dir);

// Dumps the page directory to `out` (when non-null) and re-verifies every
// page's CRC against pages.gsp. kDataLoss on any mismatch.
Status VerifyPagedImage(const std::string& dir, std::ostream* out);

}  // namespace gsv

#endif  // GSV_OEM_PAGED_ENGINE_H_
