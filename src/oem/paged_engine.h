#ifndef GSV_OEM_PAGED_ENGINE_H_
#define GSV_OEM_PAGED_ENGINE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "oem/storage_engine.h"
#include "util/status.h"

namespace gsv {

// The beyond-RAM storage engine (DESIGN.md §4h/§4i): objects live in
// fixed-size on-disk pages under a bounded buffer pool, so a store's
// footprint is capped by `pool_pages * page_bytes` of RAM no matter how
// large the graph grows.
//
// ## Page format
//
// A page's logical payload is a run of canonical checkpoint record lines
// (serialize.h EncodeObjectRecord, '\n'-terminated) for a contiguous
// lexicographic OID range — the PR 4 checkpoint encoding IS the page
// image, so an in-order page walk reproduces the checkpoint
// byte-for-byte. Before a payload reaches disk it passes through the
// engine's PageCodec (oem/page_codec.h): identity stores the text
// verbatim; the "gsvz" codec LZSS-compresses it to well under 0.6x. The
// per-page CRC is always computed over the *stored* bytes, so cold files
// audit without decoding. All pages live in one file (`pages.gsp`) carved
// into `page_bytes` slots; a page whose stored payload outgrows one slot
// occupies a multi-slot extent. Freed extents return to an
// address-ordered, coalescing first-fit free list: adjacent extents merge
// on free, and runs that reach the file tail shrink it, so long-lived
// homes stop fragmenting.
//
// ## Background writeback (§4i)
//
// With `background_writeback` (the default), dirty pages never serialize,
// compress, or write on the caller's path. Evicting a dirty frame moves
// its object map into a writeback job on a bounded queue and returns; a
// dedicated thread serializes, encodes, CRCs, and writes the job. A fault
// on a page whose job is still queued *steals the map back* (the job is
// canceled, the frame is dirty again — no I/O at all); a fault on a
// running job copies the job's content (jobs are immutable once started).
// Flush() enqueues every remaining dirty page and blocks on a ticket
// watermark until the queue drains, then writes PAGEDIR — so the on-disk
// image after Flush is byte-identical with synchronous writeback, and the
// PR 4 checkpoint/recovery contract is untouched (durable truth is the
// WAL + checkpoints; the home stays scratch). When the queue is full the
// enqueuer falls back to a synchronous inline write instead of blocking,
// which bounds both memory and latency without a deadlock-prone wait.
//
// ## Pointer swizzling (§4i)
//
// Steady-state point reads skip the page-route (string-keyed map probe) +
// per-frame hash pair: a resident object's OID maps straight to its
// Object* (and owning frame) in a swizzle table keyed by the 4-byte
// interned OID. Entries are created on first access and unswizzled when
// the clock evicts the frame (or the object is erased / its frame
// splits). Hits and misses are metered in StoreMetrics and surface
// through WarehouseCosts and `explain`.
//
// ## Caching & eviction
//
// Resident pages form a pool with pin counts and second-chance (clock)
// eviction. Two rules keep the store's pointer contract honest — a
// pointer from Get() stays valid until the object's own erase/re-put or
// the next SafePoint():
//   1. a frame touched since the last SafePoint() is never evicted
//      mid-epoch (only "cold" frames — untouched since before the last
//      safe point, whose pointers are already invalid — may be dropped
//      when a fault overflows the pool);
//   2. SafePoint() advances the epoch and runs the clock back down to
//      budget; dirty victims enqueue for background writeback.
// The pool may therefore overshoot its budget between safe points by the
// epoch's working set; callers bound that by placing safe points at their
// natural quiescent boundaries (drain ends, checkpoint writes, bulk-load
// strides). Scans pin the frame under the cursor and release pages they
// themselves faulted, so a full scan of a beyond-RAM store stays within
// budget.
//
// The engine's home directory is scratch: opening always starts empty
// (durable truth is the WAL + checkpoints; recovery re-seeds through the
// same bulk-load path as a fresh store).
struct PagedEngineOptions {
  std::string dir;                      // home (created; contents replaced)
  uint64_t page_bytes = 64 * 1024;      // slot size = split target
  uint64_t pool_pages = 64;             // buffer-pool budget, in slots
  bool wipe_on_close = false;           // delete the home in the destructor
  // Page payload codec: "identity" (store raw text) or "compressed"/"gsvz"
  // (LZSS, oem/page_codec.h). Unknown names surface as a sticky engine
  // error on first use; ParseStorageEngineSpec rejects them up front.
  std::string codec = "identity";
  // Drain dirty pages on a dedicated writeback thread (see above). False
  // restores the PR 7 synchronous write-inside-eviction/Flush behavior
  // (E20 measures the difference; twin tests prove equivalence).
  bool background_writeback = true;
  // Cache resident objects' addresses keyed by OID so steady-state Get
  // skips the route+hash probe pair. False restores PR 7 routing.
  bool enable_swizzle = true;
  // Writeback queue bound (jobs). 0 = auto (max(4, pool_pages)). A full
  // queue makes the enqueuer write synchronously instead of blocking.
  uint64_t writeback_queue = 0;
  // Test hook: drop still-queued writeback jobs on destruction instead of
  // draining them — simulates a process kill mid-writeback. The home is
  // scratch, so recovery must not (and does not) depend on those writes.
  bool abandon_queue_on_close = false;
};

std::unique_ptr<StorageEngine> MakePagedEngine(PagedEngineOptions options);

// A factory stamping out independent engines (one per shard / aux cache):
// call n gets `<options.dir>/eng-<n>` as its home.
StorageEngineFactory MakePagedEngineFactory(PagedEngineOptions options);

// Parses a GSV_STORAGE_ENGINE spec:
//   "" | "memory"                          -> null factory (in-memory default)
//   "paged[:<pool>[:<bytes>[:<codec>]]]"   -> paged factory over a fresh
//                                             mkdtemp scratch root (wiped on
//                                             engine close)
// Strict: a malformed spec — unknown engine name, non-positive or
// non-numeric pool/bytes, unknown codec, trailing fields — is
// kInvalidArgument with a message naming the offending component, never a
// silent fall-back to defaults.
Result<StorageEngineFactory> ParseStorageEngineSpec(std::string_view spec);

// Reads GSV_STORAGE_ENGINE through ParseStorageEngineSpec. A malformed
// value prints the parse error to stderr and exits (a typo'd CI override
// must never silently run the wrong engine). Unset behaves like "".
StorageEngineFactory MakeEngineFactoryFromEnv();

// ---- Introspection (exp19/exp20, wal_inspect) ----

struct PagedEngineStatus {
  std::string dir;
  uint64_t page_bytes = 0;
  uint64_t pool_pages = 0;        // budget
  uint64_t pages_total = 0;       // pages that exist (resident or not)
  uint64_t pages_resident = 0;    // loaded frames right now
  uint64_t pages_pinned = 0;
  uint64_t objects = 0;
  uint64_t disk_slots = 0;        // slots allocated in pages.gsp
  uint64_t disk_payload_bytes = 0;  // sum of on-disk *stored* page payloads
  uint64_t disk_raw_bytes = 0;      // sum of pre-codec payload sizes
  std::string codec;              // codec name ("identity", "gsvz")
  // Free-list health (coalescing satellite).
  uint64_t free_slots = 0;          // slots on the free list right now
  uint64_t extent_merges = 0;       // adjacent free extents merged
  uint64_t slots_reclaimed = 0;     // slots trimmed off the file tail
  // Writeback-path health.
  uint64_t writeback_queue_peak = 0;  // deepest the job queue has been
  uint64_t writeback_steals = 0;      // faults served by canceling a job
  uint64_t writeback_sync_fallbacks = 0;  // inline writes on a full queue
  uint64_t swizzle_entries = 0;       // live swizzle-table entries
  Status io_error;                // sticky first I/O failure, if any
};

// Fills `status` when `engine` is a PagedEngine; false otherwise.
bool QueryPagedEngineStatus(const StorageEngine* engine,
                            PagedEngineStatus* status);

// One PAGEDIR line, as read back by tooling.
struct PageDirEntry {
  uint64_t page_id = 0;
  std::string min_key;     // routing lower bound ("" on the first page)
  uint64_t slot_start = 0;
  uint32_t slot_count = 0;
  uint32_t payload_bytes = 0;  // stored (post-codec) size; CRC covers this
  uint32_t raw_bytes = 0;      // pre-codec payload size
  uint32_t codec_id = 0;       // PageCodec::id() the payload was stored with
  uint32_t crc = 0;            // Crc32 over the stored bytes
  uint64_t lsn = 0;
  uint64_t objects = 0;
  std::string first_oid;   // "" when the page is empty
  std::string last_oid;
  bool resident = false;   // was the frame pooled when PAGEDIR was written
};

struct PageDirectory {
  uint64_t page_bytes = 0;
  uint64_t eof_slots = 0;
  std::string codec;             // engine-level codec name
  std::vector<PageDirEntry> pages;
};

// Parses `<dir>/PAGEDIR` (validating its trailer CRC).
Result<PageDirectory> ReadPageDirectory(const std::string& dir);

// Dumps the page directory to `out` (when non-null) and audits every page
// against pages.gsp: CRC over the stored bytes, then — when the codec is
// known — a decode check that the payload expands to exactly `raw_bytes`.
// Per-page lines include the codec id and the stored/raw ratio. kDataLoss
// on any CRC or decode mismatch, and on a codec id this build does not
// recognize (a cold file must never be silently misread).
Status VerifyPagedImage(const std::string& dir, std::ostream* out);

}  // namespace gsv

#endif  // GSV_OEM_PAGED_ENGINE_H_
