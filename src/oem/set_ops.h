#ifndef GSV_OEM_SET_OPS_H_
#define GSV_OEM_SET_OPS_H_

#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// The set operations of paper §2: "let S1 and S2 be two set objects. We
// define union(S1,S2) to be an object whose value is value(S1) ∪ value(S2),
// and define int(S1,S2) to be an object whose value is value(S1) ∩
// value(S2). We assume that these resulting objects have an arbitrary
// unique OID and take on the label of S1. These operations are mainly used
// to manipulate database objects and query answers."
//
// The caller supplies the fresh OID (this library never invents OIDs
// behind the caller's back); both inputs must be set objects in `store`.

Result<Oid> UnionObjects(ObjectStore* store, const Oid& s1, const Oid& s2,
                         const Oid& result_oid);

Result<Oid> IntersectObjects(ObjectStore* store, const Oid& s1,
                             const Oid& s2, const Oid& result_oid);

}  // namespace gsv

#endif  // GSV_OEM_SET_OPS_H_
