#include "replication/replica.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/view_definition.h"
#include "oem/serialize.h"
#include "replication/checksums.h"
#include "storage/recovery.h"
#include "warehouse/sharding.h"

namespace gsv {

namespace fs = std::filesystem;

namespace {

constexpr size_t kFrameHeader = 8;  // [u32 len][u32 crc] (wal.cc framing)
constexpr uint32_t kMaxPayload = 1u << 30;

uint32_t U32At(const std::string& data, size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[at + i])) << (8 * i);
  }
  return v;
}

}  // namespace

namespace {
ObjectStore::Options ReplicaStoreOptions(const StorageEngineFactory& factory) {
  ObjectStore::Options options;
  options.engine_factory = factory;
  return options;
}
}  // namespace

Replica::Replica(std::unique_ptr<LogTransport> transport,
                 ReplicaOptions options)
    : transport_(std::move(transport)), options_(std::move(options)) {
  store_ =
      std::make_unique<ObjectStore>(ReplicaStoreOptions(options_.engine_factory));
}

Replica::~Replica() = default;

// ---- Transport calls under the retry policy ----

Result<std::vector<TransportSegment>> Replica::ListRemote() {
  Result<std::vector<TransportSegment>> result =
      Status::Unavailable("replica: not attempted");
  Status status = RetryWithBackoff(options_.retry, [&]() {
    result = transport_->ListSegments();
    return result.ok() ? Status::Ok() : result.status();
  });
  if (!status.ok()) return status;
  return result;
}

Result<TransportChunk> Replica::ReadRemote(const std::string& segment,
                                           uint64_t offset,
                                           uint64_t max_bytes) {
  Result<TransportChunk> result = Status::Unavailable("replica: not attempted");
  Status status = RetryWithBackoff(options_.retry, [&]() {
    result = transport_->ReadSegment(segment, offset, max_bytes);
    return result.ok() ? Status::Ok() : result.status();
  });
  if (!status.ok()) return status;
  return result;
}

Result<std::string> Replica::FetchRemote(const std::string& name) {
  Result<std::string> result = Status::Unavailable("replica: not attempted");
  Status status = RetryWithBackoff(options_.retry, [&]() {
    result = transport_->FetchFile(name);
    return result.ok() ? Status::Ok() : result.status();
  });
  if (!status.ok()) return status;
  return result;
}

// ---- Startup / seeding ----

Status Replica::Start() {
  if (started_) return Status::Ok();
  if (options_.dir.empty()) {
    return Status::InvalidArgument("ReplicaOptions.dir is required");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return Status::Internal("replica: cannot create " + options_.dir + ": " +
                            ec.message());
  }

  // Follower crash recovery: durable local state (own checkpoint + the
  // committed mirror) rebuilds the follower without touching the
  // transport; tailing then resumes where the mirror ends.
  // The local FENCE remembers the highest epoch this home ever accepted
  // bytes from — it must outlive checkpoints that retire the mirrored
  // segments carrying the kEpoch records themselves.
  GSV_ASSIGN_OR_RETURN(FenceInfo local_fence, ReadFence(options_.dir));
  if (local_fence.epoch > max_epoch_seen_) {
    max_epoch_seen_ = local_fence.epoch;
    epoch_owner_ = local_fence.owner;
  }

  GSV_ASSIGN_OR_RETURN(RecoveryPlan plan, PlanRecovery(options_.dir));
  const bool has_local_state =
      plan.have_checkpoint || !plan.committed.empty() || !plan.tail.empty();
  if (has_local_state) {
    // A torn local tail (killed mid-mirror-append) truncates away; the
    // bytes were part of an un-acked group and will be refetched.
    GSV_RETURN_IF_ERROR(ApplyLogTruncation(options_.dir, plan));
    if (plan.have_checkpoint) {
      GSV_RETURN_IF_ERROR(AdoptCheckpoint(plan.checkpoint));
    }
    for (const WalRecord& record : plan.committed) {
      GSV_RETURN_IF_ERROR(ApplyRecord(record));
    }
    applied_lsn_ = plan.next_lsn - 1;
    watermarks_ = plan.watermarks;
    GSV_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> checkpoints,
                         ListCheckpoints(options_.dir));
    if (!checkpoints.empty()) {
      next_checkpoint_id_ = checkpoints.back().id + 1;
    }
    GSV_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                         ListWalSegments(options_.dir));
    if (!segments.empty()) {
      mirror_segment_ = segments.back().name;
      std::error_code size_ec;
      uintmax_t size = fs::file_size(segments.back().path, size_ec);
      if (size_ec) {
        return Status::Internal("replica: cannot stat " +
                                segments.back().path);
      }
      mirror_offset_ = static_cast<uint64_t>(size);
    } else {
      mirror_segment_.clear();
      mirror_offset_ = 0;
    }
    started_ = true;
    return Status::Ok();
  }

  // Fresh home: seed over the transport. `started_` flips only on
  // success, so a transient transport failure here is retryable — call
  // Start() again (a partial seed is wiped and redone).
  GSV_RETURN_IF_ERROR(ReseedFromPrimary());
  started_ = true;
  return Status::Ok();
}

Status Replica::NoteEpoch(uint64_t epoch, const std::string& owner) {
  if (epoch <= max_epoch_seen_) return Status::Ok();
  max_epoch_seen_ = epoch;
  epoch_owner_ = owner;
  return WriteFence(options_.dir, epoch, owner);
}

Status Replica::WipeLocal() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    std::error_code remove_ec;
    fs::remove_all(entry.path(), remove_ec);
    if (remove_ec) {
      return Status::Internal("replica: cannot remove " +
                              entry.path().string() + ": " +
                              remove_ec.message());
    }
  }
  views_.clear();
  store_ =
      std::make_unique<ObjectStore>(ReplicaStoreOptions(options_.engine_factory));
  applied_lsn_ = 0;
  watermarks_.clear();
  mirror_segment_.clear();
  mirror_offset_ = 0;
  unapplied_validated_bytes_ = 0;
  records_since_checkpoint_ = 0;
  last_verified_checksum_lsn_ = 0;
  corrupt_segment_.clear();
  corrupt_offset_ = 0;
  corrupt_repeats_ = 0;
  // The wipe took the FENCE with it; the epoch memory must survive a
  // re-seed or a fenced stale primary could sneak back in afterwards.
  if (max_epoch_seen_ > 0) {
    return WriteFence(options_.dir, max_epoch_seen_, epoch_owner_);
  }
  return Status::Ok();
}

Status Replica::ReseedFromPrimary() {
  GSV_RETURN_IF_ERROR(WipeLocal());
  ++stats_.reseeds;

  Result<std::string> current = FetchRemote("CURRENT");
  if (!current.ok()) {
    if (current.status().code() == StatusCode::kNotFound) {
      // The primary has never checkpointed: replay its log from the
      // beginning. Positioning happens on the first poll.
      return Status::Ok();
    }
    return current.status();
  }
  std::string checkpoint_dir = current.value();
  while (!checkpoint_dir.empty() &&
         (checkpoint_dir.back() == '\n' || checkpoint_dir.back() == '\r')) {
    checkpoint_dir.pop_back();
  }
  if (checkpoint_dir.empty() ||
      checkpoint_dir.find('/') != std::string::npos) {
    return Status::DataLoss("replica: malformed remote CURRENT");
  }

  GSV_ASSIGN_OR_RETURN(std::string manifest_text,
                       FetchRemote(checkpoint_dir + "/MANIFEST"));
  std::vector<std::pair<std::string, std::pair<uint32_t, uint64_t>>> files;
  GSV_RETURN_IF_ERROR(DecodeCheckpointManifest(manifest_text, &files).status());

  // Materialize the checkpoint locally, CRC-verifying every shipped data
  // file, then flip CURRENT — the same atomic-enough order the primary
  // uses (a crash mid-seed leaves no CURRENT, and Start() reseeds).
  const std::string local_dir = options_.dir + "/" + checkpoint_dir;
  std::error_code ec;
  fs::create_directories(local_dir, ec);
  if (ec) {
    return Status::Internal("replica: cannot create " + local_dir);
  }
  for (const auto& [name, crc_size] : files) {
    GSV_ASSIGN_OR_RETURN(std::string data,
                         FetchRemote(checkpoint_dir + "/" + name));
    if (data.size() != crc_size.second ||
        Crc32(data.data(), data.size()) != crc_size.first) {
      return Status::Unavailable("replica: checkpoint file " + name +
                                 " arrived corrupt; retry the seed");
    }
    std::ofstream out(local_dir + "/" + name,
                      std::ios::binary | std::ios::trunc);
    out << data;
    out.flush();
    if (!out) {
      return Status::Internal("replica: cannot write " + local_dir + "/" +
                              name);
    }
  }
  {
    std::ofstream out(local_dir + "/MANIFEST", std::ios::trunc);
    out << manifest_text;
    out.flush();
    if (!out) {
      return Status::Internal("replica: cannot write local MANIFEST");
    }
  }
  {
    std::ofstream out(options_.dir + "/CURRENT", std::ios::trunc);
    out << checkpoint_dir << "\n";
    out.flush();
    if (!out) {
      return Status::Internal("replica: cannot write local CURRENT");
    }
  }

  GSV_ASSIGN_OR_RETURN(LoadedCheckpoint loaded,
                       LoadLatestCheckpoint(options_.dir));
  GSV_RETURN_IF_ERROR(AdoptCheckpoint(loaded));
  applied_lsn_ = loaded.manifest.wal_lsn;
  watermarks_ = loaded.manifest.watermarks;
  next_checkpoint_id_ = loaded.manifest.id + 1;
  return Status::Ok();
}

Status Replica::AdoptCheckpoint(const LoadedCheckpoint& checkpoint) {
  GSV_RETURN_IF_ERROR(ImportStoreImage(checkpoint.store_text, store_.get()));
  for (const CheckpointViewState& state : checkpoint.manifest.views) {
    GSV_RETURN_IF_ERROR(DefineReplicaView(state, /*adopt=*/true));
  }
  // Seed complete: let a paged engine shed the bulk-load working set.
  store_->StorageSafePoint();
  return Status::Ok();
}

Status Replica::DefineReplicaView(const CheckpointViewState& state,
                                  bool adopt) {
  GSV_ASSIGN_OR_RETURN(ViewDefinition def,
                       ViewDefinition::Parse(state.definition));
  for (const ReplicaView& existing : views_) {
    if (existing.state.name == def.name()) {
      return Status::DataLoss("replica: duplicate view definition '" +
                              def.name() + "'");
    }
  }
  ReplicaView entry;
  entry.state = state;
  entry.state.name = def.name();
  entry.view = std::make_unique<MaterializedView>(store_.get(), def);
  if (adopt) {
    GSV_RETURN_IF_ERROR(entry.view->AdoptExisting());
  } else {
    GSV_RETURN_IF_ERROR(entry.view->Bootstrap());
  }
  views_.push_back(std::move(entry));
  return Status::Ok();
}

// ---- Applying committed records ----

Status Replica::ApplyRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kViewDef: {
      CheckpointViewState state;
      state.definition = record.definition;
      state.cache_mode = record.cache_mode;
      state.source = record.source;
      return DefineReplicaView(state, /*adopt=*/false);
    }
    case WalRecordType::kViewDelta: {
      for (ReplicaView& entry : views_) {
        if (entry.state.name != record.view) continue;
        ++stats_.deltas_applied;
        switch (record.op) {
          case ViewDeltaOp::kVInsert:
            if (!record.object.has_value()) {
              return Status::DataLoss("v_insert record without an object");
            }
            return entry.view->VInsert(*record.object);
          case ViewDeltaOp::kVDelete:
            return entry.view->VDelete(record.base_oid);
          case ViewDeltaOp::kSync:
            return entry.view->SyncUpdate(record.update);
          case ViewDeltaOp::kRefresh:
            if (!record.object.has_value()) {
              return Status::DataLoss("refresh record without an object");
            }
            return entry.view->RefreshDelegate(*record.object);
        }
        return Status::DataLoss("unknown view delta op");
      }
      return Status::DataLoss("view delta for unknown view '" + record.view +
                              "'");
    }
    case WalRecordType::kCommit:
      watermarks_ = record.watermarks;
      ++stats_.commits_applied;
      // Commit-group boundary: no object pointers are live, so a paged
      // delegate store may evict back down to its pool budget here.
      store_->StorageSafePoint();
      return Status::Ok();
    case WalRecordType::kEvent:  // base objects live at the sources
      return Status::Ok();
    case WalRecordType::kEpoch:
      // Live tailing tracks epochs during frame validation; this path
      // matters on restart, when the mirrored log replays locally — the
      // fence level must survive a follower crash.
      return NoteEpoch(record.epoch, record.owner);
  }
  return Status::DataLoss("unknown wal record type");
}

Status Replica::MirrorBytes(const std::string& segment,
                            const std::string& bytes) {
  std::ofstream out(options_.dir + "/" + segment,
                    std::ios::binary | std::ios::app);
  if (!out) {
    return Status::Internal("replica: cannot append to mirror " + segment);
  }
  out << bytes;
  out.flush();
  if (!out) {
    return Status::Internal("replica: short mirror append to " + segment);
  }
  stats_.bytes_mirrored += static_cast<int64_t>(bytes.size());
  return Status::Ok();
}

// ---- Tailing ----

Status Replica::Poll() {
  if (!started_) return Status::FailedPrecondition("replica: call Start()");
  if (promoted_) {
    return Status::FailedPrecondition("replica: promoted; tailing stopped");
  }
  ++stats_.polls;

  auto fail_poll = [&](const Status& status) {
    ++consecutive_failed_polls_;
    ++stats_.failed_polls;
    return status;
  };

  Result<std::vector<TransportSegment>> listing = ListRemote();
  if (!listing.ok()) return fail_poll(listing.status());

  bool progressed = false;
  Status tail = TailOnce(listing.value(), &progressed);
  if (!tail.ok() && tail.code() == StatusCode::kUnavailable) {
    lag_bytes_ = LagAgainst(listing.value());
    return fail_poll(tail);
  }
  if (!tail.ok()) return tail;  // fence violation / local IO — surface hard

  consecutive_failed_polls_ = 0;
  lag_bytes_ = LagAgainst(listing.value());

  if (options_.verify_checksums) {
    GSV_RETURN_IF_ERROR(VerifyChecksums());
  }

  if (options_.checkpoint_interval_records > 0 &&
      records_since_checkpoint_ >= options_.checkpoint_interval_records) {
    GSV_RETURN_IF_ERROR(WriteLocalCheckpoint());
  }
  return Status::Ok();
}

Status Replica::TailOnce(const std::vector<TransportSegment>& listing,
                         bool* progressed) {
  while (true) {
    // Position / roll forward: the segment starting exactly at the next
    // record is where tailing continues (the primary rolls only at commit
    // boundaries, so a group never spans segments).
    for (const TransportSegment& segment : listing) {
      if (segment.first_lsn == applied_lsn_ + 1 &&
          segment.name != mirror_segment_) {
        mirror_segment_ = segment.name;
        mirror_offset_ = 0;
        unapplied_validated_bytes_ = 0;
        break;
      }
    }
    if (mirror_segment_.empty()) {
      if (listing.empty()) return Status::Ok();  // nothing shipped yet
      if (listing.front().first_lsn > applied_lsn_ + 1) {
        // The records this follower needs were retired behind a newer
        // primary checkpoint: catch up by re-seeding from it.
        return ReseedFromPrimary();
      }
      return Status::Ok();  // stale listing; retry next poll
    }
    bool listed = false;
    for (const TransportSegment& segment : listing) {
      if (segment.name == mirror_segment_) {
        listed = true;
        break;
      }
    }
    if (!listed) {
      // Our segment vanished from the listing: retired behind a primary
      // checkpoint we have not caught up to (re-seed), or a stale listing
      // (retry next poll).
      if (!listing.empty() && listing.front().first_lsn > applied_lsn_ + 1) {
        return ReseedFromPrimary();
      }
      return Status::Ok();
    }

    // Fetch the unmirrored tail of the current segment.
    std::string buffer;
    bool at_end = false;
    for (int reads = 0; reads < 1024; ++reads) {
      const uint64_t want = mirror_offset_ + buffer.size();
      GSV_ASSIGN_OR_RETURN(
          TransportChunk chunk,
          ReadRemote(mirror_segment_, want, options_.read_chunk_bytes));
      if (chunk.offset > want) break;  // delivery gap; retry next poll
      const uint64_t skip = want - chunk.offset;  // duplicated prefix
      if (skip >= chunk.data.size()) {
        at_end = chunk.at_end;
        if (chunk.data.empty() && chunk.at_end) break;
        if (skip > 0 && !chunk.data.empty()) continue;  // all-duplicate chunk
        break;
      }
      buffer.append(chunk.data, static_cast<size_t>(skip),
                    chunk.data.size() - static_cast<size_t>(skip));
      if (chunk.at_end) {
        at_end = true;
        break;
      }
    }

    // Validate frames and materialize complete commit groups.
    size_t pos = 0;            // parse cursor (relative to buffer)
    size_t committed_end = 0;  // end of the last committed group
    std::vector<WalRecord> group;
    size_t valid_end = 0;  // end of the last complete valid frame
    bool corrupt = false;
    while (pos < buffer.size()) {
      if (buffer.size() - pos < kFrameHeader) break;  // torn: wait for more
      const uint32_t length = U32At(buffer, pos);
      const uint32_t crc = U32At(buffer, pos + 4);
      if (length > kMaxPayload) {
        corrupt = true;
        break;
      }
      if (buffer.size() - pos - kFrameHeader < length) break;  // torn
      const std::string payload = buffer.substr(pos + kFrameHeader, length);
      if (Crc32(payload.data(), payload.size()) != crc) {
        corrupt = true;
        break;
      }
      Result<WalRecord> decoded = DecodeWalPayload(payload);
      if (!decoded.ok()) {
        corrupt = true;
        break;
      }
      WalRecord record = std::move(decoded).value();
      const uint64_t expected = applied_lsn_ + group.size() + 1;
      if (record.lsn != expected) {
        corrupt = true;
        break;
      }
      if (record.type == WalRecordType::kEpoch) {
        if (record.epoch < max_epoch_seen_) {
          // A fenced stale primary wrote into this home. Refuse its bytes
          // outright — this follower's state stays at the last epoch's
          // watermark until a legitimate writer appears.
          ++stats_.stale_epoch_rejections;
          return Status::FailedPrecondition(
              "replica: segment " + mirror_segment_ + " carries epoch " +
              std::to_string(record.epoch) + " below the observed fence " +
              std::to_string(max_epoch_seen_) +
              " (stale primary after failover)");
        }
        GSV_RETURN_IF_ERROR(NoteEpoch(record.epoch, record.owner));
      }
      const bool is_commit = record.type == WalRecordType::kCommit;
      group.push_back(std::move(record));
      pos += kFrameHeader + length;
      valid_end = pos;
      if (!is_commit) continue;

      // Commit boundary: the group becomes durable and visible at once.
      const uint64_t commit_lsn = applied_lsn_ + group.size();
      GSV_RETURN_IF_ERROR(MirrorBytes(
          mirror_segment_, buffer.substr(committed_end, pos - committed_end)));
      for (const WalRecord& member : group) {
        GSV_RETURN_IF_ERROR(ApplyRecord(member));
      }
      stats_.records_applied += static_cast<int64_t>(group.size());
      records_since_checkpoint_ += group.size();
      applied_lsn_ = commit_lsn;
      mirror_offset_ += pos - committed_end;
      committed_end = pos;
      group.clear();
      *progressed = true;
    }

    if (corrupt) {
      // In-flight damage (a flipped bit, a mangled length) refetches
      // clean next poll; damage that survives `max_corrupt_rounds`
      // identical refetches is persistent — on the primary's disk or in
      // our pipeline — and only a checkpoint re-seed honestly heals it.
      ++stats_.corrupt_rounds;
      const uint64_t abs_offset = mirror_offset_ + (pos - committed_end);
      if (mirror_segment_ == corrupt_segment_ &&
          abs_offset == corrupt_offset_) {
        ++corrupt_repeats_;
      } else {
        corrupt_segment_ = mirror_segment_;
        corrupt_offset_ = abs_offset;
        corrupt_repeats_ = 1;
      }
      if (corrupt_repeats_ >= options_.max_corrupt_rounds) {
        ++stats_.self_heals;
        return ReseedFromPrimary();
      }
      return Status::Ok();
    }
    corrupt_segment_.clear();
    corrupt_repeats_ = 0;
    unapplied_validated_bytes_ = valid_end - committed_end;

    // Roll forward when this segment is exhausted and its successor (first
    // record = our next LSN) is already listed; otherwise the round ends.
    if (!at_end || !group.empty()) return Status::Ok();
    bool successor = false;
    for (const TransportSegment& segment : listing) {
      if (segment.first_lsn == applied_lsn_ + 1 &&
          segment.name != mirror_segment_) {
        successor = true;
        break;
      }
    }
    if (!successor) return Status::Ok();
  }
}

uint64_t Replica::LagAgainst(
    const std::vector<TransportSegment>& listing) const {
  uint64_t lag = 0;
  for (const TransportSegment& segment : listing) {
    if (segment.name == mirror_segment_) {
      const uint64_t have = mirror_offset_ + unapplied_validated_bytes_;
      if (segment.size > have) lag += segment.size - have;
    } else if (segment.first_lsn > applied_lsn_ + 1) {
      lag += segment.size;
    } else if (mirror_segment_.empty() &&
               segment.first_lsn == applied_lsn_ + 1) {
      lag += segment.size;
    }
  }
  return lag;
}

// ---- Divergence detection / self-heal ----

Status Replica::VerifyChecksums() {
  Result<std::string> text = transport_->FetchFile(ChecksumFileName());
  if (!text.ok()) {
    // No stamp, or a transport blip: nothing to compare this round.
    if (text.status().code() == StatusCode::kNotFound ||
        text.status().code() == StatusCode::kUnavailable) {
      return Status::Ok();
    }
    return text.status();
  }
  Result<ChecksumStamp> stamp = DecodeChecksumStamp(text.value());
  if (!stamp.ok()) return Status::Ok();  // half-written stamp; next round
  if (stamp.value().lsn != applied_lsn_ ||
      stamp.value().lsn == last_verified_checksum_lsn_) {
    return Status::Ok();  // comparable only at the exact watermark
  }
  ++stats_.checksum_checks;
  bool diverged = false;
  for (const ViewChecksum& expected : stamp.value().views) {
    const MaterializedView* local = view(expected.view);
    if (local == nullptr) {
      diverged = true;
      break;
    }
    const auto lines = ViewContentLines(*local);
    if (lines.size() != expected.members ||
        ChecksumOfContentLines(lines) != expected.crc) {
      diverged = true;
      break;
    }
  }
  if (!diverged) {
    last_verified_checksum_lsn_ = stamp.value().lsn;
    return Status::Ok();
  }
  // Divergence at a matching watermark is proof of corruption somewhere in
  // this follower: throw the state away and re-seed from the primary.
  ++stats_.self_heals;
  return ReseedFromPrimary();
}

// ---- Serving ----

ReplicaStaleness Replica::staleness() const {
  ReplicaStaleness staleness;
  staleness.applied_lsn = applied_lsn_;
  staleness.watermarks = watermarks_;
  staleness.lag_bytes = lag_bytes_;
  staleness.failed_polls = consecutive_failed_polls_;
  staleness.epoch = max_epoch_seen_;
  staleness.stale = lag_bytes_ > options_.max_lag_bytes ||
                    consecutive_failed_polls_ > options_.max_failed_polls;
  return staleness;
}

const MaterializedView* Replica::view(const std::string& name) const {
  for (const ReplicaView& entry : views_) {
    if (entry.state.name == name) return entry.view.get();
  }
  return nullptr;
}

std::vector<std::string> Replica::view_names() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const ReplicaView& entry : views_) names.push_back(entry.state.name);
  return names;
}

Result<ReplicaViewRead> Replica::ReadView(const std::string& name) const {
  const MaterializedView* target = view(name);
  if (target == nullptr) {
    return Status::NotFound("replica: no view '" + name + "'");
  }
  ReplicaViewRead read;
  read.staleness = staleness();
  if (read.staleness.stale) {
    if (options_.staleness == StalenessPolicy::kRefuse) {
      return Status::Unavailable(
          "replica: view '" + name + "' is stale (lag " +
          std::to_string(read.staleness.lag_bytes) + " bytes, " +
          std::to_string(read.staleness.failed_polls) +
          " failed polls) and the policy refuses stale reads");
    }
    read.served_stale = true;
  }
  read.lines = ViewContentLines(*target);
  return read;
}

// ---- Follower durability ----

Status Replica::WriteLocalCheckpoint() {
  if (!started_) return Status::FailedPrecondition("replica: call Start()");
  CheckpointCapture capture;
  capture.manifest.id = next_checkpoint_id_;
  capture.manifest.wal_lsn = applied_lsn_;
  capture.manifest.watermarks = watermarks_;
  for (const ReplicaView& entry : views_) {
    capture.manifest.views.push_back(entry.state);
  }
  GSV_ASSIGN_OR_RETURN(capture.store_text, ExportStoreImage(store_.get()));
  GSV_RETURN_IF_ERROR(PersistCheckpoint(options_.dir, capture));
  ++next_checkpoint_id_;
  ++stats_.checkpoints_written;
  records_since_checkpoint_ = 0;

  // Keep-2 retention (the primary's rule): only records above the
  // *previous* retained checkpoint's LSN can matter to a local recovery.
  auto checkpoints = ListCheckpoints(options_.dir);
  if (checkpoints.ok() && checkpoints.value().size() >= 2) {
    const CheckpointInfo& previous =
        checkpoints.value()[checkpoints.value().size() - 2];
    auto manifest = ReadCheckpointManifest(previous.path);
    auto segments = ListWalSegments(options_.dir);
    if (manifest.ok() && segments.ok()) {
      const uint64_t keep_lsn = manifest.value().wal_lsn + 1;
      const std::vector<WalSegmentInfo>& segs = segments.value();
      for (size_t i = 0; i + 1 < segs.size(); ++i) {
        if (segs[i + 1].first_lsn <= keep_lsn) {
          std::error_code ec;
          fs::remove(segs[i].path, ec);
        }
      }
    }
  }
  return Status::Ok();
}

// ---- Failover ----

Result<uint64_t> Replica::Promote(const std::string& owner) {
  if (!started_) return Status::FailedPrecondition("replica: call Start()");
  if (promoted_) return Status::FailedPrecondition("replica: already promoted");
  Result<FenceInfo> standing = transport_->FetchFence();
  if (!standing.ok()) return standing.status();
  const uint64_t new_epoch =
      std::max(max_epoch_seen_, standing.value().epoch) + 1;
  return PromoteAtEpoch(new_epoch, owner);
}

Result<uint64_t> Replica::PromoteAtEpoch(uint64_t new_epoch,
                                         const std::string& owner) {
  if (!started_) return Status::FailedPrecondition("replica: call Start()");
  if (promoted_) return Status::FailedPrecondition("replica: already promoted");
  // The fence write into the old primary's home is the failover: once it
  // lands, the old writer's next append observes it and dies. If the old
  // home is unreachable the promotion must NOT proceed — file shipping
  // alone cannot fence a writer it cannot reach.
  GSV_RETURN_IF_ERROR(transport_->PublishFence(new_epoch, owner));
  // Stamp the same fence on the local home so the promoted warehouse's
  // EnableDurability({epoch = new_epoch}) claims exactly this epoch and
  // any even-newer promotion fences *us* in turn.
  GSV_RETURN_IF_ERROR(WriteFence(options_.dir, new_epoch, owner));
  max_epoch_seen_ = new_epoch;
  epoch_owner_ = owner;
  promoted_ = true;
  return new_epoch;
}

// ---- ShardedReplica ----

ShardedReplica::ShardedReplica(
    std::vector<std::unique_ptr<LogTransport>> transports,
    ReplicaOptions options) {
  for (size_t i = 0; i < transports.size(); ++i) {
    ReplicaOptions shard_options = options;
    shard_options.dir = options.dir + "/shard-" + std::to_string(i);
    shards_.push_back(std::make_unique<Replica>(std::move(transports[i]),
                                                std::move(shard_options)));
  }
}

Status ShardedReplica::Start() {
  for (auto& shard : shards_) GSV_RETURN_IF_ERROR(shard->Start());
  return Status::Ok();
}

Status ShardedReplica::Poll() {
  Status first_error;
  for (auto& shard : shards_) {
    Status status = shard->Poll();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

Status ShardedReplica::CatchUp(int max_polls) {
  for (auto& shard : shards_) {
    GSV_RETURN_IF_ERROR(shard->CatchUp(max_polls));
  }
  return Status::Ok();
}

ReplicaStaleness ShardedReplica::staleness() const {
  ReplicaStaleness worst;
  bool first = true;
  for (const auto& shard : shards_) {
    ReplicaStaleness s = shard->staleness();
    if (first) {
      worst = s;
      worst.watermarks.clear();  // per-shard domains do not merge
      first = false;
      continue;
    }
    worst.applied_lsn = std::min(worst.applied_lsn, s.applied_lsn);
    worst.lag_bytes += s.lag_bytes;
    worst.failed_polls = std::max(worst.failed_polls, s.failed_polls);
    worst.stale = worst.stale || s.stale;
    worst.epoch = std::max(worst.epoch, s.epoch);
    worst.watermarks.clear();
  }
  return worst;
}

Result<ReplicaViewRead> ShardedReplica::ReadView(
    const std::string& name) const {
  ReplicaViewRead merged;
  merged.staleness = staleness();
  std::vector<std::vector<std::pair<Oid, std::string>>> slices;
  for (const auto& shard : shards_) {
    GSV_ASSIGN_OR_RETURN(ReplicaViewRead read, shard->ReadView(name));
    merged.served_stale = merged.served_stale || read.served_stale;
    slices.push_back(std::move(read.lines));
  }
  // K-way merge in lexicographic OID order — the ShardedWarehouse::
  // ViewContents discipline, so the merged lines are byte-identical with
  // the primary's.
  std::vector<size_t> heads(slices.size(), 0);
  while (true) {
    int best = -1;
    for (size_t i = 0; i < slices.size(); ++i) {
      if (heads[i] >= slices[i].size()) continue;
      if (best < 0 || slices[i][heads[i]].first.str() <
                          slices[best][heads[best]].first.str()) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    merged.lines.push_back(std::move(slices[best][heads[best]]));
    ++heads[best];
  }
  return merged;
}

Result<uint64_t> ShardedReplica::Promote(const std::string& owner) {
  uint64_t highest = 0;
  for (auto& shard : shards_) {
    Result<FenceInfo> standing = shard->transport()->FetchFence();
    if (!standing.ok()) return standing.status();
    highest = std::max({highest, standing.value().epoch, shard->epoch()});
  }
  const uint64_t new_epoch = highest + 1;
  for (auto& shard : shards_) {
    GSV_ASSIGN_OR_RETURN(uint64_t granted,
                         shard->PromoteAtEpoch(new_epoch, owner));
    (void)granted;
  }
  return new_epoch;
}

// ---- CatchUp ----

Status Replica::CatchUp(int max_polls) {
  Status last;
  for (int i = 0; i < max_polls; ++i) {
    const int64_t before = stats_.records_applied;
    last = Poll();
    if (last.ok() && stats_.records_applied == before && lag_bytes_ == 0) {
      return Status::Ok();
    }
  }
  return Status::DeadlineExceeded(
      "replica: not caught up after " + std::to_string(max_polls) +
      " polls (lag " + std::to_string(lag_bytes_) + " bytes): " +
      (last.ok() ? std::string("still progressing") : last.message()));
}

}  // namespace gsv
