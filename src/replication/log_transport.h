#ifndef GSV_REPLICATION_LOG_TRANSPORT_H_
#define GSV_REPLICATION_LOG_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/wal.h"
#include "util/status.h"

namespace gsv {

// Transport abstraction for WAL shipping: how a follower sees one primary
// durability home (one WAL directory — for a sharded primary the follower
// holds one transport per shard-<i> home). The interface is deliberately
// dumb — list, ranged read, whole-file fetch — so a file copy, an object
// store, or a socket protocol can all implement it; correctness lives
// entirely in the follower's validation (frame CRCs, LSN continuity,
// commit-boundary application), never in transport guarantees. Every call
// may fail transiently (kUnavailable) and every read may return short,
// duplicated, or corrupted bytes; see FaultInjectedTransport.

// One shippable WAL segment as the transport last saw it.
struct TransportSegment {
  std::string name;        // wal-<12 digits>.log
  uint64_t first_lsn = 0;  // from the name
  uint64_t size = 0;       // bytes visible at listing time (may grow)
};

// A ranged read's result. `offset` is where the returned bytes *actually*
// start: a duplicating transport may deliver bytes the follower already
// has (offset < requested), and a torn read returns fewer bytes than were
// available. Consumers must dedupe by offset and treat short reads as
// retry-later, not end-of-log.
struct TransportChunk {
  uint64_t offset = 0;
  std::string data;
  bool at_end = false;  // no bytes past offset+data.size() at read time
};

class LogTransport {
 public:
  virtual ~LogTransport() = default;

  // Shippable WAL segments of the remote home, sorted by first LSN.
  // Retired (checkpoint-covered) segments disappear from this listing —
  // a follower that still needs them must re-seed from a checkpoint.
  virtual Result<std::vector<TransportSegment>> ListSegments() = 0;

  // Reads up to `max_bytes` of `segment` starting at byte `offset`.
  // An offset at or past the current end yields an empty at_end chunk.
  virtual Result<TransportChunk> ReadSegment(const std::string& segment,
                                            uint64_t offset,
                                            uint64_t max_bytes) = 0;

  // Fetches a whole non-segment file by home-relative path (CURRENT,
  // checkpoint-<id>/MANIFEST, checkpoint-<id>/store.gsv, CHECKSUMS).
  // kNotFound when the remote home has no such file.
  virtual Result<std::string> FetchFile(const std::string& name) = 0;

  // Reads the remote home's FENCE (epoch 0 when absent).
  virtual Result<FenceInfo> FetchFence() = 0;

  // Raises the remote home's FENCE — the promotion-time write that cuts
  // off the old primary (see wal.h). Refuses to lower a standing fence.
  virtual Status PublishFence(uint64_t epoch, const std::string& owner) = 0;
};

// Ships from a local filesystem directory (the primary's durability home
// on a shared disk / NFS mount — and the transport every test drives).
class FileLogTransport : public LogTransport {
 public:
  explicit FileLogTransport(std::string dir) : dir_(std::move(dir)) {}

  Result<std::vector<TransportSegment>> ListSegments() override;
  Result<TransportChunk> ReadSegment(const std::string& segment,
                                     uint64_t offset,
                                     uint64_t max_bytes) override;
  Result<std::string> FetchFile(const std::string& name) override;
  Result<FenceInfo> FetchFence() override;
  Status PublishFence(uint64_t epoch, const std::string& owner) override;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace gsv

#endif  // GSV_REPLICATION_LOG_TRANSPORT_H_
