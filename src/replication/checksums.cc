#include "replication/checksums.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "warehouse/sharded_warehouse.h"
#include "warehouse/sharding.h"
#include "warehouse/warehouse.h"

namespace gsv {

uint32_t ChecksumOfContentLines(
    const std::vector<std::pair<Oid, std::string>>& lines) {
  uint32_t crc = 0;
  for (const auto& [oid, line] : lines) {
    const std::string& name = oid.str();
    crc = Crc32(name.data(), name.size(), crc);
    crc = Crc32(" ", 1, crc);
    crc = Crc32(line.data(), line.size(), crc);
    crc = Crc32("\n", 1, crc);
  }
  return crc;
}

std::string EncodeChecksumStamp(const ChecksumStamp& stamp) {
  std::ostringstream out;
  out << "lsn " << stamp.lsn << "\n";
  for (const ViewChecksum& view : stamp.views) {
    out << "view " << view.crc << " " << view.members << " " << view.view
        << "\n";
  }
  return out.str();
}

Result<ChecksumStamp> DecodeChecksumStamp(const std::string& text) {
  ChecksumStamp stamp;
  std::istringstream in(text);
  std::string line;
  bool saw_lsn = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "lsn") {
      if (!(fields >> stamp.lsn)) {
        return Status::DataLoss("checksums: malformed lsn line");
      }
      saw_lsn = true;
    } else if (tag == "view") {
      ViewChecksum view;
      if (!(fields >> view.crc >> view.members)) {
        return Status::DataLoss("checksums: malformed view line");
      }
      std::getline(fields, view.view);
      if (!view.view.empty() && view.view.front() == ' ') {
        view.view.erase(0, 1);
      }
      if (view.view.empty()) {
        return Status::DataLoss("checksums: view line without a name");
      }
      stamp.views.push_back(std::move(view));
    } else {
      return Status::DataLoss("checksums: unknown line tag '" + tag + "'");
    }
  }
  if (!saw_lsn) return Status::DataLoss("checksums: missing lsn line");
  return stamp;
}

Result<ChecksumStamp> ChecksumDurabilityHome(const std::string& dir) {
  GSV_ASSIGN_OR_RETURN(RecoveryPlan plan, PlanRecovery(dir));

  ObjectStore store;
  std::vector<std::pair<std::string, std::unique_ptr<MaterializedView>>>
      views;
  auto define = [&](const std::string& definition,
                    bool adopt) -> Status {
    GSV_ASSIGN_OR_RETURN(ViewDefinition def,
                         ViewDefinition::Parse(definition));
    auto view = std::make_unique<MaterializedView>(&store, def);
    GSV_RETURN_IF_ERROR(adopt ? view->AdoptExisting() : view->Bootstrap());
    views.emplace_back(def.name(), std::move(view));
    return Status::Ok();
  };

  if (plan.have_checkpoint) {
    GSV_RETURN_IF_ERROR(
        ImportStoreImage(plan.checkpoint.store_text, &store));
    for (const CheckpointViewState& state : plan.checkpoint.manifest.views) {
      GSV_RETURN_IF_ERROR(define(state.definition, /*adopt=*/true));
    }
  }
  for (const WalRecord& record : plan.committed) {
    switch (record.type) {
      case WalRecordType::kViewDef:
        GSV_RETURN_IF_ERROR(define(record.definition, /*adopt=*/false));
        break;
      case WalRecordType::kViewDelta: {
        MaterializedView* target = nullptr;
        for (auto& [name, view] : views) {
          if (name == record.view) {
            target = view.get();
            break;
          }
        }
        if (target == nullptr) {
          return Status::DataLoss("checksums: delta for unknown view '" +
                                  record.view + "' in " + dir);
        }
        Status applied = Status::Ok();
        switch (record.op) {
          case ViewDeltaOp::kVInsert:
            applied = record.object.has_value()
                          ? target->VInsert(*record.object)
                          : Status::DataLoss("v_insert without object");
            break;
          case ViewDeltaOp::kVDelete:
            applied = target->VDelete(record.base_oid);
            break;
          case ViewDeltaOp::kSync:
            applied = target->SyncUpdate(record.update);
            break;
          case ViewDeltaOp::kRefresh:
            applied = record.object.has_value()
                          ? target->RefreshDelegate(*record.object)
                          : Status::DataLoss("refresh without object");
            break;
        }
        GSV_RETURN_IF_ERROR(applied);
        break;
      }
      case WalRecordType::kEvent:
      case WalRecordType::kCommit:
      case WalRecordType::kEpoch:
        break;
    }
  }

  ChecksumStamp stamp;
  stamp.lsn = plan.next_lsn - 1;
  for (const auto& [name, view] : views) {
    ViewChecksum checksum;
    checksum.view = name;
    const auto lines = ViewContentLines(*view);
    checksum.crc = ChecksumOfContentLines(lines);
    checksum.members = lines.size();
    stamp.views.push_back(std::move(checksum));
  }
  return stamp;
}

namespace {

Status WriteStampFile(const std::string& dir, const ChecksumStamp& stamp) {
  const std::string path = dir + "/" + ChecksumFileName();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::Internal("checksums: cannot write " + tmp);
    out << EncodeChecksumStamp(stamp);
    out.flush();
    if (!out) return Status::Internal("checksums: cannot write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("checksums: cannot publish " + path + ": " +
                            ec.message());
  }
  return Status::Ok();
}

}  // namespace

Status PublishChecksums(Warehouse& warehouse) {
  if (!warehouse.durable()) {
    return Status::FailedPrecondition(
        "checksums: warehouse has no durability home");
  }
  if (warehouse.pending_events() != 0) {
    return Status::FailedPrecondition(
        "checksums: drain pending events first (the stamp must sit on a "
        "commit watermark)");
  }
  ChecksumStamp stamp;
  stamp.lsn = warehouse.wal()->next_lsn() - 1;
  for (const std::string& name : warehouse.view_names()) {
    const MaterializedView* view = warehouse.view(name);
    if (view == nullptr) continue;
    ViewChecksum checksum;
    checksum.view = name;
    const auto lines = ViewContentLines(*view);
    checksum.crc = ChecksumOfContentLines(lines);
    checksum.members = lines.size();
    stamp.views.push_back(std::move(checksum));
  }
  return WriteStampFile(warehouse.wal()->dir(), stamp);
}

Status PublishChecksums(ShardedWarehouse& warehouse) {
  for (uint32_t i = 0; i < warehouse.shard_count(); ++i) {
    GSV_RETURN_IF_ERROR(PublishChecksums(warehouse.shard(i)));
  }
  return Status::Ok();
}

}  // namespace gsv
