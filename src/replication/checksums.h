#ifndef GSV_REPLICATION_CHECKSUMS_H_
#define GSV_REPLICATION_CHECKSUMS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "oem/oid.h"
#include "util/status.h"

namespace gsv {

class Warehouse;
class ShardedWarehouse;

// Divergence detection (replication §4g): the primary periodically stamps a
// CHECKSUMS file into its durability home — one CRC per view over the
// canonical ViewContentLines, tagged with the WAL LSN the state reflects.
// A follower whose applied watermark reaches exactly that LSN must hold
// byte-identical view content; a checksum mismatch there is proof of
// divergence (a replica bug, local bit rot, a mis-applied group) and
// triggers the follower's self-heal: discard local state and re-seed from
// the primary's checkpoint. Checksums at non-matching LSNs say nothing —
// the follower simply skips them.

struct ViewChecksum {
  std::string view;
  uint32_t crc = 0;        // over the canonical content lines
  uint64_t members = 0;    // line count (cheap first-level comparison)
};

struct ChecksumStamp {
  uint64_t lsn = 0;  // WAL LSN the checksummed state reflects
  std::vector<ViewChecksum> views;
};

// Name of the stamp file within a durability home.
inline const char* ChecksumFileName() { return "CHECKSUMS"; }

// CRC-32 over canonical view content lines ("<oid> <line>\n", chained).
uint32_t ChecksumOfContentLines(
    const std::vector<std::pair<Oid, std::string>>& lines);

// Text codec (one "lsn" line, then one "view <crc> <members> <name>" per
// view; names may contain spaces).
std::string EncodeChecksumStamp(const ChecksumStamp& stamp);
Result<ChecksumStamp> DecodeChecksumStamp(const std::string& text);

// Materializes the *committed* state of a durability home on disk —
// checkpoint image plus the committed log zone, the same redo path
// recovery and replicas use — and returns one checksum per view at that
// watermark. Read-only: nothing in `dir` is modified (a torn tail is
// ignored, not truncated). This is what `wal_inspect diff` compares.
Result<ChecksumStamp> ChecksumDurabilityHome(const std::string& dir);

// Stamps every view of a quiescent, durable warehouse and atomically
// (tmp + rename) publishes <dir>/CHECKSUMS. kFailedPrecondition when the
// warehouse is not durable or has pending events (the stamp would not
// correspond to a commit watermark).
Status PublishChecksums(Warehouse& warehouse);
// Per-shard stamps: each shard home gets a CHECKSUMS over its own slice.
Status PublishChecksums(ShardedWarehouse& warehouse);

}  // namespace gsv

#endif  // GSV_REPLICATION_CHECKSUMS_H_
