#ifndef GSV_REPLICATION_REPLICA_H_
#define GSV_REPLICATION_REPLICA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/materialized_view.h"
#include "oem/store.h"
#include "replication/log_transport.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "util/retry.h"
#include "util/status.h"

namespace gsv {

// A WAL-shipped read replica of one primary durability home (DESIGN.md
// §4g). The follower never talks to a source: it seeds from the primary's
// checkpoint, tails WAL segments over a LogTransport, and applies the
// committed view-delta records through the same zero-source-query redo
// path crash recovery uses. Its local home (`options.dir`) is itself a
// valid durability directory — segment files byte-identical to the
// primary's committed prefix plus its own periodic checkpoints — so a
// follower restart recovers locally and resumes tailing, and promotion is
// nothing more than fencing the old primary and opening the local home as
// a fresh primary's WAL.
//
// The one invariant everything rests on: *only committed bytes reach the
// local mirror or the views.* Each poll refetches the remote tail past the
// last locally-committed byte, validates frames in memory (CRC, LSN
// continuity, epoch monotonicity), and materializes a group only when its
// kCommit record arrives — torn ships, duplicated chunks, bit flips, and
// a primary crash-truncating its own uncommitted tail all die in the
// poll-local buffer without ever contaminating durable state.

// What a follower does with reads once its lag exceeds the bound.
enum class StalenessPolicy {
  kServeStaleWithStatus = 0,  // serve, but flag the read as stale
  kRefuse = 1,                // fail reads with kUnavailable until caught up
};

struct ReplicaOptions {
  std::string dir;  // local mirror home (segments + own checkpoints)
  // Max bytes per transport read (several reads per poll as needed).
  uint64_t read_chunk_bytes = 64 * 1024;
  // Bounded retry/backoff around every transport call (virtual time).
  RetryPolicy retry;
  // ---- Staleness contract ----
  StalenessPolicy staleness = StalenessPolicy::kServeStaleWithStatus;
  // A read is stale when unapplied remote bytes exceed this bound...
  uint64_t max_lag_bytes = 1 * 1024 * 1024;
  // ...or this many consecutive polls failed outright (lag unknown).
  int max_failed_polls = 3;
  // Write a local follower checkpoint after this many applied records
  // (0 = never; recovery then replays the full mirrored log).
  uint64_t checkpoint_interval_records = 0;
  // Compare the primary's CHECKSUMS stamp when the watermark matches and
  // self-heal (checkpoint re-seed) on divergence.
  bool verify_checksums = true;
  // A validation failure at the same byte offset this many polls running
  // is persistent corruption, not a transport blip: self-heal by re-seed.
  int max_corrupt_rounds = 8;
  // Builds the storage engine backing the follower's delegate store (and
  // its re-seeded successors after a self-heal wipe). Called once per
  // store construction; null = memory default. With a paged engine the
  // follower seeds from the primary's checkpoint through the bulk-load
  // seam without ever materializing the full store in RAM.
  StorageEngineFactory engine_factory;
};

// The staleness watermark every read carries.
struct ReplicaStaleness {
  uint64_t applied_lsn = 0;  // last committed record applied
  std::vector<WalWatermark> watermarks;  // per-source, from that commit
  uint64_t lag_bytes = 0;    // remote bytes not yet applied (last listing)
  int failed_polls = 0;      // consecutive transport-failed polls
  bool stale = false;        // policy bound exceeded
  uint64_t epoch = 0;        // highest primary epoch observed
};

struct ReplicaStats {
  int64_t polls = 0;
  int64_t failed_polls = 0;       // total (not consecutive)
  int64_t records_applied = 0;
  int64_t deltas_applied = 0;
  int64_t commits_applied = 0;
  int64_t bytes_mirrored = 0;
  int64_t reseeds = 0;            // checkpoint seeds (initial + catch-up)
  int64_t self_heals = 0;         // reseeds forced by divergence/corruption
  int64_t checksum_checks = 0;    // stamps actually compared
  int64_t stale_epoch_rejections = 0;  // fenced-writer records refused
  int64_t corrupt_rounds = 0;     // polls aborted on frame validation
  int64_t checkpoints_written = 0;
};

// One epoch-versioned snapshot read: the canonical content lines plus the
// exact staleness watermark they reflect.
struct ReplicaViewRead {
  std::vector<std::pair<Oid, std::string>> lines;
  ReplicaStaleness staleness;
  bool served_stale = false;  // true under kServeStaleWithStatus when stale
};

class Replica {
 public:
  // `transport` ships one primary home (one WAL directory). For a sharded
  // primary, see ShardedReplica.
  Replica(std::unique_ptr<LogTransport> transport, ReplicaOptions options);
  ~Replica();
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Brings the follower to a tailing-ready state. A local home with
  // durable state recovers it locally (checkpoint + committed mirror
  // replay — the follower crash-recovery path, no transport involved);
  // an empty home seeds from the primary's checkpoint, or from LSN 1 when
  // the primary has never checkpointed. A transiently-failed seed is
  // retryable — call Start() again; once started, further calls no-op.
  Status Start();

  // One tailing round: list remote segments, fetch + validate the tail,
  // mirror and apply every complete commit group, verify checksums, maybe
  // write a local checkpoint. Transport failures surface as the returned
  // status *and* in the staleness watermark; the next poll retries.
  Status Poll();

  // Polls until a round applies nothing new and reports zero lag.
  // kDeadlineExceeded after `max_polls` rounds.
  Status CatchUp(int max_polls = 64);

  // ---- Serving (epoch-versioned snapshot reads) ----

  // Canonical content lines of `name` under the staleness policy:
  // kRefuse + stale → kUnavailable; otherwise the read carries its
  // watermark and a served_stale flag.
  Result<ReplicaViewRead> ReadView(const std::string& name) const;
  std::vector<std::string> view_names() const;
  const MaterializedView* view(const std::string& name) const;
  ReplicaStaleness staleness() const;

  // ---- Follower durability ----

  // Captures the follower's state (store, view definitions, watermarks)
  // as a checkpoint in the local home and retires fully-covered local
  // segments (keep-2, the primary's retention rule).
  Status WriteLocalCheckpoint();

  // ---- Failover ----

  // Fences the old primary and turns this follower's home into the next
  // primary's: picks epoch = max(observed, standing fence) + 1, publishes
  // it to the remote home (must succeed — an unreachable old primary
  // cannot be safely fenced by file shipping alone), stamps the same
  // fence locally, and stops tailing. Returns the new epoch; the caller
  // builds a fresh Warehouse over the sources and calls EnableDurability
  // with {dir = this->dir(), epoch = returned} to resume writes.
  Result<uint64_t> Promote(const std::string& owner);
  // Promote at a caller-chosen epoch (must exceed every standing fence) —
  // the sharded coordinator picks one common epoch for all shard homes.
  Result<uint64_t> PromoteAtEpoch(uint64_t new_epoch,
                                  const std::string& owner);
  bool promoted() const { return promoted_; }

  // ---- Introspection ----

  const std::string& dir() const { return options_.dir; }
  uint64_t applied_lsn() const { return applied_lsn_; }
  uint64_t epoch() const { return max_epoch_seen_; }
  const ReplicaStats& stats() const { return stats_; }
  const ObjectStore& store() const { return *store_; }
  LogTransport* transport() { return transport_.get(); }

 private:
  struct ReplicaView {
    std::unique_ptr<MaterializedView> view;
    CheckpointViewState state;  // definition/source/cache_mode for capture
  };

  // Transport calls under the retry policy.
  Result<std::vector<TransportSegment>> ListRemote();
  Result<TransportChunk> ReadRemote(const std::string& segment,
                                    uint64_t offset, uint64_t max_bytes);
  Result<std::string> FetchRemote(const std::string& name);

  // Wipes local state and re-seeds from the primary's newest checkpoint
  // (or from scratch when it has none).
  Status ReseedFromPrimary();
  Status WipeLocal();
  // Restores store + views from a locally-persisted checkpoint.
  Status AdoptCheckpoint(const LoadedCheckpoint& checkpoint);
  // Builds a view from a kViewDef record / checkpoint state.
  Status DefineReplicaView(const CheckpointViewState& state, bool adopt);
  // Applies one committed record to follower state.
  Status ApplyRecord(const WalRecord& record);
  // Appends validated raw bytes to the local mirror segment.
  Status MirrorBytes(const std::string& segment, const std::string& bytes);
  // The tail half of Poll(): fetch/validate/apply against one listing.
  Status TailOnce(const std::vector<TransportSegment>& listing,
                  bool* progressed);
  // Fetch + compare the primary's CHECKSUMS stamp; self-heal on mismatch.
  Status VerifyChecksums();
  // Records a newly-observed writer epoch and persists it in the local
  // FENCE so it survives crashes and checkpoint-retired mirror segments.
  Status NoteEpoch(uint64_t epoch, const std::string& owner);
  uint64_t LagAgainst(const std::vector<TransportSegment>& listing) const;

  std::unique_ptr<LogTransport> transport_;
  ReplicaOptions options_;

  // Owned delegate store; replaced wholesale on re-seed (views point into
  // it, so they are rebuilt with it).
  std::unique_ptr<ObjectStore> store_;
  std::vector<ReplicaView> views_;

  bool started_ = false;
  bool promoted_ = false;
  uint64_t applied_lsn_ = 0;  // last committed record applied
  std::vector<WalWatermark> watermarks_;
  uint64_t max_epoch_seen_ = 0;
  std::string epoch_owner_;  // owner string of max_epoch_seen_
  std::string mirror_segment_;   // local segment being appended (name)
  uint64_t mirror_offset_ = 0;   // committed bytes of that segment
  // Valid frames seen past the mirror offset but not yet committed (e.g.
  // a fresh segment's kEpoch header): excluded from the lag estimate.
  uint64_t unapplied_validated_bytes_ = 0;
  uint64_t lag_bytes_ = 0;
  int consecutive_failed_polls_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  uint64_t next_checkpoint_id_ = 1;
  uint64_t last_verified_checksum_lsn_ = 0;
  // Persistent-corruption tracker: (segment, offset) of the last aborted
  // round and how many times running it repeated.
  std::string corrupt_segment_;
  uint64_t corrupt_offset_ = 0;
  int corrupt_repeats_ = 0;
  ReplicaStats stats_;
};

// A follower fleet for a sharded primary: one Replica per shard-<i> home,
// local mirrors under <dir>/shard-<i>, reads K-way merged in canonical
// OID order — byte-identical with ShardedWarehouse::ViewContents. K must
// match the primary's shard count.
class ShardedReplica {
 public:
  // `transports[i]` ships the primary's shard-<i> home.
  ShardedReplica(std::vector<std::unique_ptr<LogTransport>> transports,
                 ReplicaOptions options);

  uint32_t shard_count() const {
    return static_cast<uint32_t>(shards_.size());
  }
  Replica& shard(size_t index) { return *shards_[index]; }

  Status Start();
  Status Poll();
  Status CatchUp(int max_polls = 64);

  // Merged canonical lines under the strictest shard's staleness.
  Result<ReplicaViewRead> ReadView(const std::string& name) const;
  ReplicaStaleness staleness() const;  // worst lag / failure across shards

  // Fences every shard home with one common epoch (max across shards + 1)
  // and returns it — ShardedWarehouse::EnableDurability applies it to all
  // shards on the new primary.
  Result<uint64_t> Promote(const std::string& owner);

 private:
  std::vector<std::unique_ptr<Replica>> shards_;
};

}  // namespace gsv

#endif  // GSV_REPLICATION_REPLICA_H_
