#ifndef GSV_REPLICATION_TRANSPORT_FAULT_H_
#define GSV_REPLICATION_TRANSPORT_FAULT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "replication/log_transport.h"
#include "util/random.h"
#include "util/status.h"

namespace gsv {

// How badly the shipping channel misbehaves. One seeded PRNG drives every
// draw (the FaultInjector discipline from the source channel), so a
// profile reproduces the same fault schedule on every run. Each fault
// models a real WAN pathology the follower must absorb:
//
//   fail_rate / fail_burst  transient outage: any call returns
//                           kUnavailable, in bursts (retry/backoff fodder)
//   stale_list_rate         delayed delivery: ListSegments replays an
//                           earlier listing, hiding fresh segments/bytes
//   torn_read_rate          a read stops short mid-frame (torn ship)
//   duplicate_rate          a read restarts before the requested offset,
//                           re-delivering bytes the follower already has
//   flip_rate               a read arrives with one bit flipped — only
//                           the frame CRC stands between this and silent
//                           divergence
struct TransportFaultProfile {
  uint64_t seed = 1;
  double fail_rate = 0.0;
  int fail_burst = 1;
  double stale_list_rate = 0.0;
  double torn_read_rate = 0.0;
  double duplicate_rate = 0.0;
  double flip_rate = 0.0;
};

// Decorates any LogTransport with the profile's faults. Fence operations
// are never faulted probabilistically (a lost fence write is a protocol
// bug, not a transport blip — PublishFence callers must see real
// outcomes); set_down covers outage testing for them.
class FaultInjectedTransport : public LogTransport {
 public:
  FaultInjectedTransport(std::unique_ptr<LogTransport> base,
                         const TransportFaultProfile& profile)
      : base_(std::move(base)), profile_(profile), rng_(profile.seed) {}

  Result<std::vector<TransportSegment>> ListSegments() override;
  Result<TransportChunk> ReadSegment(const std::string& segment,
                                     uint64_t offset,
                                     uint64_t max_bytes) override;
  Result<std::string> FetchFile(const std::string& name) override;
  Result<FenceInfo> FetchFence() override;
  Status PublishFence(uint64_t epoch, const std::string& owner) override;

  // ---- Scripted controls ----

  // Hard outage: everything (fences included) fails until set_down(false).
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }
  // The next `n` list/read/fetch calls fail regardless of the profile.
  void FailNextOps(int n) { forced_failures_ += n; }
  // Clears scripted faults and zeroes every rate: the channel is perfect
  // from here on (the recovery half of fault tests).
  void Heal();

  // ---- Introspection ----

  int64_t ops_failed() const { return ops_failed_; }
  int64_t lists_delayed() const { return lists_delayed_; }
  int64_t reads_torn() const { return reads_torn_; }
  int64_t reads_duplicated() const { return reads_duplicated_; }
  int64_t bits_flipped() const { return bits_flipped_; }

  LogTransport* base() { return base_.get(); }

 private:
  // kUnavailable when this op should fail (probabilistic burst/scripted).
  Status MaybeFail(const char* op);

  std::unique_ptr<LogTransport> base_;
  TransportFaultProfile profile_;
  Random rng_;
  bool down_ = false;
  int forced_failures_ = 0;
  int burst_remaining_ = 0;
  std::vector<TransportSegment> last_listing_;
  bool have_listing_ = false;
  int64_t ops_failed_ = 0;
  int64_t lists_delayed_ = 0;
  int64_t reads_torn_ = 0;
  int64_t reads_duplicated_ = 0;
  int64_t bits_flipped_ = 0;
};

}  // namespace gsv

#endif  // GSV_REPLICATION_TRANSPORT_FAULT_H_
