#include "replication/transport_fault.h"

#include <algorithm>

namespace gsv {

Status FaultInjectedTransport::MaybeFail(const char* op) {
  if (down_) {
    ++ops_failed_;
    return Status::Unavailable(std::string("transport fault: ") + op +
                               " (down)");
  }
  if (forced_failures_ > 0) {
    --forced_failures_;
    ++ops_failed_;
    return Status::Unavailable(std::string("transport fault: ") + op +
                               " (scripted)");
  }
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    ++ops_failed_;
    return Status::Unavailable(std::string("transport fault: ") + op +
                               " (burst)");
  }
  if (profile_.fail_rate > 0.0 && rng_.NextDouble() < profile_.fail_rate) {
    burst_remaining_ = std::max(0, profile_.fail_burst - 1);
    ++ops_failed_;
    return Status::Unavailable(std::string("transport fault: ") + op);
  }
  return Status::Ok();
}

Result<std::vector<TransportSegment>> FaultInjectedTransport::ListSegments() {
  GSV_RETURN_IF_ERROR(MaybeFail("list"));
  if (have_listing_ && profile_.stale_list_rate > 0.0 &&
      rng_.NextDouble() < profile_.stale_list_rate) {
    // Delayed delivery: the follower sees yesterday's directory. Newly
    // rolled segments and fresh tail bytes stay invisible this round.
    ++lists_delayed_;
    return last_listing_;
  }
  GSV_ASSIGN_OR_RETURN(std::vector<TransportSegment> fresh,
                       base_->ListSegments());
  last_listing_ = fresh;
  have_listing_ = true;
  return fresh;
}

Result<TransportChunk> FaultInjectedTransport::ReadSegment(
    const std::string& segment, uint64_t offset, uint64_t max_bytes) {
  GSV_RETURN_IF_ERROR(MaybeFail("read"));
  uint64_t effective_offset = offset;
  bool duplicated = false;
  if (offset > 0 && profile_.duplicate_rate > 0.0 &&
      rng_.NextDouble() < profile_.duplicate_rate) {
    // Re-delivery: the chunk restarts up to 64 bytes early, handing the
    // follower bytes it already mirrored. Dedupe is the receiver's job.
    effective_offset = offset - std::min<uint64_t>(offset, 1 + rng_.Uniform(64));
    duplicated = true;
  }
  GSV_ASSIGN_OR_RETURN(TransportChunk chunk,
                       base_->ReadSegment(segment, effective_offset,
                                          max_bytes));
  if (duplicated && !chunk.data.empty()) ++reads_duplicated_;
  if (!chunk.data.empty() && profile_.torn_read_rate > 0.0 &&
      rng_.NextDouble() < profile_.torn_read_rate) {
    // Torn ship: only a prefix arrives, usually mid-frame. at_end must
    // drop too — the receiver cannot tell a tear from a quiet tail.
    chunk.data.resize(static_cast<size_t>(rng_.Uniform(chunk.data.size())));
    chunk.at_end = false;
    ++reads_torn_;
  }
  if (!chunk.data.empty() && profile_.flip_rate > 0.0 &&
      rng_.NextDouble() < profile_.flip_rate) {
    const uint64_t bit = rng_.Uniform(chunk.data.size() * 8);
    chunk.data[static_cast<size_t>(bit / 8)] ^=
        static_cast<char>(1u << (bit % 8));
    ++bits_flipped_;
  }
  return chunk;
}

Result<std::string> FaultInjectedTransport::FetchFile(
    const std::string& name) {
  GSV_RETURN_IF_ERROR(MaybeFail("fetch"));
  return base_->FetchFile(name);
}

Result<FenceInfo> FaultInjectedTransport::FetchFence() {
  if (down_) {
    ++ops_failed_;
    return Status::Unavailable("transport fault: fence (down)");
  }
  return base_->FetchFence();
}

Status FaultInjectedTransport::PublishFence(uint64_t epoch,
                                            const std::string& owner) {
  if (down_) {
    ++ops_failed_;
    return Status::Unavailable("transport fault: fence (down)");
  }
  return base_->PublishFence(epoch, owner);
}

void FaultInjectedTransport::Heal() {
  profile_.fail_rate = 0.0;
  profile_.stale_list_rate = 0.0;
  profile_.torn_read_rate = 0.0;
  profile_.duplicate_rate = 0.0;
  profile_.flip_rate = 0.0;
  down_ = false;
  forced_failures_ = 0;
  burst_remaining_ = 0;
}

}  // namespace gsv
