#include "replication/log_transport.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace gsv {

namespace fs = std::filesystem;

Result<std::vector<TransportSegment>> FileLogTransport::ListSegments() {
  GSV_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> infos,
                       ListWalSegments(dir_));
  std::vector<TransportSegment> segments;
  segments.reserve(infos.size());
  for (const WalSegmentInfo& info : infos) {
    TransportSegment segment;
    segment.name = info.name;
    segment.first_lsn = info.first_lsn;
    std::error_code ec;
    uintmax_t size = fs::file_size(info.path, ec);
    if (ec) {
      // Retired between listing and stat: treat the whole listing as a
      // transient miss so the caller retries against a settled view.
      return Status::Unavailable("transport: segment " + info.name +
                                 " vanished mid-listing");
    }
    segment.size = static_cast<uint64_t>(size);
    segments.push_back(std::move(segment));
  }
  return segments;
}

Result<TransportChunk> FileLogTransport::ReadSegment(
    const std::string& segment, uint64_t offset, uint64_t max_bytes) {
  if (segment.find('/') != std::string::npos) {
    return Status::InvalidArgument("transport: segment name with a path: " +
                                   segment);
  }
  const std::string path = dir_ + "/" + segment;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("transport: cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  const uint64_t size = static_cast<uint64_t>(in.tellg());
  TransportChunk chunk;
  chunk.offset = offset;
  if (offset >= size) {
    chunk.at_end = true;
    return chunk;
  }
  const uint64_t take = std::min<uint64_t>(max_bytes, size - offset);
  chunk.data.resize(static_cast<size_t>(take));
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(chunk.data.data(), static_cast<std::streamsize>(take));
  if (static_cast<uint64_t>(in.gcount()) != take) {
    return Status::Unavailable("transport: short read from " + path);
  }
  chunk.at_end = offset + take >= size;
  return chunk;
}

Result<std::string> FileLogTransport::FetchFile(const std::string& name) {
  if (name.find("..") != std::string::npos) {
    return Status::InvalidArgument("transport: path escape in " + name);
  }
  const std::string path = dir_ + "/" + name;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      return Status::NotFound("transport: no file " + name);
    }
    return Status::Unavailable("transport: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<FenceInfo> FileLogTransport::FetchFence() { return ReadFence(dir_); }

Status FileLogTransport::PublishFence(uint64_t epoch,
                                      const std::string& owner) {
  GSV_ASSIGN_OR_RETURN(FenceInfo standing, ReadFence(dir_));
  if (standing.epoch >= epoch) {
    return Status::FailedPrecondition(
        "transport: fence epoch " + std::to_string(standing.epoch) +
        " already at or above " + std::to_string(epoch));
  }
  return WriteFence(dir_, epoch, owner);
}

}  // namespace gsv
