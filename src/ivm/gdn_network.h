#ifndef GSV_IVM_GDN_NETWORK_H_
#define GSV_IVM_GDN_NETWORK_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/view_definition.h"
#include "core/view_storage.h"
#include "oem/store.h"
#include "oem/update.h"
#include "path/path_expression.h"
#include "query/condition.h"
#include "util/status.h"

namespace gsv {

// A generalized discrimination network (GDN, after Beyhl & Giese; Rete-style
// property-graph IVM, Szárnyas) for the §6 view classes Algorithm 1 cannot
// maintain: path-expression select paths, AND/OR condition trees, WITHIN
// scoping, and DAG bases with multiple derivations per object.
//
// The view definition compiles into a small network of memo nodes:
//
//   * one *reach* node — the select-path NFA run forward from the view
//     root. A partial match (N, s) means "some WITHIN-scoped path from the
//     root to N drives the NFA into state s"; N is a select candidate iff
//     an accepting-state match is alive at N.
//   * one *sat* node per WHERE predicate — the predicate's path NFA run
//     backward from its witnesses. A match (N, s) means "from N, state s
//     can reach an accepting state at an atomic object whose value
//     satisfies the comparison"; the predicate holds at X iff a start-state
//     match is alive at X. The leaves feeding these nodes are the PR 3
//     label and value-predicate postings (Initialize seeds witnesses from
//     one posting sweep when the predicate path ends in a concrete label).
//
// Every match records its *support set*: the axiom sentinel and/or the
// matches one graph edge away that derive it. Multi-derivation (DAG) bases
// just mean several supports; a match dies only when reevaluation of its
// support region finds no path back to an axiom (plain counting would leak
// self-sustaining support cycles). Presence in the memo table == alive.
//
// Updates apply by *reconciliation*: each event names an edge (or value)
// whose truth is re-read from the base store and the incident support edges
// are re-derived, so application is idempotent, order-robust across
// coalesced batches, and tolerant of at-least-once redelivery — the same
// contract the warehouse channel already demands. Membership changes emit
// through a ViewStorage, so deltas ride the existing WAL kViewDelta path.
//
// Limits: objects silently Put() into the store are picked up when an
// *event-visible* edge first touches them (the workload generators create
// fresh objects as single atomic leaves, and re-attached subtrees keep
// their memo state); a whole fresh subtree announced by one edge event
// needs Rebuild(). ANS INT views are rejected by ValidateDefinition.
class GdnEngine {
 public:
  struct Options {
    // Safety valve: when one Apply() touches more support edges than this,
    // the engine declares itself poisoned and the caller falls back to
    // quarantine + §4.4 resync + Rebuild().
    size_t max_propagations_per_update = size_t{1} << 22;
  };

  struct Stats {
    int64_t updates = 0;          // Apply() calls processed
    int64_t propagations = 0;     // support-edge additions + removals
    int64_t matches_created = 0;  // partial matches born
    int64_t matches_freed = 0;    // partial matches killed
    int64_t v_inserts = 0;        // membership deltas emitted
    int64_t v_deletes = 0;
    int64_t rebuilds = 0;         // Initialize()/Rebuild() runs
  };

  // OK iff this engine can maintain `def` (any §6 relaxation except
  // ANS INT, whose intersection database is not event-monitored).
  static Status ValidateDefinition(const ViewDefinition& def);

  // `root` is the resolved entry object of the view query. The store and
  // the definition's shared condition tree must outlive the engine.
  GdnEngine(const ObjectStore* base, const ViewDefinition& def, Oid root);
  GdnEngine(const ObjectStore* base, const ViewDefinition& def, Oid root,
            Options options);

  GdnEngine(const GdnEngine&) = delete;
  GdnEngine& operator=(const GdnEngine&) = delete;

  // Builds all memo tables and the member set from the current base state.
  // Also the recovery path: a poisoned or stale network Rebuild()s.
  Status Initialize();
  Status Rebuild() { return Initialize(); }

  // Applies one basic update: re-derives the affected support edges,
  // cascades aliveness changes, and emits exactly the membership deltas
  // (plus a value sync for a modified member) into `out`. Event values are
  // ignored — the engine re-reads the base store, so reporting level 1
  // suffices. Returns FailedPrecondition once poisoned.
  Status Apply(const Update& update, ViewStorage* out);

  // Diffs the engine's member set against `out` and emits the fixes; a
  // no-op when they already agree. Recovery runs this after loading or
  // rebuilding memos so tail-replayed events become convergent no-ops.
  Status Reconcile(ViewStorage* out);

  const OidSet& members() const { return members_; }
  // Live partial matches across all memo nodes.
  size_t match_count() const;
  // Network nodes: the reach node plus one sat node per predicate.
  size_t node_count() const { return 1 + sats_.size(); }
  const Stats& stats() const { return stats_; }
  bool poisoned() const { return poisoned_; }

  // Deterministic text image of the memo tables + member set, restored by
  // LoadFrom (which rejects malformed input — the caller then Rebuild()s).
  // Only valid against the exact base state the image was captured at.
  void SaveTo(std::ostream& out) const;
  Status LoadFrom(std::istream& in);

 private:
  // A partial match's support links. Keys are (oid id << 32 | state) of
  // peer matches in the same memo node, or kAxiom. Invariant: a match is
  // present in its table iff it is alive, and `in`/`out` reference only
  // present matches (plus kAxiom in `in`).
  struct Match {
    std::unordered_set<uint64_t> in;   // matches (or axiom) deriving this
    std::unordered_set<uint64_t> out;  // matches this one derives
  };
  using MemoTable = std::unordered_map<uint64_t, Match>;

  struct MemoNode {
    path_internal::PathNfa nfa;
    const Predicate* pred;  // nullptr for the reach node
    MemoTable table;
  };

  static constexpr uint64_t kAxiom = ~uint64_t{0};
  static uint64_t KeyOf(const Oid& oid, int state) {
    return (static_cast<uint64_t>(oid.id()) << 32) |
           static_cast<uint32_t>(state);
  }
  static Oid OidOf(uint64_t key) {
    return Oid::FromId(static_cast<uint32_t>(key >> 32));
  }
  static int StateOf(uint64_t key) {
    return static_cast<int>(key & 0xffffffffu);
  }

  // WITHIN scoping; the root is exempt (it is the supplied entry point).
  bool PassesFilter(const Oid& oid) const;

  // Links src -> dst (creating dst when absent) and cascades: a newly
  // alive match derives its own out-supports via DeriveOut.
  void AddSupport(MemoNode& node, uint64_t src, uint64_t dst);
  // Unlinks src -> dst; when dst loses its last *proven* support the
  // affected region is reevaluated and unreachable matches die.
  void RemoveSupport(MemoNode& node, uint64_t src, uint64_t dst);
  // Derives the support edges a newly created match sources (reach: down
  // the select NFA into children; sat: up the predicate NFA into parents).
  void DeriveOut(MemoNode& node, uint64_t key);
  // Region reevaluation after a support removal: collect the out-closure
  // of `seed`, re-prove aliveness from external/axiom supports, and erase
  // everything unreached (handles support cycles that counting cannot).
  void ReevaluateRegion(MemoNode& node, uint64_t seed);

  // Re-reads edge parent->child from the base and re-derives every
  // incident support edge in every memo node.
  void ReconcileEdge(const Oid& parent, const Oid& child);
  // Re-reads `oid`'s value and sets each sat node's axiom support at its
  // accepting states to the current truth of the predicate.
  void RefreshSatAxioms(const Oid& oid);
  // WITHIN flip: re-derives every edge whose filtered endpoint is `child`
  // (its membership in the scoping database just changed).
  void RefreshFilterAt(const Oid& event_parent, const Oid& child);

  void SeedSatAxioms(MemoNode& sat, const Oid& oid);
  bool ReachAccepting(const Oid& oid) const;
  bool CondHolds(const Oid& oid) const;
  bool IsMember(const Oid& oid) const;
  // Rechecks membership of every touched OID and emits the deltas.
  Status EmitChanges(ViewStorage* out);
  void ChargeBudget(size_t units);

  const ObjectStore* base_;
  ViewDefinition def_;
  Oid root_;
  Options options_;
  Oid within_oid_;            // invalid when the view has no WITHIN clause
  std::string within_name_;   // database name for InDatabase probes

  MemoNode reach_;
  std::vector<MemoNode> sats_;  // one per predicate, Predicates() order
  std::unordered_map<const Predicate*, size_t> sat_index_;

  OidSet members_;
  Stats stats_;
  bool poisoned_ = false;

  // Per-Apply scratch.
  std::unordered_set<uint32_t> touched_;  // oid ids whose matches changed
  std::deque<uint64_t> pending_;          // cascade worklist
  bool cascading_ = false;
  size_t budget_used_ = 0;
  size_t budget_ = 0;  // 0 = unlimited (Initialize)
};

}  // namespace gsv

#endif  // GSV_IVM_GDN_NETWORK_H_
