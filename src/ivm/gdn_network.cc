#include "ivm/gdn_network.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

namespace gsv {

Status GdnEngine::ValidateDefinition(const ViewDefinition& def) {
  if (def.query().ans_int_db.has_value()) {
    return Status::InvalidArgument(
        "the gdn engine cannot maintain ANS INT views (the intersection "
        "database is not event-monitored); got: " +
        def.ToString());
  }
  return Status::Ok();
}

GdnEngine::GdnEngine(const ObjectStore* base, const ViewDefinition& def,
                     Oid root)
    : GdnEngine(base, def, std::move(root), Options{}) {}

GdnEngine::GdnEngine(const ObjectStore* base, const ViewDefinition& def,
                     Oid root, Options options)
    : base_(base),
      def_(def),
      root_(std::move(root)),
      options_(options),
      reach_{path_internal::PathNfa(def_.query().select_path), nullptr, {}} {
  if (def_.query().within_db.has_value()) {
    within_name_ = *def_.query().within_db;
    within_oid_ = base_->DatabaseOid(within_name_);
  }
  // The Predicate objects live in the Condition's shared node tree, which
  // def_ keeps alive; each PathNfa points into them, so addresses must stay
  // stable — they do, the tree is immutable shared_ptr structure.
  const std::vector<const Predicate*> preds = def_.query().where.Predicates();
  sats_.reserve(preds.size());
  for (const Predicate* pred : preds) {
    sat_index_[pred] = sats_.size();
    sats_.push_back(MemoNode{path_internal::PathNfa(pred->path), pred, {}});
  }
}

bool GdnEngine::PassesFilter(const Oid& oid) const {
  if (within_name_.empty()) return true;
  return oid == root_ || base_->InDatabase(within_name_, oid);
}

void GdnEngine::ChargeBudget(size_t units) {
  budget_used_ += units;
  if (budget_ != 0 && budget_used_ > budget_) poisoned_ = true;
}

size_t GdnEngine::match_count() const {
  size_t total = reach_.table.size();
  for (const MemoNode& sat : sats_) total += sat.table.size();
  return total;
}

// ---- Support-set maintenance ----

void GdnEngine::AddSupport(MemoNode& node, uint64_t src, uint64_t dst) {
  if (poisoned_) return;
  Match* src_match = nullptr;
  if (src != kAxiom) {
    auto sit = node.table.find(src);
    if (sit == node.table.end()) return;  // a dead source derives nothing
    src_match = &sit->second;
  }
  auto [it, created] = node.table.try_emplace(dst);
  if (!it->second.in.insert(src).second) return;  // already linked
  ++stats_.propagations;
  ChargeBudget(1);
  // Rehashing moves buckets but never elements; src_match stays valid.
  if (src_match != nullptr) src_match->out.insert(dst);
  if (!created) return;
  ++stats_.matches_created;
  touched_.insert(static_cast<uint32_t>(dst >> 32));
  pending_.push_back(dst);
  if (cascading_) return;  // the outermost call drains the worklist
  cascading_ = true;
  while (!pending_.empty()) {
    if (poisoned_) {
      pending_.clear();
      break;
    }
    const uint64_t key = pending_.front();
    pending_.pop_front();
    DeriveOut(node, key);
  }
  cascading_ = false;
}

void GdnEngine::RemoveSupport(MemoNode& node, uint64_t src, uint64_t dst) {
  if (poisoned_) return;
  auto it = node.table.find(dst);
  if (it == node.table.end()) return;
  if (it->second.in.erase(src) == 0) return;
  ++stats_.propagations;
  ChargeBudget(1);
  if (src != kAxiom) {
    auto sit = node.table.find(src);
    if (sit != node.table.end()) sit->second.out.erase(dst);
  }
  // Still axiomatic: definitely alive. Anything else needs a region proof —
  // a non-empty in-set is not evidence on cyclic support graphs, where a
  // detached cycle sustains itself.
  if (it->second.in.count(kAxiom) != 0) return;
  ReevaluateRegion(node, dst);
}

void GdnEngine::DeriveOut(MemoNode& node, uint64_t key) {
  if (node.table.find(key) == node.table.end()) return;
  const Oid oid = OidOf(key);
  const int state = StateOf(key);
  const Object* object = base_->Get(oid);
  if (object == nullptr) return;
  if (node.pred == nullptr) {
    // Reach: run the select NFA forward into the children, exactly the
    // expansion step of EvalExpression (filter gates the child; a missing
    // child object is skipped).
    if (!object->IsSet()) return;
    for (const Oid& child : object->children()) {
      if (!PassesFilter(child)) continue;
      const Object* child_object = base_->Get(child);
      if (child_object == nullptr) continue;
      for (int next : node.nfa.Step(state, child_object->label())) {
        AddSupport(node, key, KeyOf(child, next));
        if (poisoned_) return;
      }
    }
    return;
  }
  // Sat: climb to the parents backward through the predicate NFA. This
  // match is the *child* endpoint of every climbed edge, so its own filter
  // gates the climb — the start object of a condition path is exempt only
  // at the read site (CondHolds), mirroring the entry exemption of the
  // forward evaluator.
  if (!PassesFilter(oid)) return;
  const std::string& label = object->label();
  const int states = static_cast<int>(node.nfa.state_count());
  for (const Oid& parent : base_->Parents(oid)) {
    const Object* parent_object = base_->Get(parent);
    if (parent_object == nullptr || !parent_object->IsSet()) continue;
    for (int t = 0; t < states; ++t) {
      for (int next : node.nfa.Step(t, label)) {
        if (next == state) {
          AddSupport(node, key, KeyOf(parent, t));
          break;
        }
      }
      if (poisoned_) return;
    }
  }
}

void GdnEngine::ReevaluateRegion(MemoNode& node, uint64_t seed) {
  if (node.table.find(seed) == node.table.end()) return;
  // The affected region is the out-closure of the removal target: every
  // match whose derivation could route through it. Matches outside the
  // region cannot depend on it (they would be in the closure), so their
  // aliveness is unchanged and they count as external proof below.
  std::vector<uint64_t> region;
  std::unordered_set<uint64_t> in_region;
  region.push_back(seed);
  in_region.insert(seed);
  for (size_t i = 0; i < region.size(); ++i) {
    auto it = node.table.find(region[i]);
    if (it == node.table.end()) continue;
    for (uint64_t next : it->second.out) {
      if (in_region.insert(next).second) region.push_back(next);
    }
  }
  ChargeBudget(region.size());
  if (poisoned_) return;
  // Re-prove aliveness: seed from members with an axiom or external
  // in-support, then spread along support edges inside the region.
  std::deque<uint64_t> queue;
  std::unordered_set<uint64_t> alive;
  for (uint64_t key : region) {
    const Match& match = node.table.find(key)->second;
    for (uint64_t src : match.in) {
      if (src == kAxiom || in_region.count(src) == 0) {
        if (alive.insert(key).second) queue.push_back(key);
        break;
      }
    }
  }
  while (!queue.empty()) {
    const uint64_t key = queue.front();
    queue.pop_front();
    for (uint64_t next : node.table.find(key)->second.out) {
      if (in_region.count(next) != 0 && alive.insert(next).second) {
        queue.push_back(next);
      }
    }
  }
  if (alive.size() == region.size()) return;
  std::vector<uint64_t> dead;
  std::unordered_set<uint64_t> dead_set;
  for (uint64_t key : region) {
    if (alive.count(key) == 0) {
      dead.push_back(key);
      dead_set.insert(key);
    }
  }
  for (uint64_t key : dead) {
    Match& match = node.table.find(key)->second;
    for (uint64_t src : match.in) {
      if (src == kAxiom || dead_set.count(src) != 0) continue;
      auto sit = node.table.find(src);
      if (sit != node.table.end()) sit->second.out.erase(key);
    }
    for (uint64_t dst : match.out) {
      if (dead_set.count(dst) != 0) continue;
      auto dit = node.table.find(dst);
      // The region proof showed dst alive, so it keeps another live
      // support path; dropping this edge cannot kill it.
      if (dit != node.table.end()) dit->second.in.erase(key);
    }
    ++stats_.matches_freed;
    ++stats_.propagations;
    touched_.insert(static_cast<uint32_t>(key >> 32));
  }
  for (uint64_t key : dead) node.table.erase(key);
  ChargeBudget(dead.size());
}

// ---- Event reconciliation ----

void GdnEngine::ReconcileEdge(const Oid& parent, const Oid& child) {
  const Object* parent_object = base_->Get(parent);
  const Object* child_object = base_->Get(child);
  const bool edge = parent_object != nullptr && parent_object->IsSet() &&
                    parent_object->children().Contains(child);
  const bool derivable =
      edge && child_object != nullptr && PassesFilter(child);
  {
    const int states = static_cast<int>(reach_.nfa.state_count());
    for (int sp = 0; sp < states; ++sp) {
      const uint64_t src = KeyOf(parent, sp);
      if (reach_.table.find(src) == reach_.table.end()) continue;
      if (derivable) {
        for (int sc : reach_.nfa.Step(sp, child_object->label())) {
          AddSupport(reach_, src, KeyOf(child, sc));
        }
      } else {
        for (int sc = 0; sc < states; ++sc) {
          RemoveSupport(reach_, src, KeyOf(child, sc));
        }
      }
      if (poisoned_) return;
    }
  }
  for (MemoNode& sat : sats_) {
    const int states = static_cast<int>(sat.nfa.state_count());
    for (int sc = 0; sc < states; ++sc) {
      const uint64_t src = KeyOf(child, sc);
      if (sat.table.find(src) == sat.table.end()) continue;
      if (derivable) {
        for (int t = 0; t < states; ++t) {
          for (int next : sat.nfa.Step(t, child_object->label())) {
            if (next == sc) {
              AddSupport(sat, src, KeyOf(parent, t));
              break;
            }
          }
        }
      } else {
        for (int t = 0; t < states; ++t) {
          RemoveSupport(sat, src, KeyOf(parent, t));
        }
      }
      if (poisoned_) return;
    }
  }
}

void GdnEngine::RefreshSatAxioms(const Oid& oid) {
  const Object* object = base_->Get(oid);
  const bool atomic = object != nullptr && object->IsAtomic();
  for (MemoNode& sat : sats_) {
    const bool want = atomic && sat.pred->Holds(object->value());
    const int states = static_cast<int>(sat.nfa.state_count());
    for (int s = 0; s < states; ++s) {
      if (!sat.nfa.IsAccepting(s)) continue;
      const uint64_t key = KeyOf(oid, s);
      if (want) {
        AddSupport(sat, kAxiom, key);
      } else {
        RemoveSupport(sat, kAxiom, key);
      }
      if (poisoned_) return;
    }
  }
}

void GdnEngine::RefreshFilterAt(const Oid& event_parent, const Oid& child) {
  // A scoping-database edge both is a real graph edge and flips filter()
  // for the child: re-derive the event edge itself plus every other edge
  // whose *filtered* endpoint is the child (reach edges into it, sat climbs
  // out of it). Edges where the child is the parent endpoint are ungated
  // by its filter and stay put.
  RefreshSatAxioms(child);
  if (poisoned_) return;
  ReconcileEdge(event_parent, child);
  if (poisoned_) return;
  for (const Oid& parent : base_->Parents(child)) {
    if (parent == event_parent) continue;
    ReconcileEdge(parent, child);
    if (poisoned_) return;
  }
}

// ---- Membership ----

bool GdnEngine::ReachAccepting(const Oid& oid) const {
  const int states = static_cast<int>(reach_.nfa.state_count());
  for (int s = 0; s < states; ++s) {
    if (reach_.nfa.IsAccepting(s) &&
        reach_.table.count(KeyOf(oid, s)) != 0) {
      return true;
    }
  }
  return false;
}

bool GdnEngine::CondHolds(const Oid& oid) const {
  const Condition& where = def_.query().where;
  if (where.IsTrivial()) return true;
  return where.EvaluateWith([this, &oid](const Predicate& pred) {
    auto it = sat_index_.find(&pred);
    if (it == sat_index_.end()) return false;
    const MemoNode& sat = sats_[it->second];
    for (int s : sat.nfa.start_states()) {
      if (sat.table.count(KeyOf(oid, s)) != 0) return true;
    }
    return false;
  });
}

bool GdnEngine::IsMember(const Oid& oid) const {
  return ReachAccepting(oid) && CondHolds(oid);
}

Status GdnEngine::EmitChanges(ViewStorage* out) {
  if (touched_.empty()) return Status::Ok();
  std::vector<Oid> oids;
  oids.reserve(touched_.size());
  for (uint32_t id : touched_) oids.push_back(Oid::FromId(id));
  SortOidsLexicographic(&oids);  // deterministic emission order
  for (const Oid& oid : oids) {
    const bool now = IsMember(oid);
    const bool was = members_.Contains(oid);
    if (now == was) continue;
    if (now) {
      const Object* object = base_->Get(oid);
      if (object == nullptr) continue;  // cannot materialize a ghost
      members_.Insert(oid);
      GSV_RETURN_IF_ERROR(out->VInsert(*object));
      ++stats_.v_inserts;
    } else {
      members_.Erase(oid);
      GSV_RETURN_IF_ERROR(out->VDelete(oid));
      ++stats_.v_deletes;
    }
  }
  touched_.clear();
  return Status::Ok();
}

// ---- Driving ----

Status GdnEngine::Apply(const Update& update, ViewStorage* out) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "gdn network is poisoned (propagation budget exhausted); "
        "Rebuild() required");
  }
  ++stats_.updates;
  const bool parent_was_member = members_.Contains(update.parent);
  touched_.clear();
  budget_used_ = 0;
  budget_ = options_.max_propagations_per_update;
  switch (update.kind) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      if (within_oid_.valid() && update.parent == within_oid_) {
        RefreshFilterAt(update.parent, update.child);
      } else {
        ReconcileEdge(update.parent, update.child);
        // A freshly evented object may be new to the network (the store
        // Put() is silent); make sure its witness axioms reflect its value.
        if (!poisoned_) RefreshSatAxioms(update.child);
      }
      break;
    case UpdateKind::kModify:
      RefreshSatAxioms(update.parent);
      touched_.insert(update.parent.id());
      break;
  }
  budget_ = 0;
  if (poisoned_) {
    pending_.clear();
    return Status::FailedPrecondition(
        "gdn propagation budget exhausted applying " + update.ToString() +
        "; network poisoned, resync required");
  }
  GSV_RETURN_IF_ERROR(EmitChanges(out));
  if (update.kind == UpdateKind::kModify &&
      members_.Contains(update.parent)) {
    // Sync the surviving member's delegate value from the *store* (the
    // event may carry no values at reporting level 1).
    const Object* object = base_->Get(update.parent);
    if (object != nullptr) {
      GSV_RETURN_IF_ERROR(out->SyncUpdate(
          Update::Modify(update.parent, update.old_value, object->value())));
    }
  } else if (update.kind != UpdateKind::kModify && parent_was_member &&
             members_.Contains(update.parent)) {
    // Insert/delete under a continuing member: the delegate's child set
    // must track the base (§3.2). A member VInserted above already copied
    // its full current value, so only was-and-still members sync here.
    GSV_RETURN_IF_ERROR(out->SyncUpdate(update));
  }
  return Status::Ok();
}

Status GdnEngine::Initialize() {
  poisoned_ = false;
  reach_.table.clear();
  for (MemoNode& sat : sats_) sat.table.clear();
  members_.clear();
  touched_.clear();
  pending_.clear();
  budget_ = 0;  // rebuilds are never budget-limited
  budget_used_ = 0;
  ++stats_.rebuilds;
  if (!within_name_.empty()) within_oid_ = base_->DatabaseOid(within_name_);

  // Sat leaves: each predicate's witnesses. When the predicate path ends in
  // a concrete label, one sweep of that label's value postings answers the
  // comparison in place (bucketed int32s decode exactly; other values are
  // confirmed against the store) — the PR 3 postings are the network's leaf
  // nodes. Wildcard tails fall back to a store scan. Seeds are collected
  // first and cascaded after, so no cascade runs mid-iteration.
  LabelIndexSnapshotPtr snapshot = base_->AcquireIndexSnapshot();
  for (MemoNode& sat : sats_) {
    std::vector<Oid> seeds;
    const PathExpression& path = sat.pred->path;
    const bool concrete_tail =
        path.size() > 0 && path.atoms().back().kind == PathAtom::Kind::kLabel;
    if (snapshot != nullptr && concrete_tail) {
      const std::string& label = path.atoms().back().label;
      if (const Postings* values = snapshot->Values(label)) {
        values->Scan([&](uint64_t v) {
          const int64_t decoded = static_cast<int64_t>(PairLo(v)) + INT32_MIN;
          if (sat.pred->Holds(Value::Int(decoded))) {
            seeds.push_back(Oid::FromId(PairHi(v)));
          }
        });
      }
      if (const Postings* other = snapshot->ValuesOther(label)) {
        other->Scan([&](uint64_t v) {
          const Oid oid = Oid::FromId(static_cast<uint32_t>(v));
          const Object* object = base_->Get(oid);
          if (object != nullptr && object->IsAtomic() &&
              sat.pred->Holds(object->value())) {
            seeds.push_back(oid);
          }
        });
      }
    } else {
      base_->ForEach([&](const Object& object) {
        if (object.IsAtomic() && sat.pred->Holds(object.value())) {
          seeds.push_back(object.oid());
        }
      });
    }
    for (const Oid& seed : seeds) SeedSatAxioms(sat, seed);
  }

  // Reach: one axiom per start state at the root; the creation cascade
  // unrolls the whole forward memo from there.
  if (base_->Contains(root_)) {
    for (int s : reach_.nfa.start_states()) {
      AddSupport(reach_, kAxiom, KeyOf(root_, s));
    }
  }

  // Members straight from the fresh memos.
  std::vector<Oid> candidates;
  std::unordered_set<uint32_t> seen;
  for (const auto& [key, match] : reach_.table) {
    (void)match;
    if (!reach_.nfa.IsAccepting(StateOf(key))) continue;
    const uint32_t id = static_cast<uint32_t>(key >> 32);
    if (seen.insert(id).second) candidates.push_back(Oid::FromId(id));
  }
  for (const Oid& candidate : candidates) {
    if (CondHolds(candidate)) members_.Insert(candidate);
  }
  touched_.clear();
  return Status::Ok();
}

void GdnEngine::SeedSatAxioms(MemoNode& sat, const Oid& oid) {
  const int states = static_cast<int>(sat.nfa.state_count());
  for (int s = 0; s < states; ++s) {
    if (sat.nfa.IsAccepting(s)) AddSupport(sat, kAxiom, KeyOf(oid, s));
  }
}

Status GdnEngine::Reconcile(ViewStorage* out) {
  const OidSet current = out->BaseMembers();
  for (const Oid& member : members_) {
    if (current.Contains(member)) continue;
    const Object* object = base_->Get(member);
    if (object == nullptr) continue;
    GSV_RETURN_IF_ERROR(out->VInsert(*object));
    ++stats_.v_inserts;
  }
  for (const Oid& member : current) {
    if (members_.Contains(member)) continue;
    GSV_RETURN_IF_ERROR(out->VDelete(member));
    ++stats_.v_deletes;
  }
  return Status::Ok();
}

// ---- Persistence ----

namespace {

// Rows sort by (oid string, state): deterministic across runs and engines.
struct MemoRow {
  std::string oid;
  int state;
  const GdnEngine* unused = nullptr;
};

}  // namespace

void GdnEngine::SaveTo(std::ostream& out) const {
  out << "gdn-memo v1 " << def_.name() << "\n";
  out << "members " << members_.size() << "\n";
  for (const Oid& member : members_) out << member.str() << "\n";
  auto dump = [&out](const MemoTable& table, const std::string& tag) {
    out << "node " << tag << " " << table.size() << "\n";
    std::vector<uint64_t> keys;
    keys.reserve(table.size());
    for (const auto& [key, match] : table) {
      (void)match;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end(), [](uint64_t a, uint64_t b) {
      const std::string& sa = OidOf(a).str();
      const std::string& sb = OidOf(b).str();
      if (sa != sb) return sa < sb;
      return StateOf(a) < StateOf(b);
    });
    for (uint64_t key : keys) {
      const Match& match = table.find(key)->second;
      out << "m " << OidOf(key).str() << " " << StateOf(key) << " "
          << match.in.size();
      std::vector<uint64_t> sources(match.in.begin(), match.in.end());
      std::sort(sources.begin(), sources.end(),
                [](uint64_t a, uint64_t b) {
                  if (a == kAxiom) return b != kAxiom;
                  if (b == kAxiom) return false;
                  const std::string& sa = OidOf(a).str();
                  const std::string& sb = OidOf(b).str();
                  if (sa != sb) return sa < sb;
                  return StateOf(a) < StateOf(b);
                });
      for (uint64_t src : sources) {
        if (src == kAxiom) {
          out << " @";
        } else {
          out << " " << StateOf(src) << ":" << OidOf(src).str();
        }
      }
      out << "\n";
    }
  };
  dump(reach_.table, "reach");
  for (size_t k = 0; k < sats_.size(); ++k) {
    dump(sats_[k].table, "sat" + std::to_string(k));
  }
  out << "end\n";
}

Status GdnEngine::LoadFrom(std::istream& in) {
  const Status malformed = Status::DataLoss("gdn memo image malformed");
  std::string tok;
  std::string version;
  std::string name;
  if (!(in >> tok >> version >> name) || tok != "gdn-memo" ||
      version != "v1" || name != def_.name()) {
    return malformed;
  }
  size_t member_count = 0;
  if (!(in >> tok >> member_count) || tok != "members") return malformed;
  OidSet members;
  for (size_t i = 0; i < member_count; ++i) {
    if (!(in >> tok)) return malformed;
    members.Insert(Oid(tok));
  }
  auto load_node = [&](MemoNode& node, const std::string& want_tag) -> bool {
    size_t count = 0;
    std::string tag;
    if (!(in >> tok >> tag >> count) || tok != "node" || tag != want_tag) {
      return false;
    }
    const int states = static_cast<int>(node.nfa.state_count());
    MemoTable table;
    table.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      std::string oid_text;
      int state = 0;
      size_t in_count = 0;
      if (!(in >> tok >> oid_text >> state >> in_count) || tok != "m" ||
          state < 0 || state >= states) {
        return false;
      }
      Match& match = table[KeyOf(Oid(oid_text), state)];
      for (size_t j = 0; j < in_count; ++j) {
        if (!(in >> tok)) return false;
        if (tok == "@") {
          match.in.insert(kAxiom);
          continue;
        }
        const size_t colon = tok.find(':');
        if (colon == std::string::npos) return false;
        int src_state = 0;
        try {
          src_state = std::stoi(tok.substr(0, colon));
        } catch (...) {
          return false;
        }
        if (src_state < 0 || src_state >= states) return false;
        match.in.insert(KeyOf(Oid(tok.substr(colon + 1)), src_state));
      }
    }
    // Mirror the out-links and verify every referenced source is present
    // (the alive-iff-present invariant).
    for (auto& [key, match] : table) {
      for (uint64_t src : match.in) {
        if (src == kAxiom) continue;
        auto sit = table.find(src);
        if (sit == table.end()) return false;
        sit->second.out.insert(key);
      }
    }
    node.table = std::move(table);
    return true;
  };
  if (!load_node(reach_, "reach")) return malformed;
  for (size_t k = 0; k < sats_.size(); ++k) {
    if (!load_node(sats_[k], "sat" + std::to_string(k))) return malformed;
  }
  if (!(in >> tok) || tok != "end") return malformed;
  members_ = std::move(members);
  poisoned_ = false;
  touched_.clear();
  pending_.clear();
  if (!within_name_.empty()) within_oid_ = base_->DatabaseOid(within_name_);
  return Status::Ok();
}

}  // namespace gsv
