#include "path/path_index.h"

#include <algorithm>

namespace gsv {

namespace {

inline void CountProbe(StoreMetrics* metrics) {
  if (metrics != nullptr) {
    metrics->index_probes.fetch_add(1, std::memory_order_relaxed);
  }
}

// Scans the postings range of every frontier node (sorted ascending, one
// merged monotonic sweep), collecting the lo words. The output is re-sorted:
// ranges are grouped by hi word, so concatenating them does not keep the lo
// words globally ordered.
void StepScan(const Postings& postings, const std::vector<uint32_t>& frontier,
              const std::function<bool(uint32_t)>* filter,
              StoreMetrics* metrics, std::vector<uint32_t>* out) {
  out->clear();
  if (metrics != nullptr) {
    metrics->index_probes.fetch_add(static_cast<int64_t>(frontier.size()),
                                    std::memory_order_relaxed);
  }
  postings.ScanHiRanges(frontier, [&](uint64_t value) {
    uint32_t other = PairLo(value);
    if (filter != nullptr && !(*filter)(other)) return;
    out->push_back(other);
  });
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace

std::vector<uint32_t> IndexEvalPathIds(
    const LabelIndexSnapshot& snapshot, uint32_t start,
    const std::string& start_label, const Path& path,
    const std::function<bool(uint32_t)>* filter, StoreMetrics* metrics) {
  std::vector<uint32_t> frontier{start};
  std::vector<uint32_t> next;
  const std::string* prev_label = &start_label;
  for (size_t i = 0; i < path.size() && !frontier.empty(); ++i) {
    const StepBucket* bucket = snapshot.Step(*prev_label, path.label(i));
    if (bucket == nullptr) {
      CountProbe(metrics);
      return {};
    }
    StepScan(bucket->down, frontier, filter, metrics, &next);
    frontier.swap(next);
    prev_label = &path.label(i);
  }
  return frontier;
}

std::vector<uint32_t> IndexAncestorIds(const LabelIndexSnapshot& snapshot,
                                       uint32_t n, const Path& path,
                                       StoreMetrics* metrics) {
  // Existence + label check on the target, straight from the label postings.
  CountProbe(metrics);
  const Postings* targets = snapshot.Labels(path.back());
  if (targets == nullptr || !targets->Contains(n)) return {};

  std::vector<uint32_t> frontier{n};
  std::vector<uint32_t> next;
  for (size_t j = path.size(); j-- > 1;) {
    const StepBucket* bucket =
        snapshot.Step(path.label(j - 1), path.label(j));
    if (bucket == nullptr) {
      CountProbe(metrics);
      return {};
    }
    StepScan(bucket->up, frontier, /*filter=*/nullptr, metrics, &next);
    frontier.swap(next);
    if (frontier.empty()) return {};
  }

  // Last climb step: the ancestors' own label is unconstrained.
  const Postings* up = snapshot.UpAny(path.label(0));
  if (up == nullptr) {
    CountProbe(metrics);
    return {};
  }
  std::vector<uint32_t> ancestors;
  StepScan(*up, frontier, /*filter=*/nullptr, metrics, &ancestors);
  return ancestors;
}

std::vector<uint32_t> IndexStepDownIds(const LabelIndexSnapshot& snapshot,
                                       const std::string& prev_label,
                                       const std::string& label,
                                       const std::vector<uint32_t>& frontier,
                                       StoreMetrics* metrics) {
  const StepBucket* bucket = snapshot.Step(prev_label, label);
  if (bucket == nullptr) {
    CountProbe(metrics);
    return {};
  }
  std::vector<uint32_t> next;
  StepScan(bucket->down, frontier, /*filter=*/nullptr, metrics, &next);
  return next;
}

bool IndexHasPathFromTo(const LabelIndexSnapshot& snapshot, uint32_t from,
                        uint32_t to, const Path& path, StoreMetrics* metrics) {
  CountProbe(metrics);
  const Postings* targets = snapshot.Labels(path.back());
  if (targets == nullptr || !targets->Contains(to)) return false;

  std::vector<uint32_t> frontier{to};
  std::vector<uint32_t> next;
  for (size_t j = path.size(); j-- > 1;) {
    const StepBucket* bucket =
        snapshot.Step(path.label(j - 1), path.label(j));
    if (bucket == nullptr) {
      CountProbe(metrics);
      return false;
    }
    StepScan(bucket->up, frontier, /*filter=*/nullptr, metrics, &next);
    frontier.swap(next);
    if (frontier.empty()) return false;
  }

  const Postings* up = snapshot.UpAny(path.label(0));
  if (up == nullptr) {
    CountProbe(metrics);
    return false;
  }
  for (uint32_t node : frontier) {
    CountProbe(metrics);
    if (up->Contains(PackPair(node, from))) return true;
  }
  return false;
}

}  // namespace gsv
