#include "path/path.h"

#include <cctype>

#include "util/string_util.h"

namespace gsv {
namespace {

bool ValidLabel(std::string_view label) {
  if (label.empty()) return false;
  for (char c : label) {
    if (c == '.' || c == '*' || c == '?' || std::isspace(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<Path> Path::Parse(std::string_view text) {
  if (text.empty()) return Path();
  std::vector<std::string> labels = Split(text, '.');
  for (const std::string& label : labels) {
    if (!ValidLabel(label)) {
      return Status::InvalidArgument("invalid path label '" + label +
                                     "' in path '" + std::string(text) + "'");
    }
  }
  return Path(std::move(labels));
}

Path Path::Prefix(size_t n) const {
  return Path(std::vector<std::string>(labels_.begin(),
                                       labels_.begin() + std::min(n, size())));
}

Path Path::Suffix(size_t n) const {
  return Path(std::vector<std::string>(labels_.begin() + std::min(n, size()),
                                       labels_.end()));
}

Path Path::Concat(const Path& other) const {
  std::vector<std::string> labels = labels_;
  labels.insert(labels.end(), other.labels_.begin(), other.labels_.end());
  return Path(std::move(labels));
}

bool Path::StartsWith(const Path& prefix) const {
  if (prefix.size() > size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (labels_[i] != prefix.labels_[i]) return false;
  }
  return true;
}

bool Path::EndsWith(const Path& suffix) const {
  if (suffix.size() > size()) return false;
  size_t offset = size() - suffix.size();
  for (size_t i = 0; i < suffix.size(); ++i) {
    if (labels_[offset + i] != suffix.labels_[i]) return false;
  }
  return true;
}

std::string Path::ToString() const { return Join(labels_, "."); }

}  // namespace gsv
