#include "path/path_expression.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/string_util.h"

namespace gsv {

Result<PathExpression> PathExpression::Parse(std::string_view text) {
  if (text.empty()) return PathExpression();
  std::vector<PathAtom> atoms;
  for (const std::string& piece : Split(text, '.')) {
    if (piece == "*") {
      atoms.push_back(PathAtom::AnyPath());
    } else if (piece == "?") {
      atoms.push_back(PathAtom::AnyLabel());
    } else {
      GSV_ASSIGN_OR_RETURN(Path single, Path::Parse(piece));
      if (single.size() != 1) {
        return Status::InvalidArgument("invalid path expression component '" +
                                       piece + "' in '" + std::string(text) +
                                       "'");
      }
      atoms.push_back(PathAtom::Label(single.label(0)));
    }
  }
  return PathExpression(std::move(atoms));
}

PathExpression PathExpression::FromPath(const Path& path) {
  std::vector<PathAtom> atoms;
  atoms.reserve(path.size());
  for (const std::string& label : path.labels()) {
    atoms.push_back(PathAtom::Label(label));
  }
  return PathExpression(std::move(atoms));
}

bool PathExpression::IsConstant() const {
  return std::all_of(atoms_.begin(), atoms_.end(), [](const PathAtom& a) {
    return a.kind == PathAtom::Kind::kLabel;
  });
}

Path PathExpression::ToPath() const {
  std::vector<std::string> labels;
  labels.reserve(atoms_.size());
  for (const PathAtom& atom : atoms_) labels.push_back(atom.label);
  return Path(std::move(labels));
}

bool PathExpression::Matches(const Path& path) const {
  // DP over (atom index, label index): dp[i][j] = atoms [i..) match
  // labels [j..). Rolling one-dimensional variant, right to left.
  const size_t m = atoms_.size();
  const size_t n = path.size();
  // dp[j] for atom row i+1; next[j] for row i.
  std::vector<char> dp(n + 1, 0);
  dp[n] = 1;
  for (size_t i = m; i-- > 0;) {
    std::vector<char> next(n + 1, 0);
    const PathAtom& atom = atoms_[i];
    switch (atom.kind) {
      case PathAtom::Kind::kAnyPath:
        // next[j] = dp[j] || next[j+1]  (consume zero, or one label and
        // stay on this atom). Compute right to left.
        for (size_t j = n + 1; j-- > 0;) {
          next[j] = dp[j] || (j < n && next[j + 1]);
        }
        break;
      case PathAtom::Kind::kAnyLabel:
        for (size_t j = 0; j < n; ++j) next[j] = dp[j + 1];
        break;
      case PathAtom::Kind::kLabel:
        for (size_t j = 0; j < n; ++j) {
          next[j] = dp[j + 1] && path.label(j) == atom.label;
        }
        break;
    }
    dp = std::move(next);
  }
  return dp[0] != 0;
}

namespace path_internal {

PathNfa::PathNfa(const PathExpression& expr)
    : expr_(&expr), atom_count_(expr.size()) {
  start_ = EpsilonClosure(0);
}

bool PathNfa::IsAccepting(int state) const {
  return static_cast<size_t>(state) == atom_count_;
}

std::vector<int> PathNfa::EpsilonClosure(int state) const {
  // '*' atoms can be skipped without consuming a label.
  std::vector<int> closure;
  int s = state;
  closure.push_back(s);
  while (static_cast<size_t>(s) < atom_count_ &&
         expr_->atoms()[s].kind == PathAtom::Kind::kAnyPath) {
    ++s;
    closure.push_back(s);
  }
  return closure;
}

std::vector<int> PathNfa::Step(int state, const std::string& label) const {
  std::vector<int> out;
  if (static_cast<size_t>(state) >= atom_count_) return out;
  const PathAtom& atom = expr_->atoms()[state];
  switch (atom.kind) {
    case PathAtom::Kind::kAnyPath: {
      // Stay on the '*' (consume one label); epsilon closure re-adds the
      // states after it.
      for (int s : EpsilonClosure(state)) {
        if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
      }
      return out;
    }
    case PathAtom::Kind::kAnyLabel:
      return EpsilonClosure(state + 1);
    case PathAtom::Kind::kLabel:
      if (atom.label == label) return EpsilonClosure(state + 1);
      return out;
  }
  return out;
}

std::vector<int> PathNfa::StepAll(const std::vector<int>& states,
                                  const std::string& label) const {
  std::vector<int> out;
  for (int state : states) {
    for (int next : Step(state, label)) {
      if (std::find(out.begin(), out.end(), next) == out.end()) {
        out.push_back(next);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool PathNfa::AnyAccepting(const std::vector<int>& states) const {
  return std::any_of(states.begin(), states.end(),
                     [this](int s) { return IsAccepting(s); });
}

}  // namespace path_internal

bool PathExpression::Contains(const PathExpression& other) const {
  // Decide L(other) ⊆ L(this) by a product search over
  // (states of other-NFA, states of this-NFA). Wildcards treat every label
  // not mentioned in either expression identically, so it suffices to try
  // the mentioned labels plus one fresh symbol.
  using path_internal::PathNfa;
  PathNfa sub(other);
  PathNfa super(*this);

  std::vector<std::string> alphabet;
  auto collect = [&alphabet](const PathExpression& e) {
    for (const PathAtom& atom : e.atoms()) {
      if (atom.kind == PathAtom::Kind::kLabel) alphabet.push_back(atom.label);
    }
  };
  collect(*this);
  collect(other);
  std::sort(alphabet.begin(), alphabet.end());
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                 alphabet.end());
  alphabet.push_back("\x01__fresh__");  // cannot be a user label

  auto key = [](const std::vector<int>& a, const std::vector<int>& b) {
    std::string k;
    for (int s : a) k += std::to_string(s) + ",";
    k += "|";
    for (int s : b) k += std::to_string(s) + ",";
    return k;
  };

  std::unordered_set<std::string> seen;
  std::vector<std::pair<std::vector<int>, std::vector<int>>> stack;
  std::vector<int> sub_start = sub.start_states();
  std::vector<int> super_start = super.start_states();
  std::sort(sub_start.begin(), sub_start.end());
  std::sort(super_start.begin(), super_start.end());
  stack.emplace_back(sub_start, super_start);
  seen.insert(key(sub_start, super_start));

  while (!stack.empty()) {
    auto [sub_states, super_states] = stack.back();
    stack.pop_back();
    if (sub.AnyAccepting(sub_states) && !super.AnyAccepting(super_states)) {
      return false;  // witness word in L(other) \ L(this)
    }
    for (const std::string& label : alphabet) {
      std::vector<int> next_sub = sub.StepAll(sub_states, label);
      if (next_sub.empty()) continue;  // dead for `other`: irrelevant
      std::vector<int> next_super = super.StepAll(super_states, label);
      std::string k = key(next_sub, next_super);
      if (seen.insert(k).second) stack.emplace_back(next_sub, next_super);
    }
  }
  return true;
}

size_t PathExpression::MinLength() const {
  size_t n = 0;
  for (const PathAtom& atom : atoms_) {
    if (atom.kind != PathAtom::Kind::kAnyPath) ++n;
  }
  return n;
}

int64_t PathExpression::MaxLength() const {
  int64_t n = 0;
  for (const PathAtom& atom : atoms_) {
    if (atom.kind == PathAtom::Kind::kAnyPath) return -1;
    ++n;
  }
  return n;
}

std::string PathExpression::ToString() const {
  std::vector<std::string> pieces;
  pieces.reserve(atoms_.size());
  for (const PathAtom& atom : atoms_) {
    switch (atom.kind) {
      case PathAtom::Kind::kLabel:
        pieces.push_back(atom.label);
        break;
      case PathAtom::Kind::kAnyLabel:
        pieces.push_back("?");
        break;
      case PathAtom::Kind::kAnyPath:
        pieces.push_back("*");
        break;
    }
  }
  return Join(pieces, ".");
}

}  // namespace gsv
