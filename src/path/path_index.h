#ifndef GSV_PATH_PATH_INDEX_H_
#define GSV_PATH_PATH_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "oem/label_index.h"
#include "oem/store.h"
#include "path/path.h"

namespace gsv {

// Index-backed navigation primitives: the traversals of navigate.cc
// re-expressed as merged posting probes over one LabelIndexSnapshot.
//
// All functions here touch ONLY the snapshot — never the store — so they are
// safe to run concurrently with a writer mutating the store and publishing
// the next epoch. Results are byte-identical to the traversal counterparts:
// the store keeps the index in lockstep with every mutation, and dangling
// edges are absent from the postings exactly as traversal skips them.
//
// Frontiers and results are interned OID ids, sorted ascending and unique.
// `metrics` (nullable) receives one index_probes increment per posting
// range-scan or membership probe.

// Children reached from `start` (labelled `start_label`) along `path`.
// Precondition: the caller verified `start` exists; an empty path returns
// {start}. `filter` (nullable) mirrors the WITHIN visibility filter: a
// candidate child failing it is invisible.
std::vector<uint32_t> IndexEvalPathIds(
    const LabelIndexSnapshot& snapshot, uint32_t start,
    const std::string& start_label, const Path& path,
    const std::function<bool(uint32_t)>* filter, StoreMetrics* metrics);

// ancestor(N, p): every X with an instance of `path` from X to `n`
// (paper §4.3). Fully snapshot-resident, including the existence/label
// check on `n`. Precondition: path is non-empty (the caller answers
// ancestor(N, ∅) = {N} itself).
std::vector<uint32_t> IndexAncestorIds(const LabelIndexSnapshot& snapshot,
                                       uint32_t n, const Path& path,
                                       StoreMetrics* metrics);

// True iff `to` is reachable from `from` via exactly `path` (non-empty).
bool IndexHasPathFromTo(const LabelIndexSnapshot& snapshot, uint32_t from,
                        uint32_t to, const Path& path, StoreMetrics* metrics);

// One downward wave: the `label`-children of `frontier` (whose members all
// carry `prev_label`). Exposed for level-at-a-time consumers such as the
// warehouse corridor warm-up.
std::vector<uint32_t> IndexStepDownIds(const LabelIndexSnapshot& snapshot,
                                       const std::string& prev_label,
                                       const std::string& label,
                                       const std::vector<uint32_t>& frontier,
                                       StoreMetrics* metrics);

}  // namespace gsv

#endif  // GSV_PATH_PATH_INDEX_H_
