#ifndef GSV_PATH_NAVIGATE_H_
#define GSV_PATH_NAVIGATE_H_

#include <functional>
#include <vector>

#include "oem/store.h"
#include "path/path.h"
#include "path/path_expression.h"

namespace gsv {

// Visibility filter used to scope traversals (the WITHIN clause, §2): when
// set, objects for which it returns false are completely ignored — as if
// absent from the store. The traversal entry point is always visible.
using OidFilter = std::function<bool(const Oid&)>;

// Graph navigation primitives (paper §2 and §4.3). These are the only
// routines that traverse the base data; all their work is metered through
// StoreMetrics, which is what the cost experiments measure.

// N.p — the set of objects reachable from `start` following path `p`
// (paper §2). The empty path yields {start}. Works on arbitrary graphs;
// duplicates collapse because the result is a set.
OidSet EvalPath(const ObjectStore& store, const Oid& start, const Path& path,
                const OidFilter& filter = nullptr);

// N.e — the union of N.p over all instances p of expression `e` (paper §2).
// Cycle-safe: runs the expression NFA over the graph with a visited set on
// (object, NFA-state) pairs.
OidSet EvalExpression(const ObjectStore& store, const Oid& start,
                      const PathExpression& expr,
                      const OidFilter& filter = nullptr);

// ancestor(N, p) — every X with path(X, N) = p (paper §4.3). On a tree this
// has at most one element; on DAGs (or trees polluted by grouping objects)
// there may be several, which callers disambiguate (see Algorithm1's
// candidate verification). ancestor(N, ∅) = {N}.
std::vector<Oid> AncestorsByPath(const ObjectStore& store, const Oid& n,
                                 const Path& path);

// path(from, to) — all label paths from `from` to `to`, found by climbing
// the inverse index from `to`. On a tree there is at most one (§4.3); the
// search is capped at `max_paths` results for DAG safety. `max_depth` bounds
// the climb (cycles in the base would otherwise loop). When `filter` is
// set, intermediate objects failing it are invisible (the climb may still
// end at `from`, which — like a query entry point — is always visible).
std::vector<Path> PathsFromTo(const ObjectStore& store, const Oid& from,
                              const Oid& to, size_t max_paths = 16,
                              size_t max_depth = 256,
                              const OidFilter& filter = nullptr);

// True iff `to` is reachable from `from` via exactly the path `p`. Cheaper
// than PathsFromTo when the candidate path is known: climbs |p| levels with
// label filtering.
bool HasPathFromTo(const ObjectStore& store, const Oid& from, const Oid& to,
                   const Path& path);

}  // namespace gsv

#endif  // GSV_PATH_NAVIGATE_H_
