#include "path/navigate.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <utility>

#include "path/path_index.h"

namespace gsv {

namespace {

inline void CountFallback(const ObjectStore& store) {
  store.metrics().index_fallbacks.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Oid> IdsToOids(const std::vector<uint32_t>& ids) {
  std::vector<Oid> oids;
  oids.reserve(ids.size());
  for (uint32_t id : ids) oids.push_back(Oid::FromId(id));
  return oids;
}

}  // namespace

OidSet EvalPath(const ObjectStore& store, const Oid& start, const Path& path,
                const OidFilter& filter) {
  if (!path.empty()) {
    if (LabelIndexSnapshotPtr snapshot = store.AcquireIndexSnapshot()) {
      const Object* start_object = store.Get(start);
      if (start_object == nullptr) return OidSet();
      std::function<bool(uint32_t)> id_filter;
      if (filter) {
        id_filter = [&filter](uint32_t id) { return filter(Oid::FromId(id)); };
      }
      std::vector<uint32_t> ids = IndexEvalPathIds(
          *snapshot, start.id(), start_object->label(), path,
          filter ? &id_filter : nullptr, &store.metrics());
      return OidSet(IdsToOids(ids));
    }
    CountFallback(store);
  }
  OidSet frontier;
  if (store.Contains(start)) frontier.Insert(start);
  for (size_t i = 0; i < path.size() && !frontier.empty(); ++i) {
    OidSet next;
    for (const Oid& oid : frontier) {
      const Object* object = store.Get(oid);
      if (object == nullptr || !object->IsSet()) continue;
      for (const Oid& child_oid : object->children()) {
        store.metrics().edges_traversed++;
        if (filter && !filter(child_oid)) continue;
        const Object* child = store.Get(child_oid);
        if (child != nullptr && child->label() == path.label(i)) {
          next.Insert(child_oid);
        }
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

OidSet EvalExpression(const ObjectStore& store, const Oid& start,
                      const PathExpression& expr, const OidFilter& filter) {
  using path_internal::PathNfa;
  PathNfa nfa(expr);

  OidSet result;
  if (!store.Contains(start)) return result;
  // Expressions with wildcards/closures have no constant label sequence, so
  // the step index cannot serve them: always a traversal.
  if (store.options().enable_label_index) CountFallback(store);

  // BFS over (object, NFA state) pairs; the visited set makes this safe on
  // cyclic graphs ('*' over a cycle would otherwise never terminate).
  std::unordered_set<uint64_t> visited;
  std::deque<std::pair<Oid, int>> frontier;
  auto push = [&](const Oid& oid, int state) {
    uint64_t key = (static_cast<uint64_t>(oid.id()) << 32) |
                   static_cast<uint32_t>(state);
    if (visited.insert(key).second) {
      frontier.emplace_back(oid, state);
      if (nfa.IsAccepting(state)) result.Insert(oid);
    }
  };
  for (int state : nfa.start_states()) push(start, state);

  while (!frontier.empty()) {
    auto [oid, state] = frontier.front();
    frontier.pop_front();
    const Object* object = store.Get(oid);
    if (object == nullptr || !object->IsSet()) continue;
    for (const Oid& child_oid : object->children()) {
      store.metrics().edges_traversed++;
      if (filter && !filter(child_oid)) continue;
      const Object* child = store.Get(child_oid);
      if (child == nullptr) continue;
      for (int next : nfa.Step(state, child->label())) {
        push(child_oid, next);
      }
    }
  }
  return result;
}

std::vector<Oid> AncestorsByPath(const ObjectStore& store, const Oid& n,
                                 const Path& path) {
  if (path.empty()) {
    return store.Contains(n) ? std::vector<Oid>{n} : std::vector<Oid>{};
  }
  if (LabelIndexSnapshotPtr snapshot = store.AcquireIndexSnapshot()) {
    std::vector<Oid> ancestors =
        IdsToOids(IndexAncestorIds(*snapshot, n.id(), path, &store.metrics()));
    SortOidsLexicographic(&ancestors);  // OidSet order
    return ancestors;
  }
  CountFallback(store);
  const Object* target = store.Get(n);
  if (target == nullptr || target->label() != path.back()) return {};

  // Climb: after step j, `frontier` holds the nodes reached by the suffix
  // path.label(j)..path.back() ending at n; they must carry label(j).
  OidSet frontier;
  frontier.Insert(n);
  for (size_t j = path.size(); j-- > 1;) {
    OidSet next;
    for (const Oid& oid : frontier) {
      for (const Oid& parent_oid : store.Parents(oid)) {
        const Object* parent = store.Get(parent_oid);
        if (parent != nullptr && parent->label() == path.label(j - 1)) {
          next.Insert(parent_oid);
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) return {};
  }

  // The ancestors are the parents of the label(0)-nodes; their own label is
  // unconstrained (the path starts at the label of X's direct child).
  OidSet ancestors;
  for (const Oid& oid : frontier) {
    for (const Oid& parent_oid : store.Parents(oid)) {
      if (store.Contains(parent_oid)) ancestors.Insert(parent_oid);
    }
  }
  return ancestors.elements();
}

namespace {

// Parents of `object` for the upward path walk. Hybrid: with a published
// index snapshot the walk probes the `up_any` posting of the node's label
// (one range scan over (child_id<<32)|parent_id keys) instead of touching
// the parent index; both modes hand back canonical lexicographic OID order
// so the enumeration — and any max_paths truncation — is byte-identical
// whichever side answers.
std::vector<Oid> WalkParents(const ObjectStore& store,
                             const LabelIndexSnapshot* snapshot,
                             const Object& object) {
  if (snapshot == nullptr) return store.Parents(object.oid());
  store.metrics().index_probes.fetch_add(1, std::memory_order_relaxed);
  std::vector<Oid> parents;
  if (const Postings* up = snapshot->UpAny(object.label())) {
    const uint32_t id = object.oid().id();
    const uint64_t lo = static_cast<uint64_t>(id) << 32;
    const uint64_t hi = id == 0xffffffffu
                            ? ~uint64_t{0}
                            : (static_cast<uint64_t>(id) + 1) << 32;
    up->ScanRange(lo, hi, [&](uint64_t v) {
      parents.push_back(Oid::FromId(static_cast<uint32_t>(v)));
    });
  }
  SortOidsLexicographic(&parents);
  return parents;
}

void PathsFromToRec(const ObjectStore& store,
                    const LabelIndexSnapshot* snapshot, const Oid& from,
                    const Oid& current, std::vector<std::string>* labels_rev,
                    std::unordered_set<uint32_t>* on_stack,
                    size_t max_paths, size_t max_depth, const OidFilter& filter,
                    std::vector<Path>* out) {
  if (out->size() >= max_paths) return;
  if (current == from) {
    std::vector<std::string> labels(labels_rev->rbegin(), labels_rev->rend());
    out->push_back(Path(std::move(labels)));
    return;
  }
  if (filter && !filter(current)) return;  // hidden by WITHIN scoping
  if (labels_rev->size() >= max_depth) return;
  const Object* object = store.Get(current);
  if (object == nullptr) return;
  if (!on_stack->insert(current.id()).second) return;  // cycle guard
  labels_rev->push_back(object->label());
  for (const Oid& parent : WalkParents(store, snapshot, *object)) {
    PathsFromToRec(store, snapshot, from, parent, labels_rev, on_stack,
                   max_paths, max_depth, filter, out);
    if (out->size() >= max_paths) break;
  }
  labels_rev->pop_back();
  on_stack->erase(current.id());
}

}  // namespace

std::vector<Path> PathsFromTo(const ObjectStore& store, const Oid& from,
                              const Oid& to, size_t max_paths,
                              size_t max_depth, const OidFilter& filter) {
  std::vector<Path> out;
  if (!store.Contains(from) || !store.Contains(to)) return out;
  LabelIndexSnapshotPtr snapshot = store.AcquireIndexSnapshot();
  if (snapshot == nullptr) CountFallback(store);
  std::vector<std::string> labels_rev;
  std::unordered_set<uint32_t> on_stack;
  PathsFromToRec(store, snapshot.get(), from, to, &labels_rev, &on_stack,
                 max_paths, max_depth, filter, &out);
  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    return a.ToString() < b.ToString();
  });
  return out;
}

bool HasPathFromTo(const ObjectStore& store, const Oid& from, const Oid& to,
                   const Path& path) {
  if (path.empty()) return from == to && store.Contains(from);
  if (LabelIndexSnapshotPtr snapshot = store.AcquireIndexSnapshot()) {
    return IndexHasPathFromTo(*snapshot, from.id(), to.id(), path,
                              &store.metrics());
  }
  CountFallback(store);
  const Object* target = store.Get(to);
  if (target == nullptr || target->label() != path.back()) return false;

  OidSet frontier;
  frontier.Insert(to);
  for (size_t j = path.size(); j-- > 1;) {
    OidSet next;
    for (const Oid& oid : frontier) {
      for (const Oid& parent_oid : store.Parents(oid)) {
        const Object* parent = store.Get(parent_oid);
        if (parent != nullptr && parent->label() == path.label(j - 1)) {
          next.Insert(parent_oid);
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) return false;
  }
  for (const Oid& oid : frontier) {
    for (const Oid& parent_oid : store.Parents(oid)) {
      if (parent_oid == from) return true;
    }
  }
  return false;
}

}  // namespace gsv
