#ifndef GSV_PATH_PATH_EXPRESSION_H_
#define GSV_PATH_PATH_EXPRESSION_H_

#include <string>
#include <string_view>
#include <vector>

#include "path/path.h"
#include "util/status.h"

namespace gsv {

// One component of a path expression.
struct PathAtom {
  enum class Kind {
    kLabel,     // a fixed label
    kAnyLabel,  // '?': exactly one label, any value
    kAnyPath,   // '*': any sequence of labels, including the empty one
  };
  Kind kind = Kind::kLabel;
  std::string label;  // set iff kind == kLabel

  static PathAtom Label(std::string l) {
    return PathAtom{Kind::kLabel, std::move(l)};
  }
  static PathAtom AnyLabel() { return PathAtom{Kind::kAnyLabel, {}}; }
  static PathAtom AnyPath() { return PathAtom{Kind::kAnyPath, {}}; }

  bool operator==(const PathAtom& other) const {
    return kind == other.kind && label == other.label;
  }
};

// A path expression: a regular expression of paths (paper §2), restricted to
// the forms the paper uses — a dot-separated sequence of labels, '?'
// (exactly one arbitrary label) and '*' (any path, possibly empty).
// Examples: "*", "professor.*", "professor.?".
//
// A path p is an *instance* of expression e if substituting the wildcards in
// e by paths yields p; Matches() decides this. Contains() decides language
// containment between two expressions — the test §6 identifies as the key
// requirement for maintaining path-expression views.
class PathExpression {
 public:
  PathExpression() = default;
  explicit PathExpression(std::vector<PathAtom> atoms)
      : atoms_(std::move(atoms)) {}

  // Parses "professor.*", "a.?.b", "*", "" (empty expression = empty path).
  static Result<PathExpression> Parse(std::string_view text);

  // A constant path is also a path expression (paper §2).
  static PathExpression FromPath(const Path& path);

  const std::vector<PathAtom>& atoms() const { return atoms_; }
  size_t size() const { return atoms_.size(); }

  // True if the expression contains no wildcards.
  bool IsConstant() const;
  // For a constant expression, the corresponding path.
  Path ToPath() const;

  // True if `path` is an instance of this expression.
  bool Matches(const Path& path) const;

  // True if every instance of `other` is an instance of this expression
  // (language containment, decided exactly for this wildcard class).
  bool Contains(const PathExpression& other) const;

  // Shortest / longest instance lengths ('*' contributes 0 to the minimum;
  // -1 for unbounded maximum). Used by maintainers to bound traversals.
  size_t MinLength() const;
  int64_t MaxLength() const;  // -1 if unbounded

  bool operator==(const PathExpression& other) const {
    return atoms_ == other.atoms_;
  }

  std::string ToString() const;

 private:
  std::vector<PathAtom> atoms_;
};

namespace path_internal {

// A linear NFA for a PathExpression: state i is "matched the first i atoms";
// '*' atoms add a self-loop plus an epsilon edge. Exposed for the evaluator,
// which runs the automaton directly over the object graph.
class PathNfa {
 public:
  explicit PathNfa(const PathExpression& expr);

  // Number of states; the accepting state is state_count()-1... states are
  // 0..atom_count; acceptance tested with IsAccepting.
  size_t state_count() const { return atom_count_ + 1; }
  // Epsilon-closed start state set.
  const std::vector<int>& start_states() const { return start_; }
  bool IsAccepting(int state) const;
  // Epsilon-closed successor states of `state` on `label`.
  std::vector<int> Step(int state, const std::string& label) const;
  std::vector<int> StepAll(const std::vector<int>& states,
                           const std::string& label) const;
  bool AnyAccepting(const std::vector<int>& states) const;

 private:
  std::vector<int> EpsilonClosure(int state) const;

  const PathExpression* expr_;
  size_t atom_count_;
  std::vector<int> start_;
};

}  // namespace path_internal

}  // namespace gsv

#endif  // GSV_PATH_PATH_EXPRESSION_H_
