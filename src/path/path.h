#ifndef GSV_PATH_PATH_H_
#define GSV_PATH_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gsv {

// A path: a sequence of zero or more object labels separated by dots
// (paper §2), e.g. "professor.student". The empty path is allowed and means
// "stay at the current object" (N.∅ = {N}).
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<std::string> labels) : labels_(std::move(labels)) {}

  // Parses "a.b.c". "" parses to the empty path. Labels must be non-empty
  // and must not contain '.', whitespace, or the wildcard characters.
  static Result<Path> Parse(std::string_view text);

  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::string& label(size_t i) const { return labels_[i]; }
  const std::string& front() const { return labels_.front(); }
  const std::string& back() const { return labels_.back(); }

  // First `n` labels / labels from position `n` to the end.
  Path Prefix(size_t n) const;
  Path Suffix(size_t n) const;

  // this followed by other (paper: N3 ∈ N1.p1.p2).
  Path Concat(const Path& other) const;

  void Append(std::string label) { labels_.push_back(std::move(label)); }

  // True if `prefix` is a (possibly equal, possibly empty) prefix of this.
  bool StartsWith(const Path& prefix) const;
  // True if `suffix` is a (possibly equal, possibly empty) suffix of this.
  bool EndsWith(const Path& suffix) const;

  bool operator==(const Path& other) const { return labels_ == other.labels_; }
  bool operator!=(const Path& other) const { return labels_ != other.labels_; }

  // Dotted form; the empty path prints as "".
  std::string ToString() const;

 private:
  std::vector<std::string> labels_;
};

}  // namespace gsv

#endif  // GSV_PATH_PATH_H_
