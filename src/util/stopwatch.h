#ifndef GSV_UTIL_STOPWATCH_H_
#define GSV_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace gsv {

// Wall-clock stopwatch used by the experiment harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gsv

#endif  // GSV_UTIL_STOPWATCH_H_
