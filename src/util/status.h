#ifndef GSV_UTIL_STATUS_H_
#define GSV_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gsv {

// Error categories used across the library. The library does not throw
// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (query text, path syntax, ...)
  kNotFound,          // unknown OID, database name, view name, ...
  kAlreadyExists,     // duplicate OID / database / view registration
  kFailedPrecondition,// operation not valid in the current state
  kUnimplemented,     // feature intentionally out of scope
  kInternal,          // invariant violation inside the library
  kUnavailable,       // transient: source down / channel fault — retryable
  kDeadlineExceeded,  // retry budget exhausted before the call succeeded
  kDataLoss,          // durable state unusable: torn/corrupt log or snapshot
};

// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// A cheap value type carrying success or an error code plus message.
class Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "error Status requires a non-OK code");
    // In release builds the assert vanishes; a kOk-coded "error" would
    // otherwise construct silently and read as success downstream.
    if (code_ == StatusCode::kOk) code_ = StatusCode::kInternal;
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status (a minimal StatusOr).
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;             // kOk iff value_ holds a value
  std::optional<T> value_;
};

// Propagates errors to the caller: `GSV_RETURN_IF_ERROR(DoThing());`
#define GSV_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::gsv::Status gsv_status_tmp = (expr);         \
    if (!gsv_status_tmp.ok()) return gsv_status_tmp; \
  } while (false)

// Assigns from a Result or propagates its error:
//   GSV_ASSIGN_OR_RETURN(auto q, Parse(text));
#define GSV_ASSIGN_OR_RETURN(lhs, rexpr)             \
  GSV_ASSIGN_OR_RETURN_IMPL_(                        \
      GSV_STATUS_CONCAT_(gsv_result_, __LINE__), lhs, rexpr)

#define GSV_STATUS_CONCAT_INNER_(x, y) x##y
#define GSV_STATUS_CONCAT_(x, y) GSV_STATUS_CONCAT_INNER_(x, y)
#define GSV_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace gsv

#endif  // GSV_UTIL_STATUS_H_
