#ifndef GSV_UTIL_STRING_UTIL_H_
#define GSV_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gsv {

// Splits `text` on `sep`, keeping empty pieces ("a..b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

// True if `text` begins with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Exception-free numeric parsing: nullopt on malformed text, trailing
// garbage, or overflow. The whole string must be the number.
std::optional<int64_t> ParseInt64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

}  // namespace gsv

#endif  // GSV_UTIL_STRING_UTIL_H_
