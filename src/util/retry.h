#ifndef GSV_UTIL_RETRY_H_
#define GSV_UTIL_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace gsv {

// Retry policy for fallible round trips (warehouse → source query-backs):
// bounded exponential backoff under a total deadline. Time is *virtual* —
// backoff is accounted in microseconds against the deadline but never
// slept, so retry behavior is deterministic and tests/benches run at full
// speed. A real deployment would sleep the same schedule.
struct RetryPolicy {
  int max_attempts = 4;             // total tries, including the first
  int64_t initial_backoff_us = 100; // wait before the second attempt
  int64_t max_backoff_us = 10'000;  // exponential growth cap
  double backoff_multiplier = 2.0;
  int64_t deadline_us = 1'000'000;  // total virtual backoff budget
};

// What a RetryWithBackoff call actually did (for cost accounting).
struct RetryOutcome {
  int attempts = 0;        // calls issued
  int64_t backoff_us = 0;  // total virtual backoff accumulated
};

// Invokes `call` (a callable returning Status) until it succeeds, fails
// with a non-retryable code, or the policy is exhausted. Only kUnavailable
// is retryable: everything else reflects a definitive answer from the
// source. Returns kDeadlineExceeded when the backoff budget runs out
// before the attempt budget.
template <typename Call>
Status RetryWithBackoff(const RetryPolicy& policy, Call&& call,
                        RetryOutcome* outcome = nullptr) {
  const int max_attempts = std::max(1, policy.max_attempts);
  int64_t backoff = policy.initial_backoff_us;
  int64_t elapsed = 0;
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (outcome != nullptr) outcome->attempts = attempt;
    last = call();
    if (last.ok() || last.code() != StatusCode::kUnavailable) return last;
    if (attempt == max_attempts) break;
    if (elapsed + backoff > policy.deadline_us) {
      return Status::DeadlineExceeded(
          "retry deadline exhausted after " + std::to_string(attempt) +
          " attempts: " + last.message());
    }
    elapsed += backoff;
    if (outcome != nullptr) outcome->backoff_us = elapsed;
    backoff = std::min<int64_t>(
        policy.max_backoff_us,
        static_cast<int64_t>(static_cast<double>(backoff) *
                             policy.backoff_multiplier));
  }
  return last;  // kUnavailable, attempts exhausted
}

// True when `status` indicates the *source* (or its channel) failed, as
// opposed to a definitive negative answer like kNotFound. Only these codes
// quarantine views / trip breakers.
inline bool IsSourceFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

// Per-source circuit breaker: after `failure_threshold` consecutive
// failures the breaker opens and calls fail fast (no retry storms against
// a down source). After `open_rejections` fail-fast rejections one probe
// is let through (half-open); its outcome closes or re-opens the breaker.
// Counting rejections instead of wall-clock time keeps the state machine
// deterministic for tests — a real deployment would use a cooldown timer.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    int failure_threshold = 5;  // consecutive failures that trip the breaker
    int open_rejections = 8;    // fail-fast calls before a half-open probe
  };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options options) : options_(options) {}

  // True when the call may proceed. While open, counts the rejection and
  // transitions to half-open (allowing one probe) every `open_rejections`
  // rejected calls.
  bool AllowRequest() {
    if (state_ != State::kOpen) return true;
    if (++rejections_ >= options_.open_rejections) {
      state_ = State::kHalfOpen;
      rejections_ = 0;
      return true;
    }
    return false;
  }

  void RecordSuccess() {
    consecutive_failures_ = 0;
    state_ = State::kClosed;
  }

  // Returns true when this failure tripped the breaker open.
  bool RecordFailure() {
    if (state_ == State::kHalfOpen) {  // probe failed: straight back to open
      state_ = State::kOpen;
      rejections_ = 0;
      ++trips_;
      return true;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= options_.failure_threshold) {
      state_ = State::kOpen;
      rejections_ = 0;
      consecutive_failures_ = 0;
      ++trips_;
      return true;
    }
    return false;
  }

  void Reset() {
    state_ = State::kClosed;
    consecutive_failures_ = 0;
    rejections_ = 0;
  }

  State state() const { return state_; }
  int64_t trips() const { return trips_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int rejections_ = 0;
  int64_t trips_ = 0;
};

}  // namespace gsv

#endif  // GSV_UTIL_RETRY_H_
