#ifndef GSV_UTIL_THREAD_POOL_H_
#define GSV_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace gsv {

// A fixed-size worker pool for fanning independent maintenance work across
// threads. Construction with `threads <= 1` creates no workers: Submit runs
// the task inline on the caller, so single-threaded configurations pay no
// synchronization or scheduling cost and batch results stay comparable.
//
// Usage is fork/join: Submit N independent tasks, then Wait() as the
// barrier. Submit/Wait are intended to be driven from one coordinating
// thread; tasks must not Submit new work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads) {
    if (threads <= 1) return;
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  // Number of worker threads (0 = inline mode).
  size_t size() const { return workers_.size(); }

  void Submit(std::function<void()> task) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
      ++unfinished_;
    }
    work_ready_.notify_one();
  }

  // Blocks until every submitted task has finished (the join barrier).
  void Wait() {
    if (workers_.empty()) return;
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return unfinished_ == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (--unfinished_ == 0) all_done_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t unfinished_ = 0;
  bool stop_ = false;
};

}  // namespace gsv

#endif  // GSV_UTIL_THREAD_POOL_H_
