#include "util/string_util.h"

#include <cerrno>
#include <cstdlib>

namespace gsv {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace gsv
