#ifndef GSV_UTIL_RANDOM_H_
#define GSV_UTIL_RANDOM_H_

#include <cstdint>

namespace gsv {

// Deterministic, seedable PRNG (xorshift128+) used by workload generators
// and property tests so every run is reproducible from its seed.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding avoids poor low-entropy seeds.
    state0_ = SplitMix(&seed);
    state1_ = SplitMix(&seed);
    if (state0_ == 0 && state1_ == 0) state1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = state0_;
    const uint64_t y = state1_;
    state0_ = y;
    x ^= x << 23;
    state1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state1_ + y;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* s) {
    uint64_t z = (*s += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace gsv

#endif  // GSV_UTIL_RANDOM_H_
