#include "workload/tree_gen.h"

#include "util/random.h"

namespace gsv {

Result<GeneratedTree> GenerateTree(ObjectStore* store,
                                   const TreeGenOptions& options) {
  if (options.levels == 0 || options.fanout == 0 ||
      options.label_variety == 0) {
    return Status::InvalidArgument(
        "tree generation needs levels, fanout and label_variety >= 1");
  }
  Random rng(options.seed);
  GeneratedTree tree;
  size_t counter = 0;
  auto next_oid = [&]() {
    return Oid(options.oid_prefix + std::to_string(counter++));
  };

  tree.root = next_oid();
  GSV_RETURN_IF_ERROR(store->PutSet(tree.root, "root"));
  std::vector<Oid> frontier{tree.root};

  for (size_t depth = 1; depth <= options.levels; ++depth) {
    std::vector<Oid> next;
    const bool leaf_level = depth == options.levels;
    for (const Oid& parent : frontier) {
      for (size_t i = 0; i < options.fanout; ++i) {
        Oid child = next_oid();
        if (leaf_level) {
          GSV_RETURN_IF_ERROR(store->PutAtomic(
              child, "age",
              Value::Int(rng.UniformInt(0, options.max_value - 1))));
          tree.leaves.push_back(child);
        } else {
          std::string label = "n" + std::to_string(depth) + "_" +
                              std::to_string(rng.Uniform(options.label_variety));
          GSV_RETURN_IF_ERROR(store->PutSet(child, std::move(label)));
          tree.internal.push_back(child);
          next.push_back(child);
        }
        GSV_RETURN_IF_ERROR(store->AddChildRaw(parent, child));
      }
    }
    frontier = std::move(next);
  }
  tree.object_count = counter;
  return tree;
}

std::string TreeViewDefinition(const std::string& name, const Oid& root,
                               size_t sel_levels, size_t levels,
                               int64_t bound) {
  std::string sel;
  for (size_t d = 1; d <= sel_levels; ++d) {
    if (!sel.empty()) sel += ".";
    sel += "n" + std::to_string(d) + "_0";
  }
  std::string cond;
  for (size_t d = sel_levels + 1; d < levels; ++d) {
    cond += "n" + std::to_string(d) + "_0.";
  }
  cond += "age";
  return "define mview " + name + " as: SELECT " + root.str() + "." + sel +
         " X WHERE X." + cond + " <= " + std::to_string(bound);
}

}  // namespace gsv
