#ifndef GSV_WORKLOAD_DAG_GEN_H_
#define GSV_WORKLOAD_DAG_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// Random layered DAGs for the §6 "directed acyclic graph" relaxation.
// Nodes are arranged in `levels` layers below the root; every node in
// layer d carries label "d<depth>" and has `min_parents`..`max_parents`
// parents drawn from layer d-1, so objects have multiple derivations.
// The last layer consists of atomic "age" leaves.
struct DagGenOptions {
  size_t levels = 3;
  size_t width = 8;        // nodes per layer
  size_t min_parents = 1;
  size_t max_parents = 3;
  int64_t max_value = 100;
  uint64_t seed = 1;
  std::string oid_prefix = "D";
};

struct GeneratedDag {
  Oid root;                      // label "root"
  std::vector<std::vector<Oid>> layers;  // layers[0] = first level below root
  size_t edge_count = 0;
};

Result<GeneratedDag> GenerateDag(ObjectStore* store,
                                 const DagGenOptions& options);

// A simple-shape view over the DAG selecting layer `sel_levels`:
//   define mview <name> as: SELECT <root>.d1.d2...d<s> X
//                           WHERE X.d<s+1>...d<levels-1>.age <= <bound>
std::string DagViewDefinition(const std::string& name, const Oid& root,
                              size_t sel_levels, size_t levels, int64_t bound);

}  // namespace gsv

#endif  // GSV_WORKLOAD_DAG_GEN_H_
