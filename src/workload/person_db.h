#ifndef GSV_WORKLOAD_PERSON_DB_H_
#define GSV_WORKLOAD_PERSON_DB_H_

#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// Builds the PERSON database of paper Example 2 / Figure 2:
//
//   <ROOT, person, set, {P1,P2,P3,P4}>
//     <P1, professor, set, {N1,A1,S1,P3}>
//       <N1, name, 'John'> <A1, age, 45> <S1, salary, 100000>
//       <P3, student, set, {N3,A3,M3}>
//         <N3, name, 'John'> <A3, age, 20> <M3, major, 'education'>
//     <P2, professor, set, {N2,ADD2}>
//       <N2, name, 'Sally'> <ADD2, address, 'Palo Alto'>
//     <P4, secretary, set, {N4,A4}>
//       <N4, name, 'Tom'> <A4, age, 40>
//
// When `with_database` is set, also creates the grouping object
// <PERSON, database, set, {all of the above}> registered as database
// "PERSON" (§2: a GSDB is an object whose set value contains the OIDs of
// all objects in the database). Note the grouping object gives every
// member a second parent — the robustness case Algorithm 1's candidate
// verification exists for.
Status BuildPersonDb(ObjectStore* store, bool with_database = true);

// OIDs of the Example 2 objects, for tests and examples.
namespace person_db {
inline Oid Root() { return Oid("ROOT"); }
inline Oid P1() { return Oid("P1"); }
inline Oid P2() { return Oid("P2"); }
inline Oid P3() { return Oid("P3"); }
inline Oid P4() { return Oid("P4"); }
inline Oid N1() { return Oid("N1"); }
inline Oid N2() { return Oid("N2"); }
inline Oid N3() { return Oid("N3"); }
inline Oid N4() { return Oid("N4"); }
inline Oid A1() { return Oid("A1"); }
inline Oid A3() { return Oid("A3"); }
inline Oid A4() { return Oid("A4"); }
inline Oid S1() { return Oid("S1"); }
inline Oid M3() { return Oid("M3"); }
inline Oid Add2() { return Oid("ADD2"); }
inline Oid Person() { return Oid("PERSON"); }
}  // namespace person_db

}  // namespace gsv

#endif  // GSV_WORKLOAD_PERSON_DB_H_
