#include "workload/relational_gen.h"

namespace gsv {

Result<Oid> MakeTuple(ObjectStore* store, const std::string& oid_prefix,
                      size_t* counter, int64_t age, size_t extra_fields) {
  Oid tuple(oid_prefix + "t" + std::to_string((*counter)++));
  std::vector<Oid> fields;
  Oid age_oid(oid_prefix + "a" + std::to_string((*counter)++));
  GSV_RETURN_IF_ERROR(store->PutAtomic(age_oid, "age", Value::Int(age)));
  fields.push_back(age_oid);
  for (size_t f = 0; f < extra_fields; ++f) {
    Oid field_oid(oid_prefix + "f" + std::to_string((*counter)++));
    GSV_RETURN_IF_ERROR(store->PutAtomic(
        field_oid, "f" + std::to_string(f + 1), Value::Int(static_cast<int64_t>(f))));
    fields.push_back(field_oid);
  }
  GSV_RETURN_IF_ERROR(store->PutSet(tuple, "tuple", std::move(fields)));
  return tuple;
}

Result<GeneratedRelational> GenerateRelationalGsdb(
    ObjectStore* store, const RelationalGenOptions& options) {
  Random rng(options.seed);
  GeneratedRelational out;
  size_t counter = 0;

  out.root = Oid(options.oid_prefix + "_REL");
  GSV_RETURN_IF_ERROR(store->PutSet(out.root, "relations"));

  for (size_t r = 0; r < options.relations; ++r) {
    Oid relation(options.oid_prefix + "_r" + std::to_string(r));
    GSV_RETURN_IF_ERROR(store->PutSet(relation, "r" + std::to_string(r)));
    GSV_RETURN_IF_ERROR(store->AddChildRaw(out.root, relation));
    out.relation_oids.push_back(relation);
    for (size_t t = 0; t < options.tuples_per_relation; ++t) {
      GSV_ASSIGN_OR_RETURN(
          Oid tuple,
          MakeTuple(store, options.oid_prefix, &counter,
                    rng.UniformInt(0, options.max_age - 1),
                    options.extra_fields));
      GSV_RETURN_IF_ERROR(store->AddChildRaw(relation, tuple));
      out.tuple_oids.push_back(tuple);
    }
  }
  out.object_count = store->size();
  return out;
}

std::string RelationalViewDefinition(const std::string& name, const Oid& root,
                                     int64_t bound) {
  return "define mview " + name + " as: SELECT " + root.str() +
         ".r0.tuple X WHERE X.age > " + std::to_string(bound);
}

}  // namespace gsv
