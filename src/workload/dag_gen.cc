#include "workload/dag_gen.h"

#include "util/random.h"

namespace gsv {

Result<GeneratedDag> GenerateDag(ObjectStore* store,
                                 const DagGenOptions& options) {
  if (options.levels == 0 || options.width == 0 || options.min_parents == 0 ||
      options.min_parents > options.max_parents) {
    return Status::InvalidArgument("invalid DAG generation options");
  }
  Random rng(options.seed);
  GeneratedDag dag;
  size_t counter = 0;
  auto next_oid = [&]() {
    return Oid(options.oid_prefix + std::to_string(counter++));
  };

  dag.root = next_oid();
  GSV_RETURN_IF_ERROR(store->PutSet(dag.root, "root"));

  std::vector<Oid> previous{dag.root};
  for (size_t depth = 1; depth <= options.levels; ++depth) {
    const bool leaf_level = depth == options.levels;
    std::vector<Oid> layer;
    for (size_t i = 0; i < options.width; ++i) {
      Oid node = next_oid();
      if (leaf_level) {
        GSV_RETURN_IF_ERROR(store->PutAtomic(
            node, "age", Value::Int(rng.UniformInt(0, options.max_value - 1))));
      } else {
        GSV_RETURN_IF_ERROR(store->PutSet(node, "d" + std::to_string(depth)));
      }
      // Attach to a random subset of the previous layer.
      size_t parents = options.min_parents +
                       rng.Uniform(options.max_parents - options.min_parents + 1);
      parents = std::min(parents, previous.size());
      OidSet chosen;
      while (chosen.size() < parents) {
        chosen.Insert(previous[rng.Uniform(previous.size())]);
      }
      for (const Oid& parent : chosen) {
        GSV_RETURN_IF_ERROR(store->AddChildRaw(parent, node));
        ++dag.edge_count;
      }
      layer.push_back(node);
    }
    dag.layers.push_back(layer);
    previous = std::move(layer);
  }
  return dag;
}

std::string DagViewDefinition(const std::string& name, const Oid& root,
                              size_t sel_levels, size_t levels,
                              int64_t bound) {
  std::string sel;
  for (size_t d = 1; d <= sel_levels; ++d) {
    if (!sel.empty()) sel += ".";
    sel += "d" + std::to_string(d);
  }
  std::string cond;
  for (size_t d = sel_levels + 1; d < levels; ++d) {
    cond += "d" + std::to_string(d) + ".";
  }
  cond += "age";
  return "define mview " + name + " as: SELECT " + root.str() + "." + sel +
         " X WHERE X." + cond + " <= " + std::to_string(bound);
}

}  // namespace gsv
