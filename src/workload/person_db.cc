#include "workload/person_db.h"

namespace gsv {

Status BuildPersonDb(ObjectStore* store, bool with_database) {
  using namespace person_db;  // NOLINT(build/namespaces): local OID helpers

  GSV_RETURN_IF_ERROR(store->PutAtomic(N1(), "name", Value::Str("John")));
  GSV_RETURN_IF_ERROR(store->PutAtomic(A1(), "age", Value::Int(45)));
  GSV_RETURN_IF_ERROR(store->PutAtomic(S1(), "salary", Value::Int(100000)));
  GSV_RETURN_IF_ERROR(store->PutAtomic(N3(), "name", Value::Str("John")));
  GSV_RETURN_IF_ERROR(store->PutAtomic(A3(), "age", Value::Int(20)));
  GSV_RETURN_IF_ERROR(store->PutAtomic(M3(), "major", Value::Str("education")));
  GSV_RETURN_IF_ERROR(store->PutAtomic(N2(), "name", Value::Str("Sally")));
  GSV_RETURN_IF_ERROR(
      store->PutAtomic(Add2(), "address", Value::Str("Palo Alto")));
  GSV_RETURN_IF_ERROR(store->PutAtomic(N4(), "name", Value::Str("Tom")));
  GSV_RETURN_IF_ERROR(store->PutAtomic(A4(), "age", Value::Int(40)));

  GSV_RETURN_IF_ERROR(
      store->PutSet(P3(), "student", {N3(), A3(), M3()}));
  GSV_RETURN_IF_ERROR(
      store->PutSet(P1(), "professor", {N1(), A1(), S1(), P3()}));
  GSV_RETURN_IF_ERROR(store->PutSet(P2(), "professor", {N2(), Add2()}));
  GSV_RETURN_IF_ERROR(store->PutSet(P4(), "secretary", {N4(), A4()}));
  GSV_RETURN_IF_ERROR(
      store->PutSet(Root(), "person", {P1(), P2(), P3(), P4()}));

  if (with_database) {
    GSV_RETURN_IF_ERROR(store->PutSet(
        Person(), "database",
        {Root(), P1(), P2(), P3(), N1(), A1(), S1(), N2(), Add2(), N3(), A3(),
         M3(), P4(), N4(), A4()}));
    GSV_RETURN_IF_ERROR(store->RegisterDatabase("PERSON", Person()));
  }
  return Status::Ok();
}

}  // namespace gsv
