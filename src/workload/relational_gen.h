#ifndef GSV_WORKLOAD_RELATIONAL_GEN_H_
#define GSV_WORKLOAD_RELATIONAL_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oem/store.h"
#include "util/random.h"
#include "util/status.h"

namespace gsv {

// The relational-style GSDB of paper Example 7 / Figure 5: a shallow, wide
// tree <REL, relations> -> <R, r<i>> -> <T, tuple> -> atomic fields. Each
// tuple has one "age" field (the condition target) plus `extra_fields`
// unrelated fields "f1".."fk".
struct RelationalGenOptions {
  size_t relations = 2;
  size_t tuples_per_relation = 100;
  size_t extra_fields = 3;
  int64_t max_age = 100;
  uint64_t seed = 1;
  std::string oid_prefix = "R";
};

struct GeneratedRelational {
  Oid root;                       // <REL, relations>
  std::vector<Oid> relation_oids; // labels "r0", "r1", ...
  std::vector<Oid> tuple_oids;
  size_t object_count = 0;
};

Result<GeneratedRelational> GenerateRelationalGsdb(
    ObjectStore* store, const RelationalGenOptions& options);

// Creates (but does not link) a fresh tuple object with an "age" of
// `age` and `extra_fields` filler fields; returns its OID. Use with
// store->Insert(relation_oid, tuple_oid) to drive Example 7's workload.
Result<Oid> MakeTuple(ObjectStore* store, const std::string& oid_prefix,
                      size_t* counter, int64_t age, size_t extra_fields);

// The Example 7 view over relation "r0":
//   define mview <name> as: SELECT <root>.r0.tuple X WHERE X.age > <bound>
std::string RelationalViewDefinition(const std::string& name, const Oid& root,
                                     int64_t bound);

}  // namespace gsv

#endif  // GSV_WORKLOAD_RELATIONAL_GEN_H_
