#ifndef GSV_WORKLOAD_WEB_GEN_H_
#define GSV_WORKLOAD_WEB_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// A web-like GSDB for the paper's motivating scenario (§1: "a set of
// interrelated Web pages ... each page is an object, and the URLs in pages
// are the graph edges"). Each page is a set object labeled "page" holding
// an atomic "url", an atomic "topic" (one word from a small vocabulary,
// including "flower"), and edges to other pages. Links may form cycles.
// A root object <WEB, web> links to every page (the crawl frontier), and a
// database "WEB" groups all objects.
struct WebGenOptions {
  size_t pages = 50;
  size_t links_per_page = 3;
  // Probability a page's topic is "flower" (the §1 cache example).
  double flower_fraction = 0.2;
  uint64_t seed = 1;
  std::string oid_prefix = "W";
};

struct GeneratedWeb {
  Oid root;                // <WEB..., web, set, {all pages}>
  std::vector<Oid> pages;  // page OIDs
  std::vector<Oid> flower_pages;
};

Result<GeneratedWeb> GenerateWeb(ObjectStore* store,
                                 const WebGenOptions& options);

// The §1 cache view: all pages about flowers.
//   define mview <name> as: SELECT <root>.page X WHERE X.topic = 'flower'
std::string FlowerViewDefinition(const std::string& name, const Oid& root);

}  // namespace gsv

#endif  // GSV_WORKLOAD_WEB_GEN_H_
