#include "workload/web_gen.h"

#include "util/random.h"

namespace gsv {

Result<GeneratedWeb> GenerateWeb(ObjectStore* store,
                                 const WebGenOptions& options) {
  static const char* kTopics[] = {"garden", "cooking", "sports", "music"};
  Random rng(options.seed);
  GeneratedWeb web;

  web.root = Oid(options.oid_prefix + "_WEB");
  GSV_RETURN_IF_ERROR(store->PutSet(web.root, "web"));

  // Create all pages first, then wire links (links may go anywhere).
  for (size_t i = 0; i < options.pages; ++i) {
    std::string id = std::to_string(i);
    Oid page(options.oid_prefix + "_p" + id);
    Oid url(options.oid_prefix + "_u" + id);
    Oid topic(options.oid_prefix + "_t" + id);
    bool is_flower = rng.Bernoulli(options.flower_fraction);
    GSV_RETURN_IF_ERROR(store->PutAtomic(
        url, "url", Value::Str("http://site" + id + ".example/")));
    GSV_RETURN_IF_ERROR(store->PutAtomic(
        topic, "topic",
        Value::Str(is_flower ? "flower" : kTopics[rng.Uniform(4)])));
    GSV_RETURN_IF_ERROR(store->PutSet(page, "page", {url, topic}));
    GSV_RETURN_IF_ERROR(store->AddChildRaw(web.root, page));
    web.pages.push_back(page);
    if (is_flower) web.flower_pages.push_back(page);
  }
  for (const Oid& page : web.pages) {
    for (size_t l = 0; l < options.links_per_page; ++l) {
      const Oid& target = web.pages[rng.Uniform(web.pages.size())];
      if (target != page) {
        GSV_RETURN_IF_ERROR(store->AddChildRaw(page, target));
      }
    }
  }

  // Group everything into the WEB database (§2).
  Oid db(options.oid_prefix + "_DB");
  OidSet members;
  members.Insert(web.root);
  store->ForEach([&](const Object& object) {
    if (object.oid() != db) members.Insert(object.oid());
  });
  GSV_RETURN_IF_ERROR(store->PutSet(db, "database"));
  GSV_RETURN_IF_ERROR(store->SetValueRaw(db, Value::Set(std::move(members))));
  GSV_RETURN_IF_ERROR(store->RegisterDatabase("WEB", db));
  return web;
}

std::string FlowerViewDefinition(const std::string& name, const Oid& root) {
  return "define mview " + name + " as: SELECT " + root.str() +
         ".page X WHERE X.topic = 'flower'";
}

}  // namespace gsv
