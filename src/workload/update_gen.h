#ifndef GSV_WORKLOAD_UPDATE_GEN_H_
#define GSV_WORKLOAD_UPDATE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oem/store.h"
#include "util/random.h"
#include "util/status.h"

namespace gsv {

// Shape constraints for generated update streams.
enum class UpdateMode {
  // The region below the root stays a tree: inserts attach fresh leaves or
  // re-attach previously detached subtrees (whose old parent link is gone);
  // deletes detach arbitrary edges. Required by Algorithm 1 (§4.2).
  kTreePreserving,
  // Inserts may add extra parents to existing nodes (multiple derivations)
  // but never create a cycle — the DAG relaxation of §6.
  kDagPreserving,
};

struct UpdateGenOptions {
  UpdateMode mode = UpdateMode::kTreePreserving;
  // Relative frequencies; normalized internally.
  double p_insert = 0.35;
  double p_delete = 0.25;
  double p_modify = 0.40;
  uint64_t seed = 1;
  // Labels for freshly created leaves. Including the condition label (e.g.
  // "age") makes inserts view-relevant; others exercise screening.
  std::vector<std::string> leaf_labels = {"age", "note"};
  int64_t max_value = 100;     // new/modified integer leaf values
  std::string oid_prefix = "U";  // fresh-object OIDs
};

// Generates and applies a stream of random *valid* basic updates against
// the subgraph reachable from `root`. Every update goes through the store's
// normal Insert/Delete/Modify entry points, so listeners (maintainers,
// monitors) observe it. Deterministic given the seed and the store state.
class UpdateGenerator {
 public:
  // `store` must outlive the generator.
  UpdateGenerator(ObjectStore* store, Oid root, UpdateGenOptions options);

  // Applies one random update and returns it. Falls back across kinds when
  // the drawn kind is impossible (e.g. nothing left to delete); fails only
  // if no update of any kind is possible.
  Result<Update> Step();

  // Applies `n` updates; returns the ones applied.
  Result<std::vector<Update>> Run(size_t n);

 private:
  // Refreshes the cached object lists from the live graph.
  void Rescan();

  Result<Update> TryInsert();
  Result<Update> TryDelete();
  Result<Update> TryModify();

  // True if `target` is reachable from `from` following child edges.
  bool Reachable(const Oid& from, const Oid& target) const;

  ObjectStore* store_;
  Oid root_;
  UpdateGenOptions options_;
  Random rng_;
  size_t fresh_counter_ = 0;
  std::vector<Oid> sets_;       // reachable set objects
  std::vector<Oid> atoms_;      // reachable atomic objects
  std::vector<Oid> detached_;   // subtree roots removed by deletes
};

}  // namespace gsv

#endif  // GSV_WORKLOAD_UPDATE_GEN_H_
