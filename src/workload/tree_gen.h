#ifndef GSV_WORKLOAD_TREE_GEN_H_
#define GSV_WORKLOAD_TREE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// Random tree-shaped GSDBs for the maintenance experiments. Every internal
// node at depth d carries a label "n<d>_<k>" with k drawn from a per-level
// vocabulary of `label_variety` labels, so constant-path views like
// "ROOT.n1_0.n2_0" select a predictable fraction of the tree. Nodes at
// `levels` depth are atomic leaves labeled "age" with uniform integer
// values in [0, max_value) — the condition targets.
struct TreeGenOptions {
  size_t levels = 4;        // depth of atomic leaves below the root
  size_t fanout = 4;        // children per internal node
  size_t label_variety = 1; // labels per level ("n<d>_0".."n<d>_<v-1>")
  int64_t max_value = 100;  // leaf values in [0, max_value)
  uint64_t seed = 1;
  std::string oid_prefix = "T";  // OIDs "<prefix>0", "<prefix>1", ...
};

struct GeneratedTree {
  Oid root;                    // label "root"
  std::vector<Oid> internal;   // set objects, excluding the root
  std::vector<Oid> leaves;     // atomic "age" objects
  size_t object_count = 0;
};

// Builds the tree into `store`.
Result<GeneratedTree> GenerateTree(ObjectStore* store,
                                   const TreeGenOptions& options);

// A simple-view definition over a generated tree:
//   define mview <name> as: SELECT <root>.n1_0.n2_0...n<s>_0 X
//                           WHERE X.n<s+1>_0...n<levels-1>_0.age <= <bound>
// `sel_levels` must be in [1, levels-1] (the selected objects are internal
// nodes); the condition path spans the remaining levels down to the "age"
// leaves.
std::string TreeViewDefinition(const std::string& name, const Oid& root,
                               size_t sel_levels, size_t levels,
                               int64_t bound);

}  // namespace gsv

#endif  // GSV_WORKLOAD_TREE_GEN_H_
