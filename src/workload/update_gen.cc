#include "workload/update_gen.h"

#include <deque>
#include <unordered_set>

namespace gsv {

UpdateGenerator::UpdateGenerator(ObjectStore* store, Oid root,
                                 UpdateGenOptions options)
    : store_(store),
      root_(std::move(root)),
      options_(std::move(options)),
      rng_(options_.seed) {
  Rescan();
}

void UpdateGenerator::Rescan() {
  sets_.clear();
  atoms_.clear();
  std::unordered_set<std::string> seen{root_.str()};
  std::deque<Oid> frontier{root_};
  while (!frontier.empty()) {
    Oid oid = frontier.front();
    frontier.pop_front();
    const Object* object = store_->Get(oid);
    if (object == nullptr) continue;
    if (object->IsSet()) {
      sets_.push_back(oid);
      for (const Oid& child : object->children()) {
        if (seen.insert(child.str()).second) frontier.push_back(child);
      }
    } else {
      atoms_.push_back(oid);
    }
  }
}

bool UpdateGenerator::Reachable(const Oid& from, const Oid& target) const {
  std::unordered_set<std::string> seen{from.str()};
  std::deque<Oid> frontier{from};
  while (!frontier.empty()) {
    Oid oid = frontier.front();
    frontier.pop_front();
    if (oid == target) return true;
    const Object* object = store_->Get(oid);
    if (object == nullptr || !object->IsSet()) continue;
    for (const Oid& child : object->children()) {
      if (seen.insert(child.str()).second) frontier.push_back(child);
    }
  }
  return false;
}

Result<Update> UpdateGenerator::TryModify() {
  if (atoms_.empty()) return Status::FailedPrecondition("no atomic objects");
  for (int attempt = 0; attempt < 8; ++attempt) {
    const Oid& target = atoms_[rng_.Uniform(atoms_.size())];
    const Object* object = store_->Get(target);
    if (object == nullptr || !object->IsAtomic()) continue;
    Value old_value = object->value();
    Value new_value = Value::Int(rng_.UniformInt(0, options_.max_value - 1));
    GSV_RETURN_IF_ERROR(store_->Modify(target, new_value));
    return Update::Modify(target, std::move(old_value), std::move(new_value));
  }
  return Status::FailedPrecondition("no modifiable object found");
}

Result<Update> UpdateGenerator::TryDelete() {
  if (sets_.empty()) return Status::FailedPrecondition("no set objects");
  for (int attempt = 0; attempt < 16; ++attempt) {
    const Oid& parent = sets_[rng_.Uniform(sets_.size())];
    const Object* object = store_->Get(parent);
    if (object == nullptr || !object->IsSet() || object->children().empty()) {
      continue;
    }
    const auto& children = object->children().elements();
    Oid child = children[rng_.Uniform(children.size())];
    GSV_RETURN_IF_ERROR(store_->Delete(parent, child));
    if (store_->Parents(child).empty()) detached_.push_back(child);
    Rescan();
    return Update::Delete(parent, child);
  }
  return Status::FailedPrecondition("no deletable edge found");
}

Result<Update> UpdateGenerator::TryInsert() {
  if (sets_.empty()) return Status::FailedPrecondition("no set objects");
  const Oid& parent = sets_[rng_.Uniform(sets_.size())];

  // Option 1: re-attach a detached subtree (tree-preserving by
  // construction: the subtree has no remaining parent). Skip candidates
  // that would create a cycle (parent inside the detached subtree).
  if (!detached_.empty() && rng_.Bernoulli(0.5)) {
    size_t index = rng_.Uniform(detached_.size());
    Oid child = detached_[index];
    if (store_->Contains(child) && !Reachable(child, parent)) {
      GSV_RETURN_IF_ERROR(store_->Insert(parent, child));
      detached_.erase(detached_.begin() + index);
      Rescan();
      return Update::Insert(parent, child);
    }
  }

  // Option 2 (DAG mode): link an existing node under a second parent.
  if (options_.mode == UpdateMode::kDagPreserving && !atoms_.empty() &&
      rng_.Bernoulli(0.5)) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::vector<Oid>& pool = rng_.Bernoulli(0.5) ? atoms_ : sets_;
      const Oid& child = pool[rng_.Uniform(pool.size())];
      if (child == parent || Reachable(child, parent)) continue;  // no cycle
      const Object* parent_obj = store_->Get(parent);
      if (parent_obj == nullptr || parent_obj->children().Contains(child)) {
        continue;  // duplicate insert would be a silent no-op; pick another
      }
      GSV_RETURN_IF_ERROR(store_->Insert(parent, child));
      return Update::Insert(parent, child);
    }
  }

  // Option 3: attach a fresh atomic leaf.
  const std::string& label =
      options_.leaf_labels[rng_.Uniform(options_.leaf_labels.size())];
  Oid fresh(options_.oid_prefix + std::to_string(fresh_counter_++));
  while (store_->Contains(fresh)) {
    fresh = Oid(options_.oid_prefix + std::to_string(fresh_counter_++));
  }
  GSV_RETURN_IF_ERROR(store_->PutAtomic(
      fresh, label, Value::Int(rng_.UniformInt(0, options_.max_value - 1))));
  GSV_RETURN_IF_ERROR(store_->Insert(parent, fresh));
  atoms_.push_back(fresh);
  return Update::Insert(parent, fresh);
}

Result<Update> UpdateGenerator::Step() {
  double total = options_.p_insert + options_.p_delete + options_.p_modify;
  double draw = rng_.NextDouble() * total;
  // Try the drawn kind first, then fall back to the others.
  int first = draw < options_.p_insert
                  ? 0
                  : (draw < options_.p_insert + options_.p_delete ? 1 : 2);
  for (int offset = 0; offset < 3; ++offset) {
    Result<Update> result = Status::Internal("unreachable");
    switch ((first + offset) % 3) {
      case 0:
        result = TryInsert();
        break;
      case 1:
        result = TryDelete();
        break;
      default:
        result = TryModify();
        break;
    }
    if (result.ok()) return result;
  }
  return Status::FailedPrecondition("no valid update possible");
}

Result<std::vector<Update>> UpdateGenerator::Run(size_t n) {
  std::vector<Update> updates;
  updates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GSV_ASSIGN_OR_RETURN(Update update, Step());
    updates.push_back(std::move(update));
  }
  return updates;
}

}  // namespace gsv
