#include "core/view_definition.h"

#include "query/parser.h"

namespace gsv {

ViewDefinition::ViewDefinition(std::string name, bool materialized,
                               Query query)
    : name_(std::move(name)),
      view_oid_(name_),
      materialized_(materialized),
      query_(std::move(query)) {}

Result<ViewDefinition> ViewDefinition::Create(std::string name,
                                              bool materialized, Query query) {
  if (name.empty()) {
    return Status::InvalidArgument("view name must not be empty");
  }
  if (name.find('.') != std::string::npos) {
    return Status::InvalidArgument(
        "view name '" + name +
        "' must not contain '.' (reserved for delegate OIDs)");
  }
  return ViewDefinition(std::move(name), materialized, std::move(query));
}

Result<ViewDefinition> ViewDefinition::Parse(std::string_view text) {
  GSV_ASSIGN_OR_RETURN(DefineStatement stmt, ParseDefine(text));
  return Create(std::move(stmt.name), stmt.materialized, std::move(stmt.query));
}

bool ViewDefinition::IsSimple() const {
  return query_.IsSimple() && query_.select_path.size() > 0;
}

Path ViewDefinition::sel_path() const { return query_.select_path.ToPath(); }

Path ViewDefinition::cond_path() const {
  if (query_.where.IsTrivial()) return Path();
  return query_.where.simple_predicate().path.ToPath();
}

std::optional<Predicate> ViewDefinition::predicate() const {
  if (query_.where.IsTrivial()) return std::nullopt;
  return query_.where.simple_predicate();
}

Path ViewDefinition::full_path() const {
  return sel_path().Concat(cond_path());
}

std::string ViewDefinition::ToString() const {
  return std::string("define ") + (materialized_ ? "mview " : "view ") +
         name_ + " as: " + query_.ToString();
}

}  // namespace gsv
