#ifndef GSV_CORE_VIEW_STORAGE_H_
#define GSV_CORE_VIEW_STORAGE_H_

#include "oem/object.h"
#include "oem/oid.h"
#include "oem/update.h"
#include "oem/value.h"
#include "util/status.h"

namespace gsv {

// The delegate-set operations a maintenance algorithm needs (paper §4.3):
// V_insert(MV, MV.Y) and V_delete(MV, MV.Y), plus membership queries.
// Implemented by MaterializedView (one view, own delegates) and by
// ViewCluster members (shared delegates, §3.2 "view cluster" remark).
class ViewStorage {
 public:
  virtual ~ViewStorage() = default;

  // The view object's OID (the "MV" in delegate OIDs "MV.Y").
  virtual const Oid& view_oid() const = 0;

  // True if the delegate of `base_oid` is currently in the view.
  virtual bool ContainsBase(const Oid& base_oid) const = 0;

  // V_insert: creates the delegate of `base_object` and adds it to the view
  // object's value. Inserting an existing delegate is a no-op (§4.3).
  virtual Status VInsert(const Object& base_object) = 0;

  // V_delete: removes the delegate of `base_oid` from the view. Deleting an
  // absent delegate is a no-op (§4.3).
  virtual Status VDelete(const Oid& base_oid) = 0;

  // Base OIDs of all current members.
  virtual OidSet BaseMembers() const = 0;

  // Propagates a base update into delegate *values* (not membership) so
  // delegates keep the same value as their originals (§3.2). Storage
  // implementations that don't duplicate values may leave this a no-op.
  virtual Status SyncUpdate(const Update& update) {
    (void)update;
    return Status::Ok();
  }
};

}  // namespace gsv

#endif  // GSV_CORE_VIEW_STORAGE_H_
