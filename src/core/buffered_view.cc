#include "core/buffered_view.h"

namespace gsv {

bool BufferedViewStorage::ContainsBase(const Oid& base_oid) const {
  auto it = overlay_.find(base_oid);
  if (it != overlay_.end()) return it->second;
  return base_->ContainsBase(base_oid);
}

Status BufferedViewStorage::VInsert(const Object& base_object) {
  if (ContainsBase(base_object.oid())) {
    return Status::Ok();  // the real view would ignore it too (§4.3)
  }
  overlay_[base_object.oid()] = true;
  Op op;
  op.kind = Op::Kind::kVInsert;
  op.object = base_object;
  op.base_oid = base_object.oid();
  ops_.push_back(std::move(op));
  return Status::Ok();
}

Status BufferedViewStorage::VDelete(const Oid& base_oid) {
  if (!ContainsBase(base_oid)) {
    return Status::Ok();  // deleting an absent delegate: no-op (§4.3)
  }
  overlay_[base_oid] = false;
  Op op;
  op.kind = Op::Kind::kVDelete;
  op.base_oid = base_oid;
  ops_.push_back(std::move(op));
  return Status::Ok();
}

OidSet BufferedViewStorage::BaseMembers() const {
  OidSet members = base_->BaseMembers();
  for (const auto& [oid, present] : overlay_) {
    if (present) {
      members.Insert(oid);
    } else {
      members.Erase(oid);
    }
  }
  return members;
}

Status BufferedViewStorage::SyncUpdate(const Update& update) {
  // Always recorded: whether the sync applies depends on membership at
  // replay time, and the real view's SyncUpdate makes that call.
  Op op;
  op.kind = Op::Kind::kSync;
  op.update = update;
  ops_.push_back(std::move(op));
  return Status::Ok();
}

Status BufferedViewStorage::ReplayInto(ViewStorage* target) const {
  Status first_error;
  for (const Op& op : ops_) {
    Status status;
    switch (op.kind) {
      case Op::Kind::kVInsert:
        status = target->VInsert(op.object);
        break;
      case Op::Kind::kVDelete:
        status = target->VDelete(op.base_oid);
        break;
      case Op::Kind::kSync:
        status = target->SyncUpdate(op.update);
        break;
    }
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

}  // namespace gsv
