#include "core/view_cluster.h"

#include "core/virtual_view.h"

namespace gsv {

// ViewStorage adapter for one member view of a cluster. Membership is
// tracked per view; delegate objects are shared through the cluster.
class ViewCluster::MemberView : public ViewStorage {
 public:
  MemberView(ViewCluster* cluster, ViewDefinition def)
      : cluster_(cluster), def_(std::move(def)) {}

  const ViewDefinition& def() const { return def_; }
  const Oid& view_oid() const override { return def_.view_oid(); }

  bool ContainsBase(const Oid& base_oid) const override {
    return members_.Contains(base_oid);
  }

  Status VInsert(const Object& base_object) override {
    if (ContainsBase(base_object.oid())) return Status::Ok();
    GSV_RETURN_IF_ERROR(cluster_->AcquireDelegate(base_object));
    GSV_RETURN_IF_ERROR(cluster_->store().AddChildRaw(
        view_oid(), cluster_->DelegateOid(base_object.oid())));
    members_.Insert(base_object.oid());
    return Status::Ok();
  }

  Status VDelete(const Oid& base_oid) override {
    if (!ContainsBase(base_oid)) return Status::Ok();
    GSV_RETURN_IF_ERROR(cluster_->store().RemoveChildRaw(
        view_oid(), cluster_->DelegateOid(base_oid)));
    GSV_RETURN_IF_ERROR(cluster_->ReleaseDelegate(base_oid));
    members_.Erase(base_oid);
    return Status::Ok();
  }

  OidSet BaseMembers() const override { return members_; }

  Status SyncUpdate(const Update& update) override {
    // Shared delegates: the sync is idempotent, so every member view may
    // forward it.
    return cluster_->SyncShared(update);
  }

 private:
  ViewCluster* cluster_;
  ViewDefinition def_;
  OidSet members_;
};

ViewCluster::ViewCluster(ObjectStore* store, std::string name)
    : store_(store), name_(std::move(name)), cluster_oid_(name_) {}

ViewCluster::~ViewCluster() = default;

Status ViewCluster::Bootstrap() {
  if (bootstrapped_) {
    return Status::FailedPrecondition("cluster " + name_ +
                                      " already bootstrapped");
  }
  if (name_.empty() || name_.find('.') != std::string::npos) {
    return Status::InvalidArgument("cluster name '" + name_ +
                                   "' must be non-empty and dot-free");
  }
  GSV_RETURN_IF_ERROR(
      store_->Put(Object(cluster_oid_, "cluster", Value::Set(OidSet()))));
  bootstrapped_ = true;
  return Status::Ok();
}

Result<ViewStorage*> ViewCluster::AddView(const ViewDefinition& def) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("cluster " + name_ +
                                      " not bootstrapped");
  }
  GSV_RETURN_IF_ERROR(
      store_->Put(Object(def.view_oid(), "mview", Value::Set(OidSet()))));
  GSV_RETURN_IF_ERROR(store_->RegisterDatabase(def.name(), def.view_oid()));
  members_.push_back(std::make_unique<MemberView>(this, def));
  return static_cast<ViewStorage*>(members_.back().get());
}

Status ViewCluster::InitializeAll(const ObjectStore& base) {
  for (const auto& member : members_) {
    GSV_ASSIGN_OR_RETURN(OidSet selected, EvaluateView(base, member->def()));
    for (const Oid& oid : selected) {
      const Object* object = base.Get(oid);
      if (object == nullptr) {
        return Status::Internal("view member " + oid.str() + " missing");
      }
      GSV_RETURN_IF_ERROR(member->VInsert(*object));
    }
  }
  return Status::Ok();
}

int ViewCluster::RefCount(const Oid& base_oid) const {
  auto it = refcounts_.find(base_oid.str());
  return it == refcounts_.end() ? 0 : it->second;
}

Status ViewCluster::AcquireDelegate(const Object& base_object) {
  int& count = refcounts_[base_object.oid().str()];
  if (count == 0) {
    Oid delegate_oid = DelegateOid(base_object.oid());
    GSV_RETURN_IF_ERROR(store_->Put(
        Object(delegate_oid, base_object.label(), base_object.value())));
    GSV_RETURN_IF_ERROR(store_->AddChildRaw(cluster_oid_, delegate_oid));
  }
  ++count;
  return Status::Ok();
}

Status ViewCluster::ReleaseDelegate(const Oid& base_oid) {
  auto it = refcounts_.find(base_oid.str());
  if (it == refcounts_.end() || it->second <= 0) {
    return Status::Internal("release of unreferenced delegate for " +
                            base_oid.str());
  }
  if (--it->second == 0) {
    refcounts_.erase(it);
    Oid delegate_oid = DelegateOid(base_oid);
    GSV_RETURN_IF_ERROR(store_->RemoveChildRaw(cluster_oid_, delegate_oid));
    GSV_RETURN_IF_ERROR(store_->Remove(delegate_oid));
  }
  return Status::Ok();
}

Status ViewCluster::SyncShared(const Update& update) {
  if (RefCount(update.parent) == 0) return Status::Ok();
  Oid delegate = DelegateOid(update.parent);
  switch (update.kind) {
    case UpdateKind::kInsert:
      return store_->AddChildRaw(delegate, update.child);
    case UpdateKind::kDelete:
      return store_->RemoveChildRaw(delegate, update.child);
    case UpdateKind::kModify:
      return store_->SetValueRaw(delegate, update.new_value);
  }
  return Status::InvalidArgument("unknown update kind");
}

}  // namespace gsv
