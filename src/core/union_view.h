#ifndef GSV_CORE_UNION_VIEW_H_
#define GSV_CORE_UNION_VIEW_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/algorithm1.h"
#include "core/base_accessor.h"
#include "core/view_definition.h"
#include "core/view_storage.h"
#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// Views with more than one select path — the relaxation §6 calls
// "straightforward": one materialized view whose members are the union of
// several simple branches, e.g.
//
//   SELECT ROOT.professor X WHERE X.age <= 45
//   ∪ SELECT ROOT.secretary X WHERE X.age <= 45
//
// Each branch is an ordinary simple definition maintained by its own
// Algorithm 1 instance; the branches share one delegate per base object,
// reference-counted so an object selected by two branches keeps its
// delegate until the last branch drops it. The view object
// <UV, mview, set, {UV.*}> is a queryable database like any other view.
class UnionView {
 public:
  // `view_store` holds the delegates; `accessor` answers base accesses for
  // every branch maintainer (LocalAccessor centrally, RemoteAccessor in a
  // warehouse). Both must outlive the union view.
  UnionView(ObjectStore* view_store, std::string name,
            BaseAccessor* accessor);
  ~UnionView();

  // Creates the view object and registers the database name. Call once.
  Status Bootstrap();

  // Adds one branch; `def` must satisfy Algorithm 1's simple-view shape
  // and use this view's base root as its entry. Branches are evaluated on
  // `base` immediately (the view must be initially correct, §4.3).
  Status AddBranch(const ViewDefinition& def, const ObjectStore& base,
                   Oid root);

  // Feeds one applied base update to every branch maintainer (§4.3: call
  // right after the update). Registering the view as an UpdateListener is
  // also supported via listener().
  Status Maintain(const Update& update);
  UpdateListener* listener() { return &listener_; }

  const Oid& view_oid() const { return view_oid_; }
  // Union membership (any branch).
  OidSet Members() const;
  // How many branches currently select `base_oid`.
  int RefCount(const Oid& base_oid) const;
  size_t branch_count() const { return branches_.size(); }

  const Status& last_status() const { return last_status_; }

 private:
  class BranchStorage;  // per-branch ViewStorage adapter

  Status AcquireDelegate(const Object& base_object);
  Status ReleaseDelegate(const Oid& base_oid);
  Status SyncShared(const Update& update);

  class Listener : public UpdateListener {
   public:
    explicit Listener(UnionView* owner) : owner_(owner) {}
    void OnUpdate(const ObjectStore& store, const Update& update) override {
      (void)store;
      Status status = owner_->Maintain(update);
      if (!status.ok()) owner_->last_status_ = status;
    }

   private:
    UnionView* owner_;
  };

  struct Branch {
    std::unique_ptr<BranchStorage> storage;
    std::unique_ptr<Algorithm1Maintainer> maintainer;
  };

  ObjectStore* store_;
  std::string name_;
  Oid view_oid_;
  BaseAccessor* accessor_;
  bool bootstrapped_ = false;
  std::unordered_map<std::string, int> refcounts_;
  std::vector<Branch> branches_;
  Listener listener_;
  Status last_status_;
};

}  // namespace gsv

#endif  // GSV_CORE_UNION_VIEW_H_
