#ifndef GSV_CORE_GENERAL_MAINTAINER_H_
#define GSV_CORE_GENERAL_MAINTAINER_H_

#include <cstdint>
#include <vector>

#include "core/view_definition.h"
#include "core/view_storage.h"
#include "oem/store.h"
#include "oem/update.h"
#include "path/navigate.h"
#include "util/status.h"

namespace gsv {

// Incremental maintenance for the generalized views of §6: select and
// condition paths may be path expressions with wildcards, the WHERE clause
// may combine predicates with AND/OR, and the base may be a DAG (multiple
// derivations per object). WITHIN-scoped views are supported.
//
// Strategy (candidate-recheck): each base update can only change the
// membership of
//   * descendants of the inserted/deleted edge's child N2 (their
//     reachability from ROOT via sel_path may change), and
//   * ancestors of the updated object within condition-path distance
//     (their condition witnesses may change).
// The maintainer enumerates exactly these candidates and re-derives each
// one: Y is in the view iff some path ROOT→Y matches sel_path (§6's path
// containment test, applied to concrete derivation paths) and the WHERE
// condition holds on Y. This costs more than Algorithm 1 — the point of
// experiment E8/E9 — but handles every §6 relaxation, and degenerates to a
// small candidate set for simple views.
class GeneralMaintainer : public UpdateListener {
 public:
  struct Options {
    // Cap on derivation paths examined per candidate (DAG safety).
    size_t max_paths_per_check = 64;
    // Cap on the upward climb depth (cycle safety; condition '*' paths).
    size_t max_depth = 256;
  };

  struct Stats {
    int64_t updates = 0;
    int64_t candidates_checked = 0;
    int64_t v_inserts = 0;
    int64_t v_deletes = 0;
    // Times a safety cap truncated a search (max_paths_per_check or
    // max_depth with work left in the frontier). A nonzero count means
    // candidates may have been missed — correctness now leans on the
    // deferred-drain verification sweep, and the first hit warns once.
    int64_t caps_hit = 0;
  };

  // The maintainer reads the base store directly (centralized setting).
  // All pointers must outlive the maintainer.
  GeneralMaintainer(ViewStorage* view, const ObjectStore* base,
                    const ViewDefinition& def, Oid root)
      : GeneralMaintainer(view, base, def, std::move(root), Options{}) {}
  GeneralMaintainer(ViewStorage* view, const ObjectStore* base,
                    const ViewDefinition& def, Oid root, Options options);

  Status Maintain(const Update& update);

  void OnUpdate(const ObjectStore& store, const Update& update) override;

  const Stats& stats() const { return stats_; }
  const Status& last_status() const { return last_status_; }

 private:
  // Candidates whose condition may be affected: ancestors of `n` (and `n`)
  // within the condition reach.
  void CollectConditionCandidates(const Oid& n, OidSet* candidates) const;
  // Candidates whose reachability may be affected: descendants of `n2`.
  void CollectReachabilityCandidates(const Oid& n2, OidSet* candidates) const;

  // Re-derives `y` and fixes its view membership.
  Status Recheck(const Oid& y);
  bool IsSelected(const Oid& y) const;

  OidFilter MakeFilter() const;

  ViewStorage* view_;
  const ObjectStore* base_;
  ViewDefinition def_;
  Options options_;
  Oid root_;
  size_t cond_reach_;       // max labels any predicate path can span;
                            // SIZE_MAX when some predicate has '*'
  // Candidate collection is logically const but counts its cap hits.
  mutable Stats stats_;
  Status last_status_;
};

}  // namespace gsv

#endif  // GSV_CORE_GENERAL_MAINTAINER_H_
