#include "core/algorithm1.h"

#include <cassert>

namespace gsv {

Status Algorithm1Maintainer::ValidateDefinition(const ViewDefinition& def) {
  if (!def.IsSimple()) {
    return Status::InvalidArgument(
        "Algorithm 1 maintains simple views only (constant sel_path, at most "
        "one constant-path predicate); got: " +
        def.ToString());
  }
  return Status::Ok();
}

Algorithm1Maintainer::Algorithm1Maintainer(ViewStorage* view,
                                           BaseAccessor* accessor,
                                           const ViewDefinition& def, Oid root,
                                           Options options)
    : view_(view),
      accessor_(accessor),
      options_(options),
      root_(std::move(root)),
      sel_path_(def.sel_path()),
      cond_path_(def.cond_path()),
      full_path_(def.full_path()),
      pred_(def.predicate()) {
  assert(ValidateDefinition(def).ok());
}

Status Algorithm1Maintainer::Maintain(const Update& update) {
  ++stats_.updates;
  // Delegate values first, so membership decisions below see synced state.
  GSV_RETURN_IF_ERROR(view_->SyncUpdate(update));
  switch (update.kind) {
    case UpdateKind::kInsert:
      return OnInsert(update);
    case UpdateKind::kDelete:
      return OnDelete(update);
    case UpdateKind::kModify:
      return OnModify(update);
  }
  return Status::InvalidArgument("unknown update kind");
}

void Algorithm1Maintainer::OnUpdate(const ObjectStore& store,
                                    const Update& update) {
  (void)store;
  Status status = Maintain(update);
  if (!status.ok()) last_status_ = status;
}

bool Algorithm1Maintainer::VerifySelected(const Oid& y) {
  if (!options_.verify_candidates) return true;
  return accessor_->VerifyPath(root_, y, sel_path_);
}

// When insert(N1,N2) occurs:
//   if sel_path.cond_path = path(ROOT,N1).label(N2).p
//   then S = eval(N2, p, cond);
//        for all X in S: V_insert(MV, MV.Y) where Y = ancestor(X, cond_path).
Status Algorithm1Maintainer::OnInsert(const Update& update) {
  GSV_ASSIGN_OR_RETURN(Object n2, accessor_->Fetch(update.child));
  bool matched = false;
  for (const Path& rp : accessor_->PathsFromRoot(root_, update.parent)) {
    const size_t k = rp.size();
    if (k + 1 > full_path_.size()) continue;
    if (!full_path_.StartsWith(rp)) continue;
    if (full_path_.label(k) != n2.label()) continue;
    matched = true;
    const Path p = full_path_.Suffix(k + 1);
    for (const Oid& x : accessor_->Eval(update.child, p, pred_)) {
      for (const Oid& y : accessor_->Ancestors(x, cond_path_)) {
        if (!VerifySelected(y)) continue;
        GSV_ASSIGN_OR_RETURN(Object y_object, accessor_->Fetch(y));
        GSV_RETURN_IF_ERROR(view_->VInsert(y_object));
        ++stats_.v_inserts;
      }
    }
  }
  if (matched) ++stats_.matched;
  return Status::Ok();
}

// When delete(N1,N2) occurs:
//   if sel_path.cond_path = path(ROOT,N1).label(N2).p
//   then S = eval(N2, p, cond);
//        if p = p1.cond_path (edge in the select region):
//           V_delete(MV, MV.Y) for Y = ancestor(X, cond_path), X in S
//        else (edge in the condition region, below Y):
//           if eval(Y, cond_path, cond) = ∅ then V_delete(MV, MV.Y).
//
// Select-region note: the paper reaches the affected Y through its
// condition witnesses X. Right after the update the two are equivalent —
// a delegate exists only if a witness does — but when events are applied
// with a delay (§5's autonomous sources; Warehouse deferred mode) a
// later-queued modify may already have killed the witness at the source,
// and the corresponding modify event cannot clean up either (the corridor
// path is broken by then). We therefore locate the candidates through the
// select structure of the detached subtree — the objects in
// N2.(sel remainder) — which is update-order-insensitive.
Status Algorithm1Maintainer::OnDelete(const Update& update) {
  GSV_ASSIGN_OR_RETURN(Object n2, accessor_->Fetch(update.child));
  bool matched = false;
  // path(ROOT,N1) is unaffected by removing the N1->N2 edge below N1.
  for (const Path& rp : accessor_->PathsFromRoot(root_, update.parent)) {
    const size_t k = rp.size();
    if (k + 1 > full_path_.size()) continue;
    if (!full_path_.StartsWith(rp)) continue;
    if (full_path_.label(k) != n2.label()) continue;
    matched = true;
    const Path p = full_path_.Suffix(k + 1);

    if (k + 1 <= sel_path_.size()) {
      // Select region: the subtree's selected-level objects lost this
      // derivation from ROOT (the detached subtree stays evaluable).
      const Path sel_rest = sel_path_.Suffix(k + 1);
      for (const Oid& y :
           accessor_->Eval(update.child, sel_rest, std::nullopt)) {
        if (!view_->ContainsBase(y)) continue;
        if (options_.verify_candidates &&
            accessor_->VerifyPath(root_, y, sel_path_)) {
          continue;  // still derivable some other way; keep it
        }
        GSV_RETURN_IF_ERROR(view_->VDelete(y));
        ++stats_.v_deletes;
      }
    } else {
      // Condition region: Y sits above the deleted edge; if the detached
      // subtree held a witness, re-examine Y's condition because other
      // descendants may still satisfy it.
      if (!accessor_->EvalAny(update.child, p, pred_)) continue;
      const Path q = cond_path_.Prefix(k - sel_path_.size());
      for (const Oid& y : accessor_->Ancestors(update.parent, q)) {
        if (!view_->ContainsBase(y)) continue;
        ++stats_.rechecks;
        if (!accessor_->EvalAny(y, cond_path_, pred_)) {
          GSV_RETURN_IF_ERROR(view_->VDelete(y));
          ++stats_.v_deletes;
        }
      }
    }
  }
  if (matched) ++stats_.matched;
  return Status::Ok();
}

// When modify(N, oldv, newv) occurs:
//   if path(ROOT,N) = sel_path.cond_path
//   then Y = ancestor(N, cond_path);
//        if cond(newv) then V_insert(MV, MV.Y)
//        else if cond(oldv) and eval(Y, cond_path, cond) = ∅
//             then V_delete(MV, MV.Y).
Status Algorithm1Maintainer::OnModify(const Update& update) {
  if (!pred_.has_value()) return Status::Ok();  // no condition: membership
                                                // depends on reachability only
  if (!accessor_->MatchesRootPath(root_, update.parent, full_path_)) {
    return Status::Ok();
  }
  ++stats_.matched;

  for (const Oid& y : accessor_->Ancestors(update.parent, cond_path_)) {
    if (pred_->Holds(update.new_value)) {
      if (!VerifySelected(y)) continue;
      GSV_ASSIGN_OR_RETURN(Object y_object, accessor_->Fetch(y));
      GSV_RETURN_IF_ERROR(view_->VInsert(y_object));
      ++stats_.v_inserts;
    } else if (pred_->Holds(update.old_value)) {
      ++stats_.rechecks;
      if (!accessor_->EvalAny(y, cond_path_, pred_)) {
        GSV_RETURN_IF_ERROR(view_->VDelete(y));
        ++stats_.v_deletes;
      }
    }
  }
  return Status::Ok();
}

}  // namespace gsv
