#include "core/general_maintainer.h"

#include <atomic>
#include <cstdio>
#include <deque>
#include <unordered_set>

namespace gsv {

namespace {

// A truncated search means candidates may have been missed; say so once
// per process rather than silently degrading to sweep-only correctness.
void WarnCapsHitOnce(const char* where) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "gsv: general maintainer hit a safety cap (%s); candidate "
                 "search was truncated — membership converges at the next "
                 "verification sweep (counted in stats().caps_hit)\n",
                 where);
  }
}

}  // namespace

GeneralMaintainer::GeneralMaintainer(ViewStorage* view,
                                     const ObjectStore* base,
                                     const ViewDefinition& def, Oid root,
                                     Options options)
    : view_(view),
      base_(base),
      def_(def),
      options_(options),
      root_(std::move(root)) {
  cond_reach_ = 0;
  for (const Predicate* pred : def_.query().where.Predicates()) {
    int64_t max_len = pred->path.MaxLength();
    if (max_len < 0) {
      cond_reach_ = SIZE_MAX;
      break;
    }
    cond_reach_ = std::max(cond_reach_, static_cast<size_t>(max_len));
  }
}

OidFilter GeneralMaintainer::MakeFilter() const {
  if (!def_.query().within_db.has_value()) return nullptr;
  const ObjectStore* base = base_;
  std::string within = *def_.query().within_db;
  Oid root = root_;
  return [base, within, root](const Oid& oid) {
    return oid == root || base->InDatabase(within, oid);
  };
}

void GeneralMaintainer::CollectConditionCandidates(const Oid& n,
                                                   OidSet* candidates) const {
  // Upward BFS from n, depth-bounded by the condition reach. A node at
  // distance d from n can only be affected if some predicate path has an
  // instance of length >= d.
  if (base_->Contains(n)) candidates->Insert(n);
  size_t limit = cond_reach_ == SIZE_MAX
                     ? options_.max_depth
                     : std::min(cond_reach_, options_.max_depth);
  std::unordered_set<std::string> seen{n.str()};
  std::deque<Oid> frontier{n};
  for (size_t depth = 0; depth < limit && !frontier.empty(); ++depth) {
    std::deque<Oid> next;
    for (const Oid& oid : frontier) {
      for (const Oid& parent : base_->Parents(oid)) {
        if (seen.insert(parent.str()).second) {
          candidates->Insert(parent);
          next.push_back(parent);
        }
      }
    }
    frontier = std::move(next);
  }
  // Truncated only when max_depth cut the climb short of the condition
  // reach; stopping at the natural reach with parents left is exhaustive.
  if (!frontier.empty() &&
      (cond_reach_ == SIZE_MAX || cond_reach_ > options_.max_depth)) {
    ++stats_.caps_hit;
    WarnCapsHitOnce("condition climb max_depth");
  }
}

void GeneralMaintainer::CollectReachabilityCandidates(
    const Oid& n2, OidSet* candidates) const {
  // Descendants of n2 (including n2): their root-paths may have changed.
  if (!base_->Contains(n2)) return;
  candidates->Insert(n2);
  std::unordered_set<std::string> seen{n2.str()};
  std::deque<Oid> frontier{n2};
  size_t depth = 0;
  while (!frontier.empty() && depth < options_.max_depth) {
    std::deque<Oid> next;
    for (const Oid& oid : frontier) {
      const Object* object = base_->Get(oid);
      if (object == nullptr || !object->IsSet()) continue;
      for (const Oid& child : object->children()) {
        if (base_->Contains(child) && seen.insert(child.str()).second) {
          candidates->Insert(child);
          next.push_back(child);
        }
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  if (!frontier.empty()) {
    ++stats_.caps_hit;
    WarnCapsHitOnce("descendant scan max_depth");
  }
}

bool GeneralMaintainer::IsSelected(const Oid& y) const {
  OidFilter filter = MakeFilter();
  // Some derivation path root→y must match the select expression...
  std::vector<Path> paths =
      PathsFromTo(*base_, root_, y, options_.max_paths_per_check,
                  options_.max_depth, filter);
  if (paths.size() >= options_.max_paths_per_check) {
    ++stats_.caps_hit;
    WarnCapsHitOnce("derivation paths max_paths_per_check");
  }
  bool reachable = false;
  for (const Path& path : paths) {
    if (def_.query().select_path.Matches(path)) {
      reachable = true;
      break;
    }
  }
  if (!reachable) return false;
  // ...and the condition must hold on y.
  return def_.query().where.Evaluate(*base_, y, filter);
}

Status GeneralMaintainer::Recheck(const Oid& y) {
  ++stats_.candidates_checked;
  bool selected = IsSelected(y);
  bool present = view_->ContainsBase(y);
  if (selected && !present) {
    const Object* object = base_->Get(y);
    if (object == nullptr) {
      return Status::Internal("selected object " + y.str() + " missing");
    }
    GSV_RETURN_IF_ERROR(view_->VInsert(*object));
    ++stats_.v_inserts;
  } else if (!selected && present) {
    GSV_RETURN_IF_ERROR(view_->VDelete(y));
    ++stats_.v_deletes;
  }
  return Status::Ok();
}

Status GeneralMaintainer::Maintain(const Update& update) {
  ++stats_.updates;
  GSV_RETURN_IF_ERROR(view_->SyncUpdate(update));

  OidSet candidates;
  switch (update.kind) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      CollectReachabilityCandidates(update.child, &candidates);
      CollectConditionCandidates(update.parent, &candidates);
      // Condition witnesses below the edge endpoint may now be (un)reachable
      // from ancestors above it — those ancestors are condition candidates
      // of N2 as well.
      CollectConditionCandidates(update.child, &candidates);
      break;
    case UpdateKind::kModify:
      CollectConditionCandidates(update.parent, &candidates);
      break;
  }
  for (const Oid& y : candidates) {
    GSV_RETURN_IF_ERROR(Recheck(y));
  }
  return Status::Ok();
}

void GeneralMaintainer::OnUpdate(const ObjectStore& store,
                                 const Update& update) {
  (void)store;
  Status status = Maintain(update);
  if (!status.ok()) last_status_ = status;
}

}  // namespace gsv
