#ifndef GSV_CORE_BUFFERED_VIEW_H_
#define GSV_CORE_BUFFERED_VIEW_H_

#include <unordered_map>
#include <vector>

#include "core/view_storage.h"
#include "oem/object.h"
#include "oem/oid.h"
#include "oem/update.h"
#include "util/status.h"

namespace gsv {

// A write-buffering ViewStorage decorator for parallel batch maintenance.
//
// A maintenance worker evaluates its share of a batch against a frozen base
// and records the resulting view operations here instead of touching the
// real view: membership questions are answered through an overlay on top of
// the wrapped (read-only) storage, so the worker observes its own effects,
// while the wrapped view — and the shared delegate store underneath it —
// stays untouched until the single-threaded ReplayInto after the barrier.
// This is what lets independent views and independent subtrees of one view
// evaluate concurrently without any locking on the delegate store.
//
// Workers on *different* buffers never see each other's operations. That is
// sound for batch maintenance because every worker evaluates against the
// same frozen final base state, so any two workers that reach the same
// selected object reach the same verdict about it; replaying their op logs
// in any per-buffer order yields the same view (duplicate V_insert/V_delete
// are no-ops, §4.3).
class BufferedViewStorage : public ViewStorage {
 public:
  struct Op {
    enum class Kind { kVInsert, kVDelete, kSync };
    Kind kind;
    Object object;  // kVInsert: the base object to delegate
    Oid base_oid;   // kVDelete: the member to drop
    Update update;  // kSync: the base update to propagate into values
  };

  // `base` must outlive the buffer and not change while it is in use.
  explicit BufferedViewStorage(const ViewStorage* base) : base_(base) {}

  // ---- ViewStorage ----
  const Oid& view_oid() const override { return base_->view_oid(); }
  bool ContainsBase(const Oid& base_oid) const override;
  Status VInsert(const Object& base_object) override;
  Status VDelete(const Oid& base_oid) override;
  OidSet BaseMembers() const override;
  Status SyncUpdate(const Update& update) override;

  // Applies the recorded operations to `target` in order. Returns the first
  // error but keeps applying (a batch must not half-stop).
  Status ReplayInto(ViewStorage* target) const;

  const std::vector<Op>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

 private:
  const ViewStorage* base_;
  // Membership decisions made by this worker (true = inserted, false =
  // deleted); absent means "whatever the wrapped view says".
  std::unordered_map<Oid, bool, OidHash> overlay_;
  std::vector<Op> ops_;
};

}  // namespace gsv

#endif  // GSV_CORE_BUFFERED_VIEW_H_
