#include "core/materialized_view.h"

#include "core/virtual_view.h"

namespace gsv {

MaterializedView::MaterializedView(ObjectStore* view_store, ViewDefinition def,
                                   Options options)
    : store_(view_store), def_(std::move(def)), options_(options) {}

Status MaterializedView::Bootstrap() {
  if (bootstrapped_) {
    return Status::FailedPrecondition("view " + def_.name() +
                                      " already bootstrapped");
  }
  if (options_.emit_basic_updates && options_.swizzle) {
    return Status::InvalidArgument(
        "emit_basic_updates is incompatible with swizzle (swizzling is "
        "view-internal bookkeeping, not base updates)");
  }
  GSV_RETURN_IF_ERROR(
      store_->Put(Object(view_oid(), "mview", Value::Set(OidSet()))));
  GSV_RETURN_IF_ERROR(store_->RegisterDatabase(def_.name(), view_oid()));
  bootstrapped_ = true;
  return Status::Ok();
}

Status MaterializedView::Initialize(const ObjectStore& base) {
  GSV_RETURN_IF_ERROR(Bootstrap());
  GSV_ASSIGN_OR_RETURN(OidSet members, EvaluateView(base, def_));
  for (const Oid& oid : members) {
    const Object* object = base.Get(oid);
    if (object == nullptr) {
      return Status::Internal("view member " + oid.str() +
                              " missing from base store");
    }
    GSV_RETURN_IF_ERROR(VInsert(*object));
  }
  return Status::Ok();
}

Status MaterializedView::AdoptExisting() {
  if (bootstrapped_) {
    return Status::FailedPrecondition("view " + def_.name() +
                                      " already bootstrapped");
  }
  const Object* view_object = store_->Get(view_oid());
  if (view_object == nullptr) {
    return Status::NotFound("view object " + view_oid().str() +
                            " not in the delegate store");
  }
  if (!view_object->IsSet()) {
    return Status::FailedPrecondition("view object " + view_oid().str() +
                                      " must have set type");
  }
  if (!store_->DatabaseOid(def_.name()).valid()) {
    GSV_RETURN_IF_ERROR(store_->RegisterDatabase(def_.name(), view_oid()));
  }
  base_members_.clear();
  for (const Oid& delegate : view_object->children()) {
    if (!delegate.IsDelegateOf(view_oid())) {
      return Status::Internal("view object " + view_oid().str() +
                              " holds non-delegate child " + delegate.str());
    }
    base_members_.Insert(delegate.BaseIn(view_oid()));
  }
  bootstrapped_ = true;
  return Status::Ok();
}

Value MaterializedView::DelegateValue(const Value& value) const {
  if (!value.IsSet()) return value;
  OidSet children;
  for (const Oid& child : value.AsSet()) {
    if (options_.swizzle && ContainsBase(child)) {
      children.Insert(DelegateOid(child));
    } else {
      children.Insert(child);
    }
  }
  return Value::Set(std::move(children));
}

Status MaterializedView::VInsert(const Object& base_object) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("view " + def_.name() +
                                      " not bootstrapped");
  }
  const Oid& base_oid = base_object.oid();
  if (ContainsBase(base_oid)) {
    ++stats_.ignored_inserts;
    return Status::Ok();  // paper §4.3: duplicate V_insert is ignored
  }
  Oid delegate_oid = DelegateOid(base_oid);
  GSV_RETURN_IF_ERROR(store_->Put(Object(
      delegate_oid, base_object.label(), DelegateValue(base_object.value()))));
  if (options_.emit_basic_updates) {
    GSV_RETURN_IF_ERROR(store_->Insert(view_oid(), delegate_oid));
  } else {
    GSV_RETURN_IF_ERROR(store_->AddChildRaw(view_oid(), delegate_oid));
  }
  base_members_.Insert(base_oid);
  ++stats_.v_inserts;
  if (delta_sink_ != nullptr) delta_sink_->OnVInsert(*this, base_object);

  if (options_.swizzle) {
    // Re-swizzle: delegates of this view that reference base_oid now point
    // at the new delegate. The delegate store's inverse index finds them.
    for (const Oid& parent : store_->Parents(base_oid)) {
      if (parent.IsDelegateOf(view_oid()) &&
          ContainsBase(parent.BaseIn(view_oid()))) {
        GSV_RETURN_IF_ERROR(
            store_->ReplaceChildRaw(parent, base_oid, delegate_oid));
      }
    }
  }
  return Status::Ok();
}

Status MaterializedView::VDelete(const Oid& base_oid) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("view " + def_.name() +
                                      " not bootstrapped");
  }
  if (!ContainsBase(base_oid)) {
    ++stats_.ignored_deletes;
    return Status::Ok();  // paper §4.3: deleting an absent delegate: no-op
  }
  Oid delegate_oid = DelegateOid(base_oid);
  if (options_.swizzle) {
    // Unswizzle: edges to the departing delegate revert to the base OID.
    for (const Oid& parent : store_->Parents(delegate_oid)) {
      if (parent == view_oid()) continue;
      GSV_RETURN_IF_ERROR(
          store_->ReplaceChildRaw(parent, delegate_oid, base_oid));
    }
  }
  if (options_.emit_basic_updates) {
    // Notify while the delegate still exists, then drop the object.
    GSV_RETURN_IF_ERROR(store_->Delete(view_oid(), delegate_oid));
  } else {
    GSV_RETURN_IF_ERROR(store_->RemoveChildRaw(view_oid(), delegate_oid));
  }
  GSV_RETURN_IF_ERROR(store_->Remove(delegate_oid));
  base_members_.Erase(base_oid);
  ++stats_.v_deletes;
  if (delta_sink_ != nullptr) delta_sink_->OnVDelete(*this, base_oid);
  return Status::Ok();
}

Status MaterializedView::SyncUpdate(const Update& update) {
  if (!options_.sync_values) return Status::Ok();
  if (!ContainsBase(update.parent)) return Status::Ok();
  if (delta_sink_ != nullptr) delta_sink_->OnSync(*this, update);
  switch (update.kind) {
    case UpdateKind::kInsert: {
      Oid delegate = DelegateOid(update.parent);
      Oid child = (options_.swizzle && ContainsBase(update.child))
                      ? DelegateOid(update.child)
                      : update.child;
      if (options_.emit_basic_updates && store_->Contains(child)) {
        return store_->Insert(delegate, child);
      }
      return store_->AddChildRaw(delegate, child);
    }
    case UpdateKind::kDelete: {
      Oid delegate = DelegateOid(update.parent);
      if (options_.emit_basic_updates) {
        const Object* object = store_->Get(delegate);
        if (object != nullptr && object->IsSet() &&
            object->children().Contains(update.child)) {
          return store_->Delete(delegate, update.child);
        }
      }
      // The stored edge may be in base or swizzled form; remove either.
      GSV_RETURN_IF_ERROR(store_->RemoveChildRaw(delegate, update.child));
      return store_->RemoveChildRaw(delegate, DelegateOid(update.child));
    }
    case UpdateKind::kModify: {
      Oid delegate = DelegateOid(update.parent);
      if (options_.emit_basic_updates) {
        const Object* object = store_->Get(delegate);
        if (object != nullptr && object->IsAtomic()) {
          return store_->Modify(delegate, update.new_value);
        }
      }
      return store_->SetValueRaw(delegate, update.new_value);
    }
  }
  return Status::InvalidArgument("unknown update kind");
}

Status MaterializedView::RefreshDelegate(const Object& base_object) {
  if (!ContainsBase(base_object.oid())) {
    return Status::NotFound("no delegate for " + base_object.oid().str());
  }
  GSV_RETURN_IF_ERROR(store_->SetValueRaw(DelegateOid(base_object.oid()),
                                          DelegateValue(base_object.value())));
  if (delta_sink_ != nullptr) delta_sink_->OnRefresh(*this, base_object);
  return Status::Ok();
}

}  // namespace gsv
