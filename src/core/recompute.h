#ifndef GSV_CORE_RECOMPUTE_H_
#define GSV_CORE_RECOMPUTE_H_

#include <cstdint>

#include "core/materialized_view.h"
#include "oem/store.h"
#include "oem/update.h"
#include "util/status.h"

namespace gsv {

// The full-recomputation baseline of §4.4: after each base update,
// re-evaluate the defining query, diff against the current delegates, and
// re-copy the values of surviving delegates (a from-scratch materialization
// that reuses unchanged delegate objects). This is the alternative that
// Algorithm 1 is compared against in experiment E1, and it doubles as the
// correctness oracle in the property tests.
class RecomputeMaintainer : public UpdateListener {
 public:
  struct Stats {
    int64_t recomputes = 0;
    int64_t delegates_created = 0;
    int64_t delegates_removed = 0;
    int64_t delegates_refreshed = 0;
    int64_t index_probe_recomputes = 0;  // evaluations served by the index
    int64_t index_probes = 0;            // posting scans across recomputes
  };

  // Pointers must outlive the maintainer.
  RecomputeMaintainer(MaterializedView* view, const ObjectStore* base)
      : view_(view), base_(base) {}

  // Performs one full recomputation.
  Status Recompute();

  // UpdateListener hookup: recompute after every base update.
  void OnUpdate(const ObjectStore& store, const Update& update) override;

  const Stats& stats() const { return stats_; }
  const Status& last_status() const { return last_status_; }

 private:
  MaterializedView* view_;
  const ObjectStore* base_;
  Stats stats_;
  Status last_status_;
};

}  // namespace gsv

#endif  // GSV_CORE_RECOMPUTE_H_
