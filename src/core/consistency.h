#ifndef GSV_CORE_CONSISTENCY_H_
#define GSV_CORE_CONSISTENCY_H_

#include <string>
#include <vector>

#include "core/materialized_view.h"
#include "oem/store.h"

namespace gsv {

// Result of a materialized-view consistency audit.
struct ConsistencyReport {
  bool consistent = true;
  std::vector<std::string> problems;

  void AddProblem(std::string problem) {
    consistent = false;
    problems.push_back(std::move(problem));
  }
  std::string ToString() const;
};

// Audits `view` against `base` per the paper's correctness criterion
// (§4.3): "the delegates of all view objects are in MV, and there are no
// extra objects in MV" — plus the stored-copy invariants of §3.2:
//   1. membership: delegate set == the defining query's current answer;
//   2. every delegate exists, with its base object's label;
//   3. when value sync is on, each delegate's value equals its base
//      object's value (swizzled edges are mapped back before comparing);
//   4. the view object's value lists exactly the delegate OIDs.
ConsistencyReport CheckViewConsistency(const MaterializedView& view,
                                       const ObjectStore& base);

}  // namespace gsv

#endif  // GSV_CORE_CONSISTENCY_H_
