#ifndef GSV_CORE_ALGORITHM1_H_
#define GSV_CORE_ALGORITHM1_H_

#include <cstdint>
#include <optional>

#include "core/base_accessor.h"
#include "core/view_definition.h"
#include "core/view_storage.h"
#include "oem/store.h"
#include "oem/update.h"
#include "util/status.h"

namespace gsv {

// Algorithm 1 (paper §4.3): incremental maintenance of a *simple*
// materialized view — constant sel_path/cond_path, single predicate,
// tree-structured base — under the basic updates insert/delete/modify.
//
// All base access goes through a BaseAccessor, exactly mirroring the
// paper's isolation of path(ROOT,N), ancestor(N,p) and eval(N,p,cond):
// plug in a LocalAccessor for the centralized case (§4) or a
// RemoteAccessor for the warehouse (§5).
//
// Faithfulness notes:
//  * The delete sub-cases are implemented verbatim: when the deleted edge
//    lies in the select region (p = p1.cond_path), affected delegates are
//    dropped; when it lies in the condition region, the condition on Y is
//    re-examined because another descendant may still satisfy it
//    (the paper's non-unique-label observation, Example 5).
//  * For the condition-region delete the paper computes Y as
//    ancestor(X, cond_path) from the detached witness X; after the edge is
//    gone that climb cannot cross it, so we equivalently locate Y as
//    ancestor(N1, q) above the intact endpoint N1, with q the condition
//    prefix between Y and N1.
//  * Candidate ancestors are verified against path(ROOT,Y) = sel_path
//    before inserting (cheap: one |sel_path| climb). On a clean tree the
//    check is vacuous; it keeps the algorithm sound when grouping objects
//    (databases, §2) give nodes additional parents. Disable via Options to
//    measure the paper's bare algorithm.
class Algorithm1Maintainer : public UpdateListener {
 public:
  struct Options {
    // Verify path(ROOT,Y)=sel_path before V_insert / skipping V_delete.
    bool verify_candidates = true;
  };

  struct Stats {
    int64_t updates = 0;    // updates processed
    int64_t matched = 0;    // updates that passed the path-matching test
    int64_t v_inserts = 0;  // V_insert operations issued (incl. ignored)
    int64_t v_deletes = 0;  // V_delete operations issued (incl. ignored)
    int64_t rechecks = 0;   // eval(Y, cond_path, cond) re-examinations

    Stats& operator+=(const Stats& other) {
      updates += other.updates;
      matched += other.matched;
      v_inserts += other.v_inserts;
      v_deletes += other.v_deletes;
      rechecks += other.rechecks;
      return *this;
    }
  };

  // Returns OK iff `def` has the simple shape this algorithm maintains.
  static Status ValidateDefinition(const ViewDefinition& def);

  // `def` must satisfy ValidateDefinition. `root` is the resolved entry
  // object of the view query. All pointers must outlive the maintainer.
  Algorithm1Maintainer(ViewStorage* view, BaseAccessor* accessor,
                       const ViewDefinition& def, Oid root)
      : Algorithm1Maintainer(view, accessor, def, std::move(root), Options{}) {
  }
  Algorithm1Maintainer(ViewStorage* view, BaseAccessor* accessor,
                       const ViewDefinition& def, Oid root, Options options);

  // Processes one base update (call right after the update is applied and
  // before any further update, §4.3).
  Status Maintain(const Update& update);

  // UpdateListener hookup for the centralized case: register on the base
  // store and every applied update is maintained immediately. Errors are
  // remembered in last_status().
  void OnUpdate(const ObjectStore& store, const Update& update) override;

  const Stats& stats() const { return stats_; }
  // Folds the stats of a worker maintainer (the batch engine evaluates with
  // per-task maintainers and merges after its barrier).
  void MergeStats(const Stats& other) { stats_ += other; }
  const Status& last_status() const { return last_status_; }

 private:
  Status OnInsert(const Update& update);
  Status OnDelete(const Update& update);
  Status OnModify(const Update& update);

  // True if `y` should be treated as the selected ancestor (candidate
  // verification; see Options).
  bool VerifySelected(const Oid& y);

  ViewStorage* view_;
  BaseAccessor* accessor_;
  Options options_;
  Oid root_;
  Path sel_path_;
  Path cond_path_;
  Path full_path_;                  // sel_path.cond_path
  std::optional<Predicate> pred_;   // nullopt = no WHERE clause
  Stats stats_;
  Status last_status_;
};

}  // namespace gsv

#endif  // GSV_CORE_ALGORITHM1_H_
