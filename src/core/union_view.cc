#include "core/union_view.h"

#include "core/virtual_view.h"

namespace gsv {

// Membership bookkeeping for one branch; delegates are shared through the
// owning UnionView.
class UnionView::BranchStorage : public ViewStorage {
 public:
  explicit BranchStorage(UnionView* owner) : owner_(owner) {}

  const Oid& view_oid() const override { return owner_->view_oid_; }

  bool ContainsBase(const Oid& base_oid) const override {
    return members_.Contains(base_oid);
  }

  Status VInsert(const Object& base_object) override {
    if (ContainsBase(base_object.oid())) return Status::Ok();
    GSV_RETURN_IF_ERROR(owner_->AcquireDelegate(base_object));
    members_.Insert(base_object.oid());
    return Status::Ok();
  }

  Status VDelete(const Oid& base_oid) override {
    if (!ContainsBase(base_oid)) return Status::Ok();
    GSV_RETURN_IF_ERROR(owner_->ReleaseDelegate(base_oid));
    members_.Erase(base_oid);
    return Status::Ok();
  }

  OidSet BaseMembers() const override { return members_; }

  Status SyncUpdate(const Update& update) override {
    return owner_->SyncShared(update);  // idempotent across branches
  }

 private:
  UnionView* owner_;
  OidSet members_;
};

UnionView::UnionView(ObjectStore* view_store, std::string name,
                     BaseAccessor* accessor)
    : store_(view_store),
      name_(std::move(name)),
      view_oid_(name_),
      accessor_(accessor),
      listener_(this) {}

UnionView::~UnionView() = default;

Status UnionView::Bootstrap() {
  if (bootstrapped_) {
    return Status::FailedPrecondition("union view " + name_ +
                                      " already bootstrapped");
  }
  if (name_.empty() || name_.find('.') != std::string::npos) {
    return Status::InvalidArgument("union view name '" + name_ +
                                   "' must be non-empty and dot-free");
  }
  GSV_RETURN_IF_ERROR(
      store_->Put(Object(view_oid_, "mview", Value::Set(OidSet()))));
  GSV_RETURN_IF_ERROR(store_->RegisterDatabase(name_, view_oid_));
  bootstrapped_ = true;
  return Status::Ok();
}

Status UnionView::AddBranch(const ViewDefinition& def,
                            const ObjectStore& base, Oid root) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("union view " + name_ +
                                      " not bootstrapped");
  }
  GSV_RETURN_IF_ERROR(Algorithm1Maintainer::ValidateDefinition(def));
  Branch branch;
  branch.storage = std::make_unique<BranchStorage>(this);
  branch.maintainer = std::make_unique<Algorithm1Maintainer>(
      branch.storage.get(), accessor_, def, std::move(root));

  GSV_ASSIGN_OR_RETURN(OidSet members, EvaluateView(base, def));
  for (const Oid& oid : members) {
    const Object* object = base.Get(oid);
    if (object == nullptr) {
      return Status::Internal("branch member " + oid.str() + " missing");
    }
    GSV_RETURN_IF_ERROR(branch.storage->VInsert(*object));
  }
  branches_.push_back(std::move(branch));
  return Status::Ok();
}

Status UnionView::Maintain(const Update& update) {
  for (Branch& branch : branches_) {
    GSV_RETURN_IF_ERROR(branch.maintainer->Maintain(update));
  }
  return Status::Ok();
}

OidSet UnionView::Members() const {
  OidSet members;
  for (const auto& [oid, count] : refcounts_) {
    if (count > 0) members.Insert(Oid(oid));
  }
  return members;
}

int UnionView::RefCount(const Oid& base_oid) const {
  auto it = refcounts_.find(base_oid.str());
  return it == refcounts_.end() ? 0 : it->second;
}

Status UnionView::AcquireDelegate(const Object& base_object) {
  int& count = refcounts_[base_object.oid().str()];
  if (count == 0) {
    Oid delegate_oid = Oid::Delegate(view_oid_, base_object.oid());
    GSV_RETURN_IF_ERROR(store_->Put(
        Object(delegate_oid, base_object.label(), base_object.value())));
    GSV_RETURN_IF_ERROR(store_->AddChildRaw(view_oid_, delegate_oid));
  }
  ++count;
  return Status::Ok();
}

Status UnionView::ReleaseDelegate(const Oid& base_oid) {
  auto it = refcounts_.find(base_oid.str());
  if (it == refcounts_.end() || it->second <= 0) {
    return Status::Internal("release of unreferenced delegate for " +
                            base_oid.str());
  }
  if (--it->second == 0) {
    refcounts_.erase(it);
    Oid delegate_oid = Oid::Delegate(view_oid_, base_oid);
    GSV_RETURN_IF_ERROR(store_->RemoveChildRaw(view_oid_, delegate_oid));
    GSV_RETURN_IF_ERROR(store_->Remove(delegate_oid));
  }
  return Status::Ok();
}

Status UnionView::SyncShared(const Update& update) {
  if (RefCount(update.parent) == 0) return Status::Ok();
  Oid delegate = Oid::Delegate(view_oid_, update.parent);
  switch (update.kind) {
    case UpdateKind::kInsert:
      return store_->AddChildRaw(delegate, update.child);
    case UpdateKind::kDelete:
      return store_->RemoveChildRaw(delegate, update.child);
    case UpdateKind::kModify:
      return store_->SetValueRaw(delegate, update.new_value);
  }
  return Status::InvalidArgument("unknown update kind");
}

}  // namespace gsv
