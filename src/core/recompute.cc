#include "core/recompute.h"

#include "core/virtual_view.h"

namespace gsv {

Status RecomputeMaintainer::Recompute() {
  ++stats_.recomputes;
  QueryPlan plan;
  GSV_ASSIGN_OR_RETURN(OidSet expected,
                       EvaluateView(*base_, view_->def(), &plan));
  if (plan.select == QueryPlan::Select::kIndexProbe) {
    ++stats_.index_probe_recomputes;
  }
  stats_.index_probes += plan.index_probes;
  OidSet current = view_->BaseMembers();

  // Remove stale delegates.
  for (const Oid& oid : current) {
    if (!expected.Contains(oid)) {
      GSV_RETURN_IF_ERROR(view_->VDelete(oid));
      ++stats_.delegates_removed;
    }
  }
  // Add new delegates and re-copy survivors' values.
  for (const Oid& oid : expected) {
    const Object* object = base_->Get(oid);
    if (object == nullptr) {
      return Status::Internal("view member " + oid.str() +
                              " missing from base store");
    }
    if (current.Contains(oid)) {
      GSV_RETURN_IF_ERROR(view_->RefreshDelegate(*object));
      ++stats_.delegates_refreshed;
    } else {
      GSV_RETURN_IF_ERROR(view_->VInsert(*object));
      ++stats_.delegates_created;
    }
  }
  return Status::Ok();
}

void RecomputeMaintainer::OnUpdate(const ObjectStore& store,
                                   const Update& update) {
  (void)store;
  (void)update;
  Status status = Recompute();
  if (!status.ok()) last_status_ = status;
}

}  // namespace gsv
