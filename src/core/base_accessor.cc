#include "core/base_accessor.h"

// BaseAccessor is an interface; see local_accessor.cc for the centralized
// implementation and warehouse/remote_accessor.cc for the warehouse one.
namespace gsv {}  // namespace gsv
