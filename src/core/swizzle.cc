#include "core/swizzle.h"

#include <vector>

namespace gsv {
namespace {

// Applies `fn(delegate_oid, child_oid)` to every edge of every delegate.
template <typename Fn>
Status ForEachDelegateEdge(MaterializedView& view, Fn fn) {
  const Oid& view_oid = view.view_oid();
  for (const Oid& base_oid : view.BaseMembers()) {
    Oid delegate_oid = Oid::Delegate(view_oid, base_oid);
    const Object* delegate = view.store().Get(delegate_oid);
    if (delegate == nullptr) {
      return Status::Internal("delegate " + delegate_oid.str() + " missing");
    }
    if (!delegate->IsSet()) continue;
    // Copy: fn may rewrite the delegate's child set.
    std::vector<Oid> children = delegate->children().elements();
    for (const Oid& child : children) {
      GSV_RETURN_IF_ERROR(fn(delegate_oid, child));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<int64_t> SwizzleAll(MaterializedView& view) {
  int64_t rewritten = 0;
  Status status = ForEachDelegateEdge(
      view, [&](const Oid& delegate_oid, const Oid& child) -> Status {
        if (!view.ContainsBase(child)) return Status::Ok();
        Oid swizzled = view.DelegateOid(child);
        if (swizzled == child) return Status::Ok();
        GSV_RETURN_IF_ERROR(
            view.mutable_store().ReplaceChildRaw(delegate_oid, child, swizzled));
        ++rewritten;
        return Status::Ok();
      });
  if (!status.ok()) return status;
  return rewritten;
}

Result<int64_t> UnswizzleAll(MaterializedView& view) {
  const Oid& view_oid = view.view_oid();
  int64_t rewritten = 0;
  Status status = ForEachDelegateEdge(
      view, [&](const Oid& delegate_oid, const Oid& child) -> Status {
        if (!child.IsDelegateOf(view_oid)) return Status::Ok();
        Oid base = child.BaseIn(view_oid);
        GSV_RETURN_IF_ERROR(
            view.mutable_store().ReplaceChildRaw(delegate_oid, child, base));
        ++rewritten;
        return Status::Ok();
      });
  if (!status.ok()) return status;
  return rewritten;
}

Result<int64_t> StripBaseReferences(MaterializedView& view) {
  const Oid& view_oid = view.view_oid();
  int64_t removed = 0;
  Status status = ForEachDelegateEdge(
      view, [&](const Oid& delegate_oid, const Oid& child) -> Status {
        if (child.IsDelegateOf(view_oid)) return Status::Ok();
        GSV_RETURN_IF_ERROR(
            view.mutable_store().RemoveChildRaw(delegate_oid, child));
        ++removed;
        return Status::Ok();
      });
  if (!status.ok()) return status;
  return removed;
}

ReferenceCounts CountReferences(const MaterializedView& view) {
  ReferenceCounts counts;
  const Oid& view_oid = view.view_oid();
  for (const Oid& base_oid : view.BaseMembers()) {
    const Object* delegate =
        view.store().Get(Oid::Delegate(view_oid, base_oid));
    if (delegate == nullptr || !delegate->IsSet()) continue;
    for (const Oid& child : delegate->children()) {
      if (child.IsDelegateOf(view_oid)) {
        ++counts.delegate_refs;
      } else {
        ++counts.base_refs;
      }
    }
  }
  return counts;
}

}  // namespace gsv
