#ifndef GSV_CORE_SWIZZLE_H_
#define GSV_CORE_SWIZZLE_H_

#include <cstdint>

#include "core/materialized_view.h"
#include "util/status.h"

namespace gsv {

// Bulk edge-swizzling operations on a materialized view (paper §3.2).
// Swizzling replaces a base OID inside a delegate's value by the OID of
// that base object's delegate, when one exists in the same view. It "should
// not affect the results of queries" — tests assert this — but it lets
// queries with WITHIN MV run against local objects only.

// Swizzles every delegate edge whose target has a delegate in `view`.
// Returns the number of edges rewritten.
Result<int64_t> SwizzleAll(MaterializedView& view);

// Reverts every swizzled edge to its base OID form.
Result<int64_t> UnswizzleAll(MaterializedView& view);

// The §3.2 "access control" modification: after swizzling, removes every
// remaining base OID from delegate values, so queries starting inside the
// view can never reach base data. Returns the number of references removed.
// This makes the view no longer value-consistent with the base (by design);
// automatic maintenance of such an edited view is unsupported.
Result<int64_t> StripBaseReferences(MaterializedView& view);

// Diagnostics: number of delegate-value references that still point at
// base objects (i.e., would require remote access when the view lives at
// a different site) and at delegates.
struct ReferenceCounts {
  int64_t base_refs = 0;
  int64_t delegate_refs = 0;
};
ReferenceCounts CountReferences(const MaterializedView& view);

}  // namespace gsv

#endif  // GSV_CORE_SWIZZLE_H_
