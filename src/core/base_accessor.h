#ifndef GSV_CORE_BASE_ACCESSOR_H_
#define GSV_CORE_BASE_ACCESSOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "oem/object.h"
#include "oem/oid.h"
#include "path/path.h"
#include "query/condition.h"
#include "util/status.h"

namespace gsv {

// The operations of Algorithm 1 that "may need to examine base data"
// (paper §4.3: "the algorithm we provide here isolates the computations
// that need access to the base databases"). A centralized system implements
// them directly on the store (LocalAccessor); a warehouse implements them
// by querying back to the sources, exploiting whatever the update event
// carried and whatever is cached (RemoteAccessor, §5).
class BaseAccessor {
 public:
  struct Stats {
    int64_t paths_from_root = 0;  // path(ROOT, N) evaluations
    int64_t ancestor_calls = 0;   // ancestor(N, p) evaluations
    int64_t eval_calls = 0;       // eval(N, p, cond) evaluations
    int64_t fetches = 0;          // whole-object fetches
    int64_t verify_calls = 0;     // path verification probes
  };

  virtual ~BaseAccessor() = default;

  // path(ROOT, N): all label paths from `root` to `n`. At most one on a
  // tree (§4.3); several on DAG bases (§6).
  virtual std::vector<Path> PathsFromRoot(const Oid& root, const Oid& n) = 0;

  // ancestor(N, p): the objects X with path(X, N) = p. ancestor(N, ∅) = {N}.
  virtual std::vector<Oid> Ancestors(const Oid& n, const Path& p) = 0;

  // eval(N, p, cond): the objects in N.p whose (atomic) value satisfies the
  // predicate. A missing predicate means "always true", so the result is
  // all of N.p (used for views with no WHERE clause).
  virtual std::vector<Oid> Eval(const Oid& n, const Path& p,
                                const std::optional<Predicate>& pred) = 0;

  // True iff eval(N, p, cond) is non-empty. Algorithm 1's deletion recheck
  // ("and eval(Y, cond_path, cond) = ∅") only needs existence, so accessors
  // may answer without materializing (or ordering) the witness set.
  virtual bool EvalAny(const Oid& n, const Path& p,
                       const std::optional<Predicate>& pred) {
    return !Eval(n, p, pred).empty();
  }

  // True iff path(root, y) includes exactly `p` — the candidate check that
  // keeps Algorithm 1 sound when grouping objects give nodes extra parents.
  virtual bool VerifyPath(const Oid& root, const Oid& y, const Path& p) = 0;

  // True iff some label path from `root` to `n` equals `p` — Algorithm 1's
  // modify screen ("if path(ROOT,N) = sel_path.cond_path"). The default
  // enumerates path(ROOT, N), which lets warehouse accessors answer from
  // the root path a level-3 event already carries; local accessors override
  // with an existence probe that never materializes paths.
  virtual bool MatchesRootPath(const Oid& root, const Oid& n, const Path& p) {
    for (const Path& rp : PathsFromRoot(root, n)) {
      if (rp == p) return true;
    }
    return false;
  }

  // Retrieves a full object (label + value), e.g. to create its delegate.
  virtual Result<Object> Fetch(const Oid& oid) = 0;

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 protected:
  Stats stats_;
};

// Batched predicate existence check over the candidate frontier of an
// indexed eval: `ids` (sorted ascending, unique, all carrying `label`) came
// out of IndexEvalPathIds. Instead of a Get+Holds round trip per id, one
// monotone sweep over the label's value postings answers every candidate
// whose value is a bucketable integer — only candidates the buckets cannot
// speak for (reals, strings, out-of-range ints, which CompareValues may
// still satisfy numerically) fall back to the store. Exact for every
// predicate shape; non-window shapes (kNe, non-integer literals) degrade to
// the per-id loop internally.
bool AnyCandidateSatisfies(const ObjectStore& store,
                           const LabelIndexSnapshot& snapshot,
                           const std::vector<uint32_t>& ids,
                           const std::string& label, const Predicate& pred,
                           StoreMetrics* metrics);

// Direct implementation over a local ObjectStore (centralized system, §4).
class LocalAccessor : public BaseAccessor {
 public:
  explicit LocalAccessor(const ObjectStore* store) : store_(store) {}

  std::vector<Path> PathsFromRoot(const Oid& root, const Oid& n) override;
  std::vector<Oid> Ancestors(const Oid& n, const Path& p) override;
  std::vector<Oid> Eval(const Oid& n, const Path& p,
                        const std::optional<Predicate>& pred) override;
  bool EvalAny(const Oid& n, const Path& p,
               const std::optional<Predicate>& pred) override;
  bool VerifyPath(const Oid& root, const Oid& y, const Path& p) override;
  bool MatchesRootPath(const Oid& root, const Oid& n, const Path& p) override;
  Result<Object> Fetch(const Oid& oid) override;

 private:
  const ObjectStore* store_;
};

}  // namespace gsv

#endif  // GSV_CORE_BASE_ACCESSOR_H_
