#ifndef GSV_CORE_MATERIALIZED_VIEW_H_
#define GSV_CORE_MATERIALIZED_VIEW_H_

#include <cstdint>

#include "core/view_definition.h"
#include "core/view_storage.h"
#include "oem/store.h"
#include "oem/update.h"
#include "util/status.h"

namespace gsv {

// A materialized view (paper §3.2): a stored copy of the objects in a view.
// Every base object in the view has a *delegate* — a real object with the
// same label, type and value, whose OID is the semantic concatenation
// "MV.<base>". The view itself is the ordinary set object
// <MV, mview, set, {delegate OIDs}>, registered as a database under the
// view's name so it can be queried like any GSDB (§3.3).
//
class MaterializedView;

// Observer of the *applied* view deltas — exactly the mutations that
// changed this view's materialized state (ignored duplicate V_inserts /
// absent V_deletes do not fire). The warehouse durability subsystem logs
// these to its write-ahead log so recovery can redo maintenance without
// re-running Algorithm 1. Callbacks run synchronously inside the mutation,
// under the same external synchronization as the store write itself.
class ViewDeltaSink {
 public:
  virtual ~ViewDeltaSink() = default;
  virtual void OnVInsert(const MaterializedView& view,
                         const Object& base_object) = 0;
  virtual void OnVDelete(const MaterializedView& view,
                         const Oid& base_oid) = 0;
  virtual void OnSync(const MaterializedView& view, const Update& update) = 0;
  virtual void OnRefresh(const MaterializedView& view,
                         const Object& base_object) = 0;
};

// The delegate store may be the same store as the base data (centralized,
// §4) or a different one (warehouse, §5); delegate set values hold base
// OIDs unless edge swizzling is enabled.
class MaterializedView : public ViewStorage {
 public:
  struct Options {
    // Swizzle edges between delegates (§3.2): when a delegate's child also
    // has a delegate in this view, store the child's delegate OID instead
    // of the base OID — and keep that property under V_insert/V_delete.
    bool swizzle = false;
    // Keep delegate values equal to their base objects' values when in-view
    // objects are updated (the paper's standing assumption that "a delegate
    // has the same value as the original object"). Applied via SyncUpdate.
    bool sync_values = true;
    // Perform delegate-set and delegate-value changes through the store's
    // *basic updates* instead of silent raw edits, so listeners on the
    // delegate store observe them. This is what makes stacked views live
    // (§3.1 "define views on views"): an outer view maintained over this
    // view's store sees V_insert/V_delete/sync as ordinary updates.
    // Requires the referenced children to exist in the delegate store
    // (centralized views qualify; dangling references to remote base
    // objects fall back to raw edits). Incompatible with `swizzle`.
    bool emit_basic_updates = false;
  };

  struct Stats {
    int64_t v_inserts = 0;        // delegates created
    int64_t v_deletes = 0;        // delegates removed
    int64_t ignored_inserts = 0;  // V_insert of an existing delegate
    int64_t ignored_deletes = 0;  // V_delete of an absent delegate
  };

  // `view_store` must outlive the view. The view object is not created
  // until Bootstrap()/Initialize().
  MaterializedView(ObjectStore* view_store, ViewDefinition def)
      : MaterializedView(view_store, std::move(def), Options{}) {}
  MaterializedView(ObjectStore* view_store, ViewDefinition def,
                   Options options);

  // Creates the empty view object and registers the view as a database in
  // the delegate store. Call once.
  Status Bootstrap();

  // Bootstrap + evaluate the defining query on `base` + create a delegate
  // for every member (initial materialization).
  Status Initialize(const ObjectStore& base);

  // Rebinds this view to state already present in the delegate store —
  // the crash-recovery path, where the store was reloaded from a
  // checkpoint image before the view object existed in memory. The view
  // object must exist; membership is re-derived from its delegate
  // children, and the database registration is re-created when the image
  // carried none. Mutually exclusive with Bootstrap()/Initialize().
  Status AdoptExisting();

  // ---- ViewStorage ----
  const Oid& view_oid() const override { return def_.view_oid(); }
  bool ContainsBase(const Oid& base_oid) const override {
    return base_members_.Contains(base_oid);
  }
  Status VInsert(const Object& base_object) override;
  Status VDelete(const Oid& base_oid) override;
  OidSet BaseMembers() const override { return base_members_; }

  // ---- Delegate value synchronization ----

  // Applies the effect of a base update to delegate *values* (not view
  // membership — that is the maintainer's job): a child inserted into /
  // deleted from an in-view set object appears in / disappears from its
  // delegate; a modify of an in-view atomic object updates its delegate.
  // No-op when options.sync_values is false.
  Status SyncUpdate(const Update& update) override;

  // Re-copies the delegate value of `base_object` (used by recomputation).
  Status RefreshDelegate(const Object& base_object);

  // ---- Introspection ----
  const ViewDefinition& def() const { return def_; }
  const ObjectStore& store() const { return *store_; }
  ObjectStore& mutable_store() { return *store_; }
  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }
  size_t size() const { return base_members_.size(); }

  // The delegate OID of `base_oid` in this view.
  Oid DelegateOid(const Oid& base_oid) const {
    return Oid::Delegate(view_oid(), base_oid);
  }

  // Installs an applied-delta observer (nullptr detaches). Not owned; must
  // outlive its installation.
  void set_delta_sink(ViewDeltaSink* sink) { delta_sink_ = sink; }
  ViewDeltaSink* delta_sink() const { return delta_sink_; }

 private:
  // Copies `value`, swizzling child OIDs that have delegates (when enabled).
  Value DelegateValue(const Value& value) const;

  ObjectStore* store_;
  ViewDefinition def_;
  Options options_;
  OidSet base_members_;
  Stats stats_;
  ViewDeltaSink* delta_sink_ = nullptr;
  bool bootstrapped_ = false;
};

}  // namespace gsv

#endif  // GSV_CORE_MATERIALIZED_VIEW_H_
