#include "core/consistency.h"

#include <sstream>

#include "core/virtual_view.h"

namespace gsv {

std::string ConsistencyReport::ToString() const {
  if (consistent) return "consistent";
  std::ostringstream out;
  out << problems.size() << " problem(s):";
  for (const std::string& problem : problems) out << "\n  - " << problem;
  return out.str();
}

ConsistencyReport CheckViewConsistency(const MaterializedView& view,
                                       const ObjectStore& base) {
  ConsistencyReport report;
  const Oid& view_oid = view.view_oid();

  // 1. Membership equals the defining query's answer on the current base.
  Result<OidSet> expected = EvaluateView(base, view.def());
  if (!expected.ok()) {
    report.AddProblem("view query failed: " + expected.status().ToString());
    return report;
  }
  OidSet members = view.BaseMembers();
  for (const Oid& oid : *expected) {
    if (!members.Contains(oid)) {
      report.AddProblem("missing delegate for selected object " + oid.str());
    }
  }
  for (const Oid& oid : members) {
    if (!expected->Contains(oid)) {
      report.AddProblem("extra delegate for unselected object " + oid.str());
    }
  }

  // 2–3. Delegates exist and mirror their originals.
  for (const Oid& base_oid : members) {
    Oid delegate_oid = view.DelegateOid(base_oid);
    const Object* delegate = view.store().Get(delegate_oid);
    if (delegate == nullptr) {
      report.AddProblem("delegate object " + delegate_oid.str() + " missing");
      continue;
    }
    const Object* original = base.Get(base_oid);
    if (original == nullptr) {
      report.AddProblem("base object " + base_oid.str() +
                        " missing for delegate " + delegate_oid.str());
      continue;
    }
    if (delegate->label() != original->label()) {
      report.AddProblem("delegate " + delegate_oid.str() + " label '" +
                        delegate->label() + "' != base label '" +
                        original->label() + "'");
    }
    if (view.options().sync_values) {
      if (delegate->type() != original->type()) {
        report.AddProblem("delegate " + delegate_oid.str() +
                          " type differs from base");
      } else if (delegate->IsSet()) {
        // Map swizzled edges back to base OIDs before comparing.
        OidSet unswizzled;
        for (const Oid& child : delegate->children()) {
          unswizzled.Insert(child.IsDelegateOf(view_oid)
                                ? child.BaseIn(view_oid)
                                : child);
        }
        if (unswizzled != original->children()) {
          report.AddProblem("delegate " + delegate_oid.str() +
                            " value drifted from base value");
        }
      } else if (delegate->value() != original->value()) {
        report.AddProblem("delegate " + delegate_oid.str() +
                          " atomic value drifted from base value");
      }
    }
  }

  // 4. The view object lists exactly the delegates.
  const Object* view_object = view.store().Get(view_oid);
  if (view_object == nullptr || !view_object->IsSet()) {
    report.AddProblem("view object " + view_oid.str() +
                      " missing or not a set");
  } else {
    OidSet expected_children;
    for (const Oid& base_oid : members) {
      expected_children.Insert(view.DelegateOid(base_oid));
    }
    if (view_object->children() != expected_children) {
      report.AddProblem("view object value does not match delegate set");
    }
  }
  return report;
}

}  // namespace gsv
