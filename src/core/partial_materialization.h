#ifndef GSV_CORE_PARTIAL_MATERIALIZATION_H_
#define GSV_CORE_PARTIAL_MATERIALIZATION_H_

#include <cstddef>

#include "core/materialized_view.h"
#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// Partially materialized views (paper §6, future-work list): "views that
// materialize a few levels of objects and leave the rest as pointers back
// to base data. This type of view may be useful for caching some but not
// all data of interest."
//
// Expand() copies the descendants of every view member down to `depth`
// additional levels into the delegate store, using the same semantic OID
// scheme ("MV.<base>"). Edges between materialized objects are swizzled so
// local traversals stay local; edges at the frontier keep base OIDs — the
// "pointers back to base data". Refresh() re-derives the expansion after
// base changes (expansion maintenance is recompute-style; only the selected
// members themselves are maintained incrementally by Algorithm 1).
class PartialMaterialization {
 public:
  // `view` must outlive this object; depth >= 0 (0 = no expansion beyond
  // the members the view already materializes).
  PartialMaterialization(MaterializedView* view, size_t depth)
      : view_(view), depth_(depth) {}

  // Materializes the expansion from the current base state.
  Status Expand(const ObjectStore& base);

  // Drops the previous expansion and re-expands from the current base.
  Status Refresh(const ObjectStore& base);

  // Number of expansion delegates (excluding the view's own members).
  size_t expanded_count() const { return expansion_.size(); }
  bool IsExpanded(const Oid& base_oid) const {
    return expansion_.Contains(base_oid);
  }

 private:
  Status Clear();

  MaterializedView* view_;
  size_t depth_;
  OidSet expansion_;  // base OIDs materialized beyond the members
};

}  // namespace gsv

#endif  // GSV_CORE_PARTIAL_MATERIALIZATION_H_
