#ifndef GSV_CORE_VIRTUAL_VIEW_H_
#define GSV_CORE_VIRTUAL_VIEW_H_

#include "core/view_definition.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "util/status.h"

namespace gsv {

// Virtual views (paper §3.1): a view is the result of its defining query.
// EvaluateView computes the member set; RegisterVirtualView additionally
// stores the view object <V, view, set, value(V)> and registers it as a
// database, so the view can be used as a query entry point ("SELECT VJ.?.age")
// and in WITHIN / ANS INT clauses — the two usage modes of §3.1.

// The OIDs selected by the view's query. When `plan` is non-null it
// receives the chosen select plan (index-probe vs traversal) and the
// per-evaluation index counter deltas.
Result<OidSet> EvaluateView(const ObjectStore& store,
                            const ViewDefinition& def,
                            QueryPlan* plan = nullptr);

// Evaluates and stores <view_oid, "view", set, members>, registered as a
// database under the view's name. Fails if the OID or name already exists.
Status RegisterVirtualView(ObjectStore& store, const ViewDefinition& def);

// Re-evaluates the query of a registered virtual view and replaces the view
// object's value. (Virtual views are computed on demand; this refresh is
// what "querying the view" conceptually does, §3.3.)
Status RefreshVirtualView(ObjectStore& store, const ViewDefinition& def);

}  // namespace gsv

#endif  // GSV_CORE_VIRTUAL_VIEW_H_
