#ifndef GSV_CORE_VIEW_DEFINITION_H_
#define GSV_CORE_VIEW_DEFINITION_H_

#include <optional>
#include <string>
#include <string_view>

#include "oem/oid.h"
#include "path/path.h"
#include "query/ast.h"
#include "util/status.h"

namespace gsv {

// A named view over a GSDB (paper §3): a name, whether it is materialized,
// and the defining query. The view OID equals the name, so delegate OIDs
// ("MVJ.P1") can be split unambiguously; names therefore must not contain
// a dot.
class ViewDefinition {
 public:
  // Builds a definition from parsed parts. Validates the name.
  static Result<ViewDefinition> Create(std::string name, bool materialized,
                                       Query query);

  // Parses a full "define [m]view NAME as: SELECT ..." statement.
  static Result<ViewDefinition> Parse(std::string_view text);

  const std::string& name() const { return name_; }
  const Oid& view_oid() const { return view_oid_; }
  bool materialized() const { return materialized_; }
  const Query& query() const { return query_; }

  // The "simple view" shape maintained by Algorithm 1 (§4.2): constant
  // non-empty select path; WHERE absent or a single constant-path predicate.
  bool IsSimple() const;

  // Accessors for Algorithm 1 (require IsSimple()).
  Path sel_path() const;
  // Empty when the WHERE clause is absent.
  Path cond_path() const;
  // The single predicate, or nullopt when the WHERE clause is absent (a
  // missing condition behaves as "always true").
  std::optional<Predicate> predicate() const;
  // sel_path.cond_path concatenated (the algorithm's matching target).
  Path full_path() const;

  std::string ToString() const;

 private:
  ViewDefinition(std::string name, bool materialized, Query query);

  std::string name_;
  Oid view_oid_;
  bool materialized_ = false;
  Query query_;
};

}  // namespace gsv

#endif  // GSV_CORE_VIEW_DEFINITION_H_
