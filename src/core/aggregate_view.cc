#include "core/aggregate_view.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "core/virtual_view.h"
#include "path/navigate.h"

namespace gsv {

const char* AggregateView::KindName(Kind kind) {
  switch (kind) {
    case Kind::kCount:
      return "count";
    case Kind::kSum:
      return "sum";
    case Kind::kMin:
      return "min";
    case Kind::kMax:
      return "max";
  }
  return "aggregate";
}

// Creates/destroys the synthetic aggregate delegates as membership changes.
class AggregateView::Storage : public ViewStorage {
 public:
  explicit Storage(AggregateView* owner) : owner_(owner) {}

  const Oid& view_oid() const override { return owner_->view_oid_; }
  bool ContainsBase(const Oid& base_oid) const override {
    return members_.Contains(base_oid);
  }
  OidSet BaseMembers() const override { return members_; }

  Status VInsert(const Object& base_object) override {
    const Oid& member = base_object.oid();
    if (ContainsBase(member)) return Status::Ok();
    GSV_ASSIGN_OR_RETURN(Value aggregate, owner_->ComputeAggregate(member));
    Oid delegate = owner_->DelegateOid(member);
    GSV_RETURN_IF_ERROR(owner_->store_->Put(
        Object(delegate, KindName(owner_->kind_), std::move(aggregate))));
    GSV_RETURN_IF_ERROR(
        owner_->store_->AddChildRaw(owner_->view_oid_, delegate));
    members_.Insert(member);
    return Status::Ok();
  }

  Status VDelete(const Oid& base_oid) override {
    if (!ContainsBase(base_oid)) return Status::Ok();
    Oid delegate = owner_->DelegateOid(base_oid);
    GSV_RETURN_IF_ERROR(
        owner_->store_->RemoveChildRaw(owner_->view_oid_, delegate));
    GSV_RETURN_IF_ERROR(owner_->store_->Remove(delegate));
    members_.Erase(base_oid);
    return Status::Ok();
  }

  // Aggregate delegates carry computed values, not copies: value sync is
  // handled by AggregateView::RefreshAffected instead.
  Status SyncUpdate(const Update& update) override {
    (void)update;
    return Status::Ok();
  }

 private:
  AggregateView* owner_;
  OidSet members_;
};

AggregateView::AggregateView(ObjectStore* base, ObjectStore* view_store,
                             std::string name, ViewDefinition membership_def,
                             Oid root, Path agg_path, Kind kind)
    : base_(base),
      store_(view_store),
      name_(std::move(name)),
      view_oid_(name_),
      def_(std::move(membership_def)),
      root_(std::move(root)),
      agg_path_(std::move(agg_path)),
      kind_(kind),
      listener_(this) {}

AggregateView::~AggregateView() = default;

Result<Value> AggregateView::ComputeAggregate(const Oid& member) const {
  int64_t count = 0;
  double sum = 0;
  bool all_int = true;
  std::optional<double> min_value;
  std::optional<double> max_value;
  for (const Oid& oid : EvalPath(*base_, member, agg_path_)) {
    const Object* object = base_->Get(oid);
    if (object == nullptr) continue;
    ++count;
    if (!object->IsAtomic()) continue;
    double numeric = 0;
    if (object->type() == ValueType::kInt) {
      numeric = static_cast<double>(object->value().AsInt());
    } else if (object->type() == ValueType::kReal) {
      numeric = object->value().AsReal();
      all_int = false;
    } else {
      continue;  // non-numeric values do not aggregate
    }
    sum += numeric;
    min_value = min_value.has_value() ? std::min(*min_value, numeric) : numeric;
    max_value = max_value.has_value() ? std::max(*max_value, numeric) : numeric;
  }
  switch (kind_) {
    case Kind::kCount:
      return Value::Int(count);
    case Kind::kSum:
      return all_int ? Value::Int(static_cast<int64_t>(sum))
                     : Value::Real(sum);
    case Kind::kMin:
      if (!min_value.has_value()) return Value::Int(0);
      return all_int ? Value::Int(static_cast<int64_t>(*min_value))
                     : Value::Real(*min_value);
    case Kind::kMax:
      if (!max_value.has_value()) return Value::Int(0);
      return all_int ? Value::Int(static_cast<int64_t>(*max_value))
                     : Value::Real(*max_value);
  }
  return Status::Internal("unknown aggregate kind");
}

Status AggregateView::Initialize() {
  if (initialized_) {
    return Status::FailedPrecondition("aggregate view " + name_ +
                                      " already initialized");
  }
  GSV_RETURN_IF_ERROR(Algorithm1Maintainer::ValidateDefinition(def_));
  if (name_.empty() || name_.find('.') != std::string::npos) {
    return Status::InvalidArgument("aggregate view name '" + name_ +
                                   "' must be non-empty and dot-free");
  }
  GSV_RETURN_IF_ERROR(
      store_->Put(Object(view_oid_, "mview", Value::Set(OidSet()))));
  GSV_RETURN_IF_ERROR(store_->RegisterDatabase(name_, view_oid_));

  storage_ = std::make_unique<Storage>(this);
  accessor_ = std::make_unique<LocalAccessor>(base_);
  membership_ = std::make_unique<Algorithm1Maintainer>(
      storage_.get(), accessor_.get(), def_, root_);

  GSV_ASSIGN_OR_RETURN(OidSet members, EvaluateView(*base_, def_));
  for (const Oid& member : members) {
    const Object* object = base_->Get(member);
    if (object == nullptr) {
      return Status::Internal("member " + member.str() + " missing");
    }
    GSV_RETURN_IF_ERROR(storage_->VInsert(*object));
  }
  initialized_ = true;
  return Status::Ok();
}

Status AggregateView::RefreshAffected(const Update& update) {
  // Any member whose agg_path cone contains a directly affected object may
  // have a new aggregate: climb from the endpoints up to |agg_path| levels
  // (an over-approximation — recomputation is idempotent) and refresh the
  // members found.
  OidSet candidates;
  auto climb = [&](const Oid& start) {
    if (!base_->Contains(start)) return;
    std::unordered_set<std::string> seen{start.str()};
    std::deque<Oid> frontier{start};
    candidates.Insert(start);
    for (size_t depth = 0; depth < agg_path_.size() && !frontier.empty();
         ++depth) {
      std::deque<Oid> next;
      for (const Oid& oid : frontier) {
        for (const Oid& parent : base_->Parents(oid)) {
          if (seen.insert(parent.str()).second) {
            candidates.Insert(parent);
            next.push_back(parent);
          }
        }
      }
      frontier = std::move(next);
    }
  };
  climb(update.parent);
  if (update.child.valid()) climb(update.child);

  for (const Oid& candidate : candidates) {
    if (!storage_->ContainsBase(candidate)) continue;
    GSV_ASSIGN_OR_RETURN(Value aggregate, ComputeAggregate(candidate));
    GSV_RETURN_IF_ERROR(
        store_->SetValueRaw(DelegateOid(candidate), std::move(aggregate)));
  }
  return Status::Ok();
}

Status AggregateView::Maintain(const Update& update) {
  if (!initialized_) {
    return Status::FailedPrecondition("aggregate view " + name_ +
                                      " not initialized");
  }
  // Membership first (fresh members compute their aggregate on insert),
  // then refresh the aggregates of surviving members near the update.
  GSV_RETURN_IF_ERROR(membership_->Maintain(update));
  return RefreshAffected(update);
}

OidSet AggregateView::Members() const {
  return storage_ != nullptr ? storage_->BaseMembers() : OidSet();
}

Result<Value> AggregateView::AggregateOf(const Oid& member) const {
  if (storage_ == nullptr || !storage_->ContainsBase(member)) {
    return Status::NotFound(member.str() + " is not a view member");
  }
  const Object* delegate = store_->Get(DelegateOid(member));
  if (delegate == nullptr) {
    return Status::Internal("missing aggregate delegate for " + member.str());
  }
  return delegate->value();
}

}  // namespace gsv
