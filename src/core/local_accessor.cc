#include <cstdint>

#include "core/base_accessor.h"
#include "path/navigate.h"
#include "path/path_index.h"

namespace gsv {

namespace {

// Inclusive int64 bounds of the values satisfying `<value> op literal` for
// integer comparisons. Returns false when bucket membership cannot decide
// the predicate (kNe holds for any value of a different type, so absence
// from a window proves nothing). An empty window comes back as lo > hi.
bool PredicateWindow(CompareOp op, int64_t literal, int64_t* lo, int64_t* hi) {
  switch (op) {
    case CompareOp::kEq:
      *lo = literal;
      *hi = literal;
      return true;
    case CompareOp::kLt:
      *lo = INT64_MIN;
      *hi = literal == INT64_MIN ? INT64_MIN : literal - 1;
      if (literal == INT64_MIN) *lo = 0, *hi = -1;  // empty
      return true;
    case CompareOp::kLe:
      *lo = INT64_MIN;
      *hi = literal;
      return true;
    case CompareOp::kGt:
      *lo = literal == INT64_MAX ? INT64_MAX : literal + 1;
      *hi = INT64_MAX;
      if (literal == INT64_MAX) *lo = 0, *hi = -1;  // empty
      return true;
    case CompareOp::kGe:
      *lo = literal;
      *hi = INT64_MAX;
      return true;
    case CompareOp::kNe:
      return false;
  }
  return false;
}

bool HoldsAtStore(const ObjectStore& store, uint32_t id,
                  const Predicate& pred) {
  const Object* object = store.Get(Oid::FromId(id));
  return object != nullptr && object->IsAtomic() &&
         pred.Holds(object->value());
}

}  // namespace

bool AnyCandidateSatisfies(const ObjectStore& store,
                           const LabelIndexSnapshot& snapshot,
                           const std::vector<uint32_t>& ids,
                           const std::string& label, const Predicate& pred,
                           StoreMetrics* metrics) {
  if (ids.empty()) return false;
  int64_t lo64 = 0;
  int64_t hi64 = 0;
  if (pred.literal.type() != ValueType::kInt ||
      !PredicateWindow(pred.op, pred.literal.AsInt(), &lo64, &hi64)) {
    // Unbatchable predicate shape: the plain per-id loop.
    for (uint32_t id : ids) {
      if (HoldsAtStore(store, id, pred)) return true;
    }
    return false;
  }

  // Intersect the satisfying window with the bucketable range. Candidates
  // present in the value postings carry in-range integers, so the bucket
  // comparison is exact for them; an empty intersection means no bucketed
  // candidate can satisfy.
  const bool window_empty = lo64 > hi64 || hi64 < INT32_MIN || lo64 > INT32_MAX;
  uint32_t bucket_lo = 0;
  uint32_t bucket_hi = 0;
  if (!window_empty) {
    int64_t clamped_lo = lo64 < INT32_MIN ? INT32_MIN : lo64;
    int64_t clamped_hi = hi64 > INT32_MAX ? INT32_MAX : hi64;
    bucket_lo = static_cast<uint32_t>(clamped_lo - INT32_MIN);
    bucket_hi = static_cast<uint32_t>(clamped_hi - INT32_MIN);
  }

  const Postings* values = snapshot.Values(label);
  bool found = false;
  std::vector<uint32_t> missing;  // candidates absent from `values`
  if (values != nullptr) {
    if (metrics != nullptr) {
      metrics->index_probes.fetch_add(1, std::memory_order_relaxed);
    }
    size_t cursor = 0;  // next candidate the sweep has not reached
    values->ScanHiRanges(ids, [&](uint64_t v) {
      const uint32_t id = PairHi(v);
      while (cursor < ids.size() && ids[cursor] < id) {
        missing.push_back(ids[cursor++]);
      }
      if (cursor < ids.size() && ids[cursor] == id) ++cursor;
      if (found || window_empty) return;
      const uint32_t bucket = PairLo(v);
      if (bucket >= bucket_lo && bucket <= bucket_hi) found = true;
    });
    while (cursor < ids.size()) missing.push_back(ids[cursor++]);
  } else {
    missing.assign(ids.begin(), ids.end());
  }
  if (found) return true;

  // Bucketless candidates: sets and missing objects fail Holds anyway, and
  // reals / big ints may satisfy an integer comparison numerically — the
  // store has the only exact answer for them.
  for (uint32_t id : missing) {
    if (HoldsAtStore(store, id, pred)) return true;
  }
  return false;
}

std::vector<Path> LocalAccessor::PathsFromRoot(const Oid& root, const Oid& n) {
  ++stats_.paths_from_root;
  return PathsFromTo(*store_, root, n);
}

std::vector<Oid> LocalAccessor::Ancestors(const Oid& n, const Path& p) {
  ++stats_.ancestor_calls;
  return AncestorsByPath(*store_, n, p);
}

std::vector<Oid> LocalAccessor::Eval(const Oid& n, const Path& p,
                                     const std::optional<Predicate>& pred) {
  ++stats_.eval_calls;
  // Index-backed fast path: probe the snapshot for the raw interned ids and
  // apply the predicate *before* the lexicographic sort — an eval that ends
  // up empty (the common Algorithm 1 recheck outcome) then never pays for
  // ordering the frontier at all. The survivors are sorted into the same
  // canonical order the traversal path produces, so results stay
  // byte-identical between the two plans.
  if (!p.empty()) {
    if (LabelIndexSnapshotPtr snapshot = store_->AcquireIndexSnapshot()) {
      const Object* start = store_->Get(n);
      if (start == nullptr) return {};
      std::vector<uint32_t> ids =
          IndexEvalPathIds(*snapshot, n.id(), start->label(), p,
                           /*filter=*/nullptr, &store_->metrics());
      std::vector<Oid> out;
      out.reserve(ids.size());
      for (uint32_t id : ids) {
        Oid oid = Oid::FromId(id);
        if (pred.has_value()) {
          const Object* object = store_->Get(oid);
          if (object == nullptr || !object->IsAtomic() ||
              !pred->Holds(object->value())) {
            continue;
          }
        }
        out.push_back(oid);
      }
      SortOidsLexicographic(&out);
      return out;
    }
  }
  OidSet reached = EvalPath(*store_, n, p);
  // EvalPath only emits objects that exist, so an unpredicated eval needs
  // no per-result fetch — with the label index on, the whole call stays
  // inside posting scans.
  if (!pred.has_value()) return reached.elements();
  std::vector<Oid> out;
  for (const Oid& oid : reached) {
    const Object* object = store_->Get(oid);
    if (object != nullptr && object->IsAtomic() &&
        pred->Holds(object->value())) {
      out.push_back(oid);
    }
  }
  return out;
}

bool LocalAccessor::EvalAny(const Oid& n, const Path& p,
                            const std::optional<Predicate>& pred) {
  ++stats_.eval_calls;
  // Existence needs neither the lexicographic order nor the full witness
  // set, so the index path stops at the first id whose value satisfies the
  // predicate — the common Algorithm 1 recheck ("does any other descendant
  // still qualify?") then touches only a prefix of the frontier.
  if (!p.empty()) {
    if (LabelIndexSnapshotPtr snapshot = store_->AcquireIndexSnapshot()) {
      const Object* start = store_->Get(n);
      if (start == nullptr) return false;
      std::vector<uint32_t> ids =
          IndexEvalPathIds(*snapshot, n.id(), start->label(), p,
                           /*filter=*/nullptr, &store_->metrics());
      if (!pred.has_value()) return !ids.empty();
      // Batched recheck: one sweep over the terminal label's value postings
      // answers the whole frontier instead of a Get+Holds loop per id.
      return AnyCandidateSatisfies(*store_, *snapshot, ids, p.back(),
                                   pred.value(), &store_->metrics());
    }
  }
  OidSet reached = EvalPath(*store_, n, p);
  if (!pred.has_value()) return !reached.empty();
  for (const Oid& oid : reached) {
    const Object* object = store_->Get(oid);
    if (object != nullptr && object->IsAtomic() &&
        pred->Holds(object->value())) {
      return true;
    }
  }
  return false;
}

bool LocalAccessor::VerifyPath(const Oid& root, const Oid& y, const Path& p) {
  ++stats_.verify_calls;
  return HasPathFromTo(*store_, root, y, p);
}

bool LocalAccessor::MatchesRootPath(const Oid& root, const Oid& n,
                                    const Path& p) {
  ++stats_.verify_calls;
  // Equality against one known label sequence is an existence question, so
  // skip the path(ROOT, N) enumeration (string assembly, path ordering) and
  // climb — indexed when a snapshot is live — for exactly `p`.
  return HasPathFromTo(*store_, root, n, p);
}

Result<Object> LocalAccessor::Fetch(const Oid& oid) {
  ++stats_.fetches;
  const Object* object = store_->Get(oid);
  if (object == nullptr) {
    return Status::NotFound("object " + oid.str() + " not found in base");
  }
  return *object;
}

}  // namespace gsv
