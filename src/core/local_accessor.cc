#include "core/base_accessor.h"
#include "path/navigate.h"

namespace gsv {

std::vector<Path> LocalAccessor::PathsFromRoot(const Oid& root, const Oid& n) {
  ++stats_.paths_from_root;
  return PathsFromTo(*store_, root, n);
}

std::vector<Oid> LocalAccessor::Ancestors(const Oid& n, const Path& p) {
  ++stats_.ancestor_calls;
  return AncestorsByPath(*store_, n, p);
}

std::vector<Oid> LocalAccessor::Eval(const Oid& n, const Path& p,
                                     const std::optional<Predicate>& pred) {
  ++stats_.eval_calls;
  std::vector<Oid> out;
  for (const Oid& oid : EvalPath(*store_, n, p)) {
    const Object* object = store_->Get(oid);
    if (object == nullptr) continue;
    if (!pred.has_value()) {
      out.push_back(oid);
    } else if (object->IsAtomic() && pred->Holds(object->value())) {
      out.push_back(oid);
    }
  }
  return out;
}

bool LocalAccessor::VerifyPath(const Oid& root, const Oid& y, const Path& p) {
  ++stats_.verify_calls;
  return HasPathFromTo(*store_, root, y, p);
}

Result<Object> LocalAccessor::Fetch(const Oid& oid) {
  ++stats_.fetches;
  const Object* object = store_->Get(oid);
  if (object == nullptr) {
    return Status::NotFound("object " + oid.str() + " not found in base");
  }
  return *object;
}

}  // namespace gsv
