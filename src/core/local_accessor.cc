#include "core/base_accessor.h"
#include "path/navigate.h"
#include "path/path_index.h"

namespace gsv {

std::vector<Path> LocalAccessor::PathsFromRoot(const Oid& root, const Oid& n) {
  ++stats_.paths_from_root;
  return PathsFromTo(*store_, root, n);
}

std::vector<Oid> LocalAccessor::Ancestors(const Oid& n, const Path& p) {
  ++stats_.ancestor_calls;
  return AncestorsByPath(*store_, n, p);
}

std::vector<Oid> LocalAccessor::Eval(const Oid& n, const Path& p,
                                     const std::optional<Predicate>& pred) {
  ++stats_.eval_calls;
  // Index-backed fast path: probe the snapshot for the raw interned ids and
  // apply the predicate *before* the lexicographic sort — an eval that ends
  // up empty (the common Algorithm 1 recheck outcome) then never pays for
  // ordering the frontier at all. The survivors are sorted into the same
  // canonical order the traversal path produces, so results stay
  // byte-identical between the two plans.
  if (!p.empty()) {
    if (LabelIndexSnapshotPtr snapshot = store_->AcquireIndexSnapshot()) {
      const Object* start = store_->Get(n);
      if (start == nullptr) return {};
      std::vector<uint32_t> ids =
          IndexEvalPathIds(*snapshot, n.id(), start->label(), p,
                           /*filter=*/nullptr, &store_->metrics());
      std::vector<Oid> out;
      out.reserve(ids.size());
      for (uint32_t id : ids) {
        Oid oid = Oid::FromId(id);
        if (pred.has_value()) {
          const Object* object = store_->Get(oid);
          if (object == nullptr || !object->IsAtomic() ||
              !pred->Holds(object->value())) {
            continue;
          }
        }
        out.push_back(oid);
      }
      SortOidsLexicographic(&out);
      return out;
    }
  }
  OidSet reached = EvalPath(*store_, n, p);
  // EvalPath only emits objects that exist, so an unpredicated eval needs
  // no per-result fetch — with the label index on, the whole call stays
  // inside posting scans.
  if (!pred.has_value()) return reached.elements();
  std::vector<Oid> out;
  for (const Oid& oid : reached) {
    const Object* object = store_->Get(oid);
    if (object != nullptr && object->IsAtomic() &&
        pred->Holds(object->value())) {
      out.push_back(oid);
    }
  }
  return out;
}

bool LocalAccessor::EvalAny(const Oid& n, const Path& p,
                            const std::optional<Predicate>& pred) {
  ++stats_.eval_calls;
  // Existence needs neither the lexicographic order nor the full witness
  // set, so the index path stops at the first id whose value satisfies the
  // predicate — the common Algorithm 1 recheck ("does any other descendant
  // still qualify?") then touches only a prefix of the frontier.
  if (!p.empty()) {
    if (LabelIndexSnapshotPtr snapshot = store_->AcquireIndexSnapshot()) {
      const Object* start = store_->Get(n);
      if (start == nullptr) return false;
      std::vector<uint32_t> ids =
          IndexEvalPathIds(*snapshot, n.id(), start->label(), p,
                           /*filter=*/nullptr, &store_->metrics());
      if (!pred.has_value()) return !ids.empty();
      for (uint32_t id : ids) {
        const Object* object = store_->Get(Oid::FromId(id));
        if (object != nullptr && object->IsAtomic() &&
            pred->Holds(object->value())) {
          return true;
        }
      }
      return false;
    }
  }
  OidSet reached = EvalPath(*store_, n, p);
  if (!pred.has_value()) return !reached.empty();
  for (const Oid& oid : reached) {
    const Object* object = store_->Get(oid);
    if (object != nullptr && object->IsAtomic() &&
        pred->Holds(object->value())) {
      return true;
    }
  }
  return false;
}

bool LocalAccessor::VerifyPath(const Oid& root, const Oid& y, const Path& p) {
  ++stats_.verify_calls;
  return HasPathFromTo(*store_, root, y, p);
}

bool LocalAccessor::MatchesRootPath(const Oid& root, const Oid& n,
                                    const Path& p) {
  ++stats_.verify_calls;
  // Equality against one known label sequence is an existence question, so
  // skip the path(ROOT, N) enumeration (string assembly, path ordering) and
  // climb — indexed when a snapshot is live — for exactly `p`.
  return HasPathFromTo(*store_, root, n, p);
}

Result<Object> LocalAccessor::Fetch(const Oid& oid) {
  ++stats_.fetches;
  const Object* object = store_->Get(oid);
  if (object == nullptr) {
    return Status::NotFound("object " + oid.str() + " not found in base");
  }
  return *object;
}

}  // namespace gsv
