#include "core/virtual_view.h"

#include "query/evaluator.h"

namespace gsv {

Result<OidSet> EvaluateView(const ObjectStore& store,
                            const ViewDefinition& def, QueryPlan* plan) {
  return EvaluateQuery(store, def.query(), plan);
}

Status RegisterVirtualView(ObjectStore& store, const ViewDefinition& def) {
  GSV_ASSIGN_OR_RETURN(OidSet members, EvaluateView(store, def));
  GSV_RETURN_IF_ERROR(
      store.Put(Object(def.view_oid(), "view", Value::Set(members))));
  return store.RegisterDatabase(def.name(), def.view_oid());
}

Status RefreshVirtualView(ObjectStore& store, const ViewDefinition& def) {
  if (!store.Contains(def.view_oid())) {
    return Status::NotFound("virtual view " + def.name() + " is not registered");
  }
  GSV_ASSIGN_OR_RETURN(OidSet members, EvaluateView(store, def));
  return store.SetValueRaw(def.view_oid(), Value::Set(std::move(members)));
}

}  // namespace gsv
