#ifndef GSV_CORE_AGGREGATE_VIEW_H_
#define GSV_CORE_AGGREGATE_VIEW_H_

#include <memory>
#include <optional>
#include <string>

#include "core/algorithm1.h"
#include "core/base_accessor.h"
#include "core/view_definition.h"
#include "core/view_storage.h"
#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// Aggregate views — the §6 open issue "views in which the value of one
// delegate object is obtained from more than one base objects, for
// example, aggregate views".
//
// Membership is an ordinary simple view (maintained by Algorithm 1), but
// each member Y's delegate is a *synthetic* atomic object
//
//   <AG.Y, <aggregate-name>, aggregate over Y.agg_path>
//
// e.g. the number of students of each professor, or the sum of their
// salaries. The view object <AG, mview, set, {AG.*}> is queryable like any
// database. Maintenance refreshes a member's aggregate whenever an update
// touches its agg_path cone (membership changes are handled by the inner
// Algorithm 1 maintainer; fresh members get their aggregate computed on
// insertion).
//
// Centralized-only for now: the aggregate recomputation reads the base
// store directly (a warehouse realization would meter the same reads
// through a wrapper).
class AggregateView {
 public:
  enum class Kind {
    kCount,  // number of objects in Y.agg_path
    kSum,    // sum of their numeric values (non-numeric objects ignored)
    kMin,    // minimum numeric value; delegate value 0 when none
    kMax,    // maximum numeric value; delegate value 0 when none
  };

  static const char* KindName(Kind kind);

  // `membership_def` must be a simple view (Algorithm 1's shape) whose
  // entry resolves to `root` in `base`. `agg_path` is evaluated from each
  // member. Both stores must outlive the view.
  AggregateView(ObjectStore* base, ObjectStore* view_store, std::string name,
                ViewDefinition membership_def, Oid root, Path agg_path,
                Kind kind);
  ~AggregateView();

  // Creates the view object, evaluates the membership query, and computes
  // every member's aggregate. Call once.
  Status Initialize();

  // Processes one applied base update; or register listener() on the base.
  Status Maintain(const Update& update);
  UpdateListener* listener() { return &listener_; }

  const Oid& view_oid() const { return view_oid_; }
  OidSet Members() const;
  // The member's current aggregate value (kNotFound if not a member).
  Result<Value> AggregateOf(const Oid& member) const;
  Oid DelegateOid(const Oid& member) const {
    return Oid::Delegate(view_oid_, member);
  }

  const Status& last_status() const { return last_status_; }

 private:
  class Storage;  // ViewStorage adapter creating aggregate delegates

  // Computes the aggregate of `member` from the current base state.
  Result<Value> ComputeAggregate(const Oid& member) const;
  // Refreshes the delegates of members whose agg_path cone may contain the
  // updated object(s).
  Status RefreshAffected(const Update& update);

  class Listener : public UpdateListener {
   public:
    explicit Listener(AggregateView* owner) : owner_(owner) {}
    void OnUpdate(const ObjectStore& store, const Update& update) override {
      (void)store;
      Status status = owner_->Maintain(update);
      if (!status.ok()) owner_->last_status_ = status;
    }

   private:
    AggregateView* owner_;
  };

  ObjectStore* base_;
  ObjectStore* store_;
  std::string name_;
  Oid view_oid_;
  ViewDefinition def_;
  Oid root_;
  Path agg_path_;
  Kind kind_;
  std::unique_ptr<Storage> storage_;
  std::unique_ptr<LocalAccessor> accessor_;
  std::unique_ptr<Algorithm1Maintainer> membership_;
  Listener listener_;
  Status last_status_;
  bool initialized_ = false;
};

}  // namespace gsv

#endif  // GSV_CORE_AGGREGATE_VIEW_H_
