#ifndef GSV_CORE_VIEW_CLUSTER_H_
#define GSV_CORE_VIEW_CLUSTER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/view_definition.h"
#include "core/view_storage.h"
#include "oem/store.h"
#include "util/status.h"

namespace gsv {

// A view cluster (paper §3.2): "if a remote site defines several views that
// share common objects, it may end up with multiple delegates for the same
// base object. The notion of a view cluster avoids this, by making all
// views in a cluster share delegates."
//
// The cluster owns one delegate per base object, named with the *cluster*
// OID ("CL.P1") and reference-counted across member views. Each member view
// is still an ordinary queryable object <V, mview, set, {CL.*}> registered
// as a database; maintainers drive it through the ViewStorage adapter
// returned by AddView.
class ViewCluster {
 public:
  // `store` is the delegate store; must outlive the cluster. The cluster
  // name must not contain '.' (it prefixes delegate OIDs).
  ViewCluster(ObjectStore* store, std::string name);
  ~ViewCluster();  // out of line: members_ holds an incomplete type here

  // Creates the cluster object <CL, cluster, set, {}>.
  Status Bootstrap();

  // Registers a member view and returns its ViewStorage adapter (owned by
  // the cluster). Creates the view object and registers it as a database.
  Result<ViewStorage*> AddView(const ViewDefinition& def);

  // Evaluates every member view's query on `base` and populates delegates.
  Status InitializeAll(const ObjectStore& base);

  const Oid& cluster_oid() const { return cluster_oid_; }
  // Number of distinct delegates currently materialized.
  size_t delegate_count() const { return refcounts_.size(); }
  // How many member views currently include `base_oid` (0 if none).
  int RefCount(const Oid& base_oid) const;
  // The shared delegate OID for a base object.
  Oid DelegateOid(const Oid& base_oid) const {
    return Oid::Delegate(cluster_oid_, base_oid);
  }

  ObjectStore& store() { return *store_; }

 private:
  class MemberView;  // ViewStorage adapter for one member

  // Shared-delegate operations used by the adapters.
  Status AcquireDelegate(const Object& base_object);
  Status ReleaseDelegate(const Oid& base_oid);
  Status SyncShared(const Update& update);

  ObjectStore* store_;
  std::string name_;
  Oid cluster_oid_;
  bool bootstrapped_ = false;
  std::unordered_map<std::string, int> refcounts_;  // base OID -> #views
  std::vector<std::unique_ptr<MemberView>> members_;
};

}  // namespace gsv

#endif  // GSV_CORE_VIEW_CLUSTER_H_
