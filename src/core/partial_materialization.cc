#include "core/partial_materialization.h"

#include <deque>
#include <unordered_set>
#include <utility>

namespace gsv {

Status PartialMaterialization::Expand(const ObjectStore& base) {
  ObjectStore& store = view_->mutable_store();
  const Oid& view_oid = view_->view_oid();

  // BFS from the members, `depth_` levels down. Collect the set of base
  // objects that will be locally available (members + expansion).
  OidSet local = view_->BaseMembers();
  std::deque<std::pair<Oid, size_t>> frontier;
  for (const Oid& member : view_->BaseMembers()) frontier.emplace_back(member, 0);
  std::unordered_set<std::string> seen;
  for (const Oid& member : view_->BaseMembers()) seen.insert(member.str());

  std::vector<Oid> to_copy;
  while (!frontier.empty()) {
    auto [oid, level] = frontier.front();
    frontier.pop_front();
    if (level >= depth_) continue;
    const Object* object = base.Get(oid);
    if (object == nullptr || !object->IsSet()) continue;
    for (const Oid& child : object->children()) {
      if (!base.Contains(child)) continue;
      if (!seen.insert(child.str()).second) continue;
      local.Insert(child);
      if (!view_->ContainsBase(child)) to_copy.push_back(child);
      frontier.emplace_back(child, level + 1);
    }
  }

  // Copy the expansion objects.
  for (const Oid& oid : to_copy) {
    const Object* object = base.Get(oid);
    if (object == nullptr) continue;
    Oid delegate_oid = Oid::Delegate(view_oid, oid);
    if (!store.Contains(delegate_oid)) {
      GSV_RETURN_IF_ERROR(
          store.Put(Object(delegate_oid, object->label(), object->value())));
    }
    expansion_.Insert(oid);
  }

  // Swizzle edges between locally-available objects; leave the rest as
  // pointers back to base data.
  for (const Oid& oid : local) {
    Oid delegate_oid = Oid::Delegate(view_oid, oid);
    const Object* delegate = store.Get(delegate_oid);
    if (delegate == nullptr || !delegate->IsSet()) continue;
    std::vector<Oid> children = delegate->children().elements();
    for (const Oid& child : children) {
      if (local.Contains(child)) {
        GSV_RETURN_IF_ERROR(store.ReplaceChildRaw(
            delegate_oid, child, Oid::Delegate(view_oid, child)));
      }
    }
  }
  return Status::Ok();
}

Status PartialMaterialization::Clear() {
  ObjectStore& store = view_->mutable_store();
  const Oid& view_oid = view_->view_oid();
  for (const Oid& oid : expansion_) {
    Oid delegate_oid = Oid::Delegate(view_oid, oid);
    if (store.Contains(delegate_oid)) {
      GSV_RETURN_IF_ERROR(store.Remove(delegate_oid));
    }
  }
  expansion_.clear();
  return Status::Ok();
}

Status PartialMaterialization::Refresh(const ObjectStore& base) {
  GSV_RETURN_IF_ERROR(Clear());
  // Member delegates may hold swizzled edges to dropped expansion objects;
  // re-copy their values from base, then re-expand.
  for (const Oid& member : view_->BaseMembers()) {
    const Object* object = base.Get(member);
    if (object == nullptr) continue;
    GSV_RETURN_IF_ERROR(view_->RefreshDelegate(*object));
  }
  return Expand(base);
}

}  // namespace gsv
