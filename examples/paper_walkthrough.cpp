// Reproduces every worked example and figure of "Graph Structured Views and
// Their Incremental Maintenance" (Zhuge & Garcia-Molina, ICDE 1998) in
// order, printing the structures the paper shows.
//
//   $ ./examples/paper_walkthrough

#include <cstdio>
#include <cstdlib>

#include "core/algorithm1.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "relational/flatten.h"
#include "warehouse/warehouse.h"
#include "workload/person_db.h"

namespace {

void Check(const gsv::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void Section(const char* title) { std::printf("\n=== %s ===\n", title); }

void PrintObject(const gsv::ObjectStore& store, const char* oid,
                 int indent = 0) {
  const gsv::Object* object = store.Get(gsv::Oid(oid));
  std::printf("%*s%s\n", indent, "",
              object != nullptr ? object->ToString().c_str() : "(missing)");
}

void PrintAnswer(const char* query, const gsv::OidSet& answer) {
  std::printf("%s\n  -> %s\n", query,
              gsv::MakeAnswerObject(gsv::Oid("ANS"), answer).ToString().c_str());
}

}  // namespace

int main() {
  using namespace gsv;               // NOLINT(build/namespaces)
  using namespace gsv::person_db;    // NOLINT(build/namespaces)

  ObjectStore store;
  Check(BuildPersonDb(&store));

  Section("Example 2 / Figure 2: the PERSON database");
  PrintObject(store, "ROOT");
  PrintObject(store, "P1", 2);
  PrintObject(store, "N1", 4);
  PrintObject(store, "A1", 4);
  PrintObject(store, "S1", 4);
  PrintObject(store, "P3", 4);
  PrintObject(store, "N3", 6);
  PrintObject(store, "A3", 6);
  PrintObject(store, "M3", 6);
  PrintObject(store, "P2", 2);
  PrintObject(store, "N2", 4);
  PrintObject(store, "ADD2", 4);
  PrintObject(store, "P4", 2);
  PrintObject(store, "N4", 4);
  PrintObject(store, "A4", 4);
  PrintObject(store, "PERSON");

  Section("Section 2: queries");
  auto q1 = EvaluateQueryText(store, "SELECT ROOT.professor X WHERE X.age > 40");
  Check(q1.ok() ? Status::Ok() : q1.status());
  PrintAnswer("SELECT ROOT.professor X WHERE X.age > 40", *q1);

  Section("Example 3: virtual view VJ (persons named John)");
  auto vj = ViewDefinition::Parse(
      "define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' "
      "WITHIN PERSON");
  Check(vj.ok() ? Status::Ok() : vj.status());
  Check(RegisterVirtualView(store, *vj));
  PrintObject(store, "VJ");
  auto constrained = EvaluateQueryText(store, "SELECT ROOT.professor X ANS INT VJ");
  PrintAnswer("SELECT ROOT.professor X ANS INT VJ", *constrained);
  auto follow_on = EvaluateQueryText(store, "SELECT VJ.?.age");
  PrintAnswer("SELECT VJ.?.age", *follow_on);

  Section("Views 3.4: PROF and STUDENT (views on views)");
  Check(RegisterVirtualView(store, *ViewDefinition::Parse(
                                       "define view PROF as: SELECT "
                                       "ROOT.*.professor X")));
  Check(RegisterVirtualView(store, *ViewDefinition::Parse(
                                       "define view STUDENT as: SELECT "
                                       "PROF.?.student X")));
  PrintObject(store, "PROF");
  PrintObject(store, "STUDENT");

  Section("Example 4 / Figure 3: materialized view MVJ");
  auto mvj = ViewDefinition::Parse(
      "define mview MVJ as: SELECT ROOT.* X WHERE X.name = 'John' "
      "WITHIN PERSON");
  MaterializedView mvj_view(&store, *mvj);
  Check(mvj_view.Initialize(store));
  PrintObject(store, "MVJ");
  PrintObject(store, "MVJ.P1", 2);
  PrintObject(store, "MVJ.P3", 2);

  Section("Examples 5+6 / Figure 4: Algorithm 1 on YP");
  auto yp = ViewDefinition::Parse(
      "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  MaterializedView yp_view(&store, *yp);
  Check(yp_view.Initialize(store));
  LocalAccessor accessor(&store);
  Algorithm1Maintainer maintainer(&yp_view, &accessor, *yp, Root());
  store.AddListener(&maintainer);
  std::printf("before:\n");
  PrintObject(store, "YP");
  PrintObject(store, "YP.P1", 2);

  std::printf("insert(P2, A2) with <A2, age, 40>:\n");
  Check(store.PutAtomic(Oid("A2"), "age", Value::Int(40)));
  Check(store.Insert(P2(), Oid("A2")));
  PrintObject(store, "YP");
  PrintObject(store, "YP.P1", 2);
  PrintObject(store, "YP.P2", 2);

  std::printf("delete(ROOT, P1):\n");
  Check(store.Delete(Root(), P1()));
  PrintObject(store, "YP");
  Check(store.Insert(Root(), P1()));  // restore for what follows

  Section("Example 8: three-table relational representation");
  {
    ObjectStore base;
    Check(BuildPersonDb(&base, /*with_database=*/false));
    RelationalMirror mirror;
    Check(mirror.SyncFromStore(base));
    std::printf("OID_LABEL: %zu rows, PARENT_CHILD: %zu rows, "
                "OID_VALUE: %zu rows\n",
                mirror.oid_label().DistinctSize(),
                mirror.parent_child().DistinctSize(),
                mirror.oid_value().DistinctSize());
    base.AddListener(&mirror);
    mirror.metrics().Reset();
    Check(base.PutAtomic(Oid("A2"), "age", Value::Int(40)));
    Check(base.Insert(P2(), Oid("A2")));
    std::printf("one atomic-object insertion -> %lld table updates "
                "(all three tables)\n",
                static_cast<long long>(mirror.metrics().table_updates));
  }

  Section("Examples 9+10 / Figure 6: warehouse with auxiliary cache");
  {
    ObjectStore source;
    Check(BuildPersonDb(&source, /*with_database=*/false));
    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    Check(warehouse.ConnectSource(&source, Root(),
                                  ReportingLevel::kWithValues));
    Check(warehouse.DefineView(
        "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45",
        Warehouse::CacheMode::kFull));
    warehouse.costs().Reset();

    Check(source.Modify(A1(), Value::Int(50)));  // P1 leaves, locally
    Check(source.PutAtomic(Oid("A9"), "age", Value::Int(30)));
    Check(source.PutSet(Oid("P9"), "professor", {Oid("A9")}));
    Check(source.Insert(Root(), Oid("P9")));     // P9 joins, one cache pull
    Check(warehouse.last_status());

    std::printf("warehouse view after updates:\n");
    PrintObject(warehouse_store, "YP");
    std::printf("costs: %s\n", warehouse.costs().ToString().c_str());
  }

  std::printf("\nwalkthrough complete.\n");
  return 0;
}
