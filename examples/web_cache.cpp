// The paper's §1 motivating scenario: "a user is interested in all Web
// pages containing the word 'flower' and would like to copy them to his
// local disk for faster access" — a materialized view over a web-like
// GSDB, kept current as pages change, with swizzled local links.
//
//   $ ./examples/web_cache

#include <cstdio>
#include <cstdlib>

#include "core/algorithm1.h"
#include "core/consistency.h"
#include "core/materialized_view.h"
#include "core/swizzle.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "workload/web_gen.h"

namespace {

void Check(const gsv::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace gsv;  // NOLINT(build/namespaces)

  // The "web": pages with urls, topics and links (links can be cyclic).
  ObjectStore web;
  WebGenOptions options;
  options.pages = 60;
  options.links_per_page = 3;
  options.flower_fraction = 0.25;
  options.seed = 42;
  auto generated = GenerateWeb(&web, options);
  Check(generated.ok() ? Status::Ok() : generated.status());
  std::printf("crawled %zu pages, %zu about flowers\n",
              generated->pages.size(), generated->flower_pages.size());

  // The local cache is a separate store (the user's disk); delegates are
  // swizzled so cached pages link to cached pages where possible.
  auto def = ViewDefinition::Parse(
      FlowerViewDefinition("FLOWERS", generated->root));
  Check(def.ok() ? Status::Ok() : def.status());
  ObjectStore disk;
  MaterializedView::Options view_options;
  view_options.swizzle = true;
  MaterializedView cache(&disk, *def, view_options);
  Check(cache.Initialize(web));
  ReferenceCounts refs = CountReferences(cache);
  std::printf("cached %zu pages to local disk: %lld local links, "
              "%lld remote links\n",
              cache.size(), static_cast<long long>(refs.delegate_refs),
              static_cast<long long>(refs.base_refs));

  // Keep the cache fresh as the web changes.
  LocalAccessor accessor(&web);
  Algorithm1Maintainer maintainer(&cache, &accessor, *def,
                                  generated->root);
  web.AddListener(&maintainer);

  // A page changes topic to flowers...
  Oid page = generated->pages[0];
  bool was_flower = false;
  for (const Oid& p : generated->flower_pages) {
    if (p == page) was_flower = true;
  }
  const Object* page_object = web.Get(page);
  Oid topic_oid;
  for (const Oid& child : page_object->children()) {
    const Object* child_object = web.Get(child);
    if (child_object != nullptr && child_object->label() == "topic") {
      topic_oid = child;
    }
  }
  std::printf("\npage %s switches topic to 'flower' (was%s a flower page)\n",
              page.str().c_str(), was_flower ? "" : " not");
  Check(web.Modify(topic_oid, Value::Str("flower")));
  std::printf("cache now holds %zu pages (delegate %s %s)\n", cache.size(),
              cache.DelegateOid(page).str().c_str(),
              disk.Contains(cache.DelegateOid(page)) ? "present" : "absent");

  // ...and a flower page is unpublished.
  Oid victim = generated->flower_pages[0];
  std::printf("\npage %s is unpublished (removed from the crawl root)\n",
              victim.str().c_str());
  Check(web.Delete(generated->root, victim));
  std::printf("cache now holds %zu pages (delegate %s)\n", cache.size(),
              disk.Contains(cache.DelegateOid(victim)) ? "present" : "absent");

  // Queries run entirely against the local cache.
  auto local = EvaluateQueryText(disk, "SELECT FLOWERS.page X");
  Check(local.ok() ? Status::Ok() : local.status());
  std::printf("\nlocal query over the cache sees %zu pages\n", local->size());

  ConsistencyReport report = CheckViewConsistency(cache, web);
  std::printf("cache consistent with the live web: %s\n",
              report.ToString().c_str());
  return report.consistent ? 0 : 1;
}
