// Quickstart: build a tiny graph-structured database, define a materialized
// view over it, and watch Algorithm 1 keep the view current as the base
// changes.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "core/algorithm1.h"
#include "core/consistency.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "query/evaluator.h"

namespace {

void Check(const gsv::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void PrintView(const gsv::MaterializedView& view) {
  std::printf("  view %s = {", view.def().name().c_str());
  bool first = true;
  for (const gsv::Oid& member : view.BaseMembers()) {
    std::printf("%s%s", first ? "" : ", ", member.str().c_str());
    first = false;
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  using namespace gsv;  // NOLINT(build/namespaces): example brevity

  // 1. A GSDB is a collection of <OID, label, type, value> objects whose
  //    set values are the graph edges.
  ObjectStore store;
  Check(store.PutAtomic(Oid("N1"), "name", Value::Str("Ada")));
  Check(store.PutAtomic(Oid("A1"), "age", Value::Int(36)));
  Check(store.PutAtomic(Oid("N2"), "name", Value::Str("Grace")));
  Check(store.PutAtomic(Oid("A2"), "age", Value::Int(52)));
  Check(store.PutSet(Oid("P1"), "engineer", {Oid("N1"), Oid("A1")}));
  Check(store.PutSet(Oid("P2"), "engineer", {Oid("N2"), Oid("A2")}));
  Check(store.PutSet(Oid("ROOT"), "team", {Oid("P1"), Oid("P2")}));

  std::printf("objects:\n");
  for (const char* oid : {"ROOT", "P1", "N1", "A1", "P2", "N2", "A2"}) {
    std::printf("  %s\n", store.Get(Oid(oid))->ToString().c_str());
  }

  // 2. Queries select objects by path, with conditions on subobject values.
  auto young = EvaluateQueryText(
      store, "SELECT ROOT.engineer X WHERE X.age < 40");
  Check(young.status().ok() ? Status::Ok() : young.status());
  std::printf("\nSELECT ROOT.engineer X WHERE X.age < 40  ->  %s\n",
              MakeAnswerObject(Oid("ANS"), *young).ToString().c_str());

  // 3. A materialized view stores delegate copies ("MV.P1") of the
  //    selected objects and is itself an ordinary queryable database.
  auto def = ViewDefinition::Parse(
      "define mview YOUNG as: SELECT ROOT.engineer X WHERE X.age < 40");
  Check(def.ok() ? Status::Ok() : def.status());
  MaterializedView view(&store, *def);
  Check(view.Initialize(store));
  std::printf("\nmaterialized:\n");
  PrintView(view);
  std::printf("  delegate %s\n",
              store.Get(Oid("YOUNG.P1"))->ToString().c_str());

  // 4. Algorithm 1 maintains the view incrementally under the three basic
  //    updates: insert(N1,N2), delete(N1,N2), modify(N,old,new).
  LocalAccessor accessor(&store);
  Algorithm1Maintainer maintainer(&view, &accessor, *def, Oid("ROOT"));
  store.AddListener(&maintainer);

  std::printf("\nmodify(A2, 52 -> 29):\n");
  Check(store.Modify(Oid("A2"), Value::Int(29)));
  PrintView(view);

  std::printf("delete(ROOT, P1):\n");
  Check(store.Delete(Oid("ROOT"), Oid("P1")));
  PrintView(view);

  std::printf("insert(ROOT, P1):\n");
  Check(store.Insert(Oid("ROOT"), Oid("P1")));
  PrintView(view);

  // 5. The view provably matches a from-scratch recomputation.
  ConsistencyReport report = CheckViewConsistency(view, store);
  std::printf("\nconsistency check: %s\n", report.ToString().c_str());
  return report.consistent ? 0 : 1;
}
