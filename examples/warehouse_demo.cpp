// The §5 warehousing architecture end to end: an autonomous source exports
// update events at a configurable reporting level; the warehouse maintains
// a materialized view, optionally with the §5.2 auxiliary cache, and the
// demo prints what each configuration costs in query-backs.
//
//   $ ./examples/warehouse_demo

#include <cstdio>
#include <cstdlib>

#include "core/consistency.h"
#include "oem/store.h"
#include "util/random.h"
#include "warehouse/source_wrapper_gsdb.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace {

void Check(const gsv::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace gsv;  // NOLINT(build/namespaces)

  struct Config {
    const char* name;
    ReportingLevel level;
    Warehouse::CacheMode cache;
  };
  const Config configs[] = {
      {"level 1 (OIDs only), no cache", ReportingLevel::kOidsOnly,
       Warehouse::CacheMode::kNone},
      {"level 2 (+values),   no cache", ReportingLevel::kWithValues,
       Warehouse::CacheMode::kNone},
      {"level 3 (+path),     no cache", ReportingLevel::kWithRootPath,
       Warehouse::CacheMode::kNone},
      {"level 2, labels-only cache   ", ReportingLevel::kWithValues,
       Warehouse::CacheMode::kLabelsOnly},
      {"level 2, full corridor cache ", ReportingLevel::kWithValues,
       Warehouse::CacheMode::kFull},
  };

  std::printf("source: random tree, view: depth-2 selection with an age "
              "condition, 400 random updates\n\n");
  std::printf("%-32s %9s %9s %9s %9s %9s\n", "configuration", "queries",
              "shipped", "screened", "local", "cacheq");

  for (const Config& config : configs) {
    // Fresh, identically-seeded source per configuration.
    ObjectStore source;
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 4;
    tree_options.seed = 99;
    auto tree = GenerateTree(&source, tree_options);
    Check(tree.ok() ? Status::Ok() : tree.status());

    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    Check(warehouse.ConnectSource(&source, tree->root, config.level));
    Check(warehouse.DefineView(
        TreeViewDefinition("WV", tree->root, /*sel_levels=*/2, /*levels=*/3,
                           /*bound=*/50),
        config.cache));
    warehouse.costs().Reset();

    UpdateGenOptions gen_options;
    gen_options.seed = 123;
    UpdateGenerator generator(&source, tree->root, gen_options);
    auto run = generator.Run(400);
    Check(run.ok() ? Status::Ok() : run.status());
    Check(warehouse.last_status());

    const WarehouseCosts& costs = warehouse.costs();
    std::printf("%-32s %9lld %9lld %9lld %9lld %9lld\n", config.name,
                static_cast<long long>(costs.source_queries),
                static_cast<long long>(costs.objects_shipped),
                static_cast<long long>(costs.events_screened_out),
                static_cast<long long>(costs.events_local_only),
                static_cast<long long>(costs.cache_maintenance_queries));

    ConsistencyReport report =
        CheckViewConsistency(*warehouse.view("WV"), source);
    if (!report.consistent) {
      std::fprintf(stderr, "INCONSISTENT: %s\n", report.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nall configurations converged to the same correct view.\n");

  // ---- Part 2: two sources, one of them a legacy relational database ----
  std::printf(
      "\npart 2: multi-source warehouse — an OEM tree plus a relational\n"
      "source behind the Figure-6 wrapper, drained deferred+compacted\n\n");

  ObjectStore tree_source;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 4;
  tree_options.seed = 7;
  auto tree = GenerateTree(&tree_source, tree_options);
  Check(tree.status().ok() ? Status::Ok() : tree.status());

  RelationalSource relational;
  Check(relational.CreateTable("emp", {"name", "salary"}));
  ObjectStore erp_source;
  GsdbSourceAdapter adapter(&erp_source, &relational, "REL");
  Check(adapter.Initialize());

  ObjectStore warehouse_store;
  Warehouse warehouse(&warehouse_store);
  Check(warehouse.ConnectSource(&tree_source, tree->root,
                                ReportingLevel::kWithValues, "tree"));
  Check(warehouse.ConnectSource(&erp_source, Oid("REL"),
                                ReportingLevel::kWithValues, "erp"));
  Check(warehouse.DefineView(TreeViewDefinition("TV", tree->root, 2, 3, 50),
                             Warehouse::CacheMode::kFull, "tree"));
  Check(warehouse.DefineView(
      "define mview RICH as: SELECT REL.emp.tuple X WHERE X.salary >= 5000",
      Warehouse::CacheMode::kNone, "erp"));
  warehouse.costs().Reset();
  warehouse.set_deferred(true);

  UpdateGenOptions gen_options;
  gen_options.seed = 11;
  UpdateGenerator generator(&tree_source, tree->root, gen_options);
  Random rng(3);
  for (int round = 0; round < 5; ++round) {
    Check(generator.Run(40).status().ok() ? Status::Ok()
                                          : Status::Internal("stream"));
    for (int i = 0; i < 6; ++i) {
      auto row = relational.InsertRow(
          "emp", {Value::Str("e" + std::to_string(round * 6 + i)),
                  Value::Int(rng.UniformInt(1000, 9000))});
      Check(row.status().ok() ? Status::Ok() : row.status());
    }
    size_t compacted = warehouse.CompactPending();
    size_t pending = warehouse.pending_events();
    Check(warehouse.ProcessPending());
    std::printf("round %d: drained %zu events (%zu compacted away); "
                "TV=%zu members, RICH=%zu members\n",
                round, pending, compacted, warehouse.view("TV")->size(),
                warehouse.view("RICH")->size());
  }
  Check(warehouse.last_status());
  std::printf("costs: %s\n", warehouse.costs().ToString().c_str());
  bool consistent =
      CheckViewConsistency(*warehouse.view("TV"), tree_source).consistent &&
      CheckViewConsistency(*warehouse.view("RICH"), erp_source).consistent;
  std::printf("both views consistent with their sources: %s\n",
              consistent ? "yes" : "NO");
  return consistent ? 0 : 1;
}
