// The paper's §1/§3 access-control scenario: "a parent may wish to restrict
// access by his children to a particular subset of Web pages. For this he
// can define a virtual view that contains the allowed Web pages" — queries
// are constrained with ANS INT / WITHIN, and a materialized copy can be
// hardened by stripping base references (§3.2).
//
//   $ ./examples/access_control

#include <cstdio>
#include <cstdlib>

#include "core/materialized_view.h"
#include "core/swizzle.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "workload/web_gen.h"

namespace {

void Check(const gsv::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace gsv;  // NOLINT(build/namespaces)

  ObjectStore web;
  WebGenOptions options;
  options.pages = 30;
  options.flower_fraction = 0.3;
  options.seed = 7;
  auto generated = GenerateWeb(&web, options);
  Check(generated.ok() ? Status::Ok() : generated.status());

  // The allow-list: only gardening content for the kids.
  auto allowed = ViewDefinition::Parse(
      FlowerViewDefinition("ALLOWED", generated->root));
  Check(allowed.ok() ? Status::Ok() : allowed.status());
  // Register the *virtual* view: an authorization system can now expand
  // every query with ANS INT ALLOWED (§3.1).
  {
    ViewDefinition virtual_def = *ViewDefinition::Create(
        "ALLOWED", /*materialized=*/false, allowed->query());
    Check(RegisterVirtualView(web, virtual_def));
  }

  auto all_pages =
      EvaluateQueryText(web, "SELECT " + generated->root.str() + ".page X");
  auto filtered = EvaluateQueryText(
      web, "SELECT " + generated->root.str() + ".page X ANS INT ALLOWED");
  std::printf("unrestricted query sees %zu pages\n", all_pages->size());
  std::printf("with ANS INT ALLOWED:   %zu pages\n", filtered->size());

  // But the view objects still contain pointers into the full web: a child
  // could fetch an allowed page and follow its links out. The paper's
  // remedy (§3.2): materialize the view, swizzle all edges, then remove
  // the remaining base OIDs so nothing escapes the sandbox.
  ObjectStore sandbox;
  MaterializedView::Options mv_options;
  mv_options.swizzle = true;
  mv_options.sync_values = false;  // intentionally diverging from the base
  auto mdef = ViewDefinition::Parse(
      FlowerViewDefinition("SAFE", generated->root));
  MaterializedView safe(&sandbox, *mdef, mv_options);
  Check(safe.Initialize(web));

  ReferenceCounts before = CountReferences(safe);
  auto removed = StripBaseReferences(safe);
  Check(removed.ok() ? Status::Ok() : removed.status());
  ReferenceCounts after = CountReferences(safe);
  std::printf("\nsandbox copy: %zu pages\n", safe.size());
  std::printf("  before hardening: %lld view-local links, %lld escapes\n",
              static_cast<long long>(before.delegate_refs),
              static_cast<long long>(before.base_refs));
  std::printf("  after hardening:  %lld view-local links, %lld escapes\n",
              static_cast<long long>(after.delegate_refs),
              static_cast<long long>(after.base_refs));

  // Any traversal inside the sandbox now stays inside it.
  OidSet reachable;
  for (const Oid& member : safe.BaseMembers()) {
    OidSet from_here = EvalExpression(sandbox, safe.DelegateOid(member),
                                      *PathExpression::Parse("*"));
    reachable = OidSet::Union(reachable, from_here);
  }
  size_t outside = 0;
  for (const Oid& oid : reachable) {
    if (!oid.IsDelegateOf(safe.view_oid())) ++outside;
  }
  std::printf("  reachable from sandboxed pages: %zu objects, "
              "%zu outside the sandbox\n",
              reachable.size(), outside);
  return outside == 0 ? 0 : 1;
}
