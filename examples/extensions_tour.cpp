// A tour of the §6 relaxations and future-work features this library
// implements beyond Algorithm 1's simple views: wildcard (path-expression)
// views, DAG bases, union views (multiple select paths), aggregate views,
// view clusters, and partial materialization.
//
//   $ ./examples/extensions_tour

#include <cstdio>
#include <cstdlib>

#include "core/aggregate_view.h"
#include "core/general_maintainer.h"
#include "core/materialized_view.h"
#include "core/partial_materialization.h"
#include "core/union_view.h"
#include "core/view_cluster.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "workload/person_db.h"

namespace {

void Check(const gsv::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void Section(const char* title) { std::printf("\n=== %s ===\n", title); }

std::string Members(const gsv::OidSet& members) {
  std::string out = "{";
  bool first = true;
  for (const gsv::Oid& oid : members) {
    if (!first) out += ", ";
    first = false;
    out += oid.str();
  }
  return out + "}";
}

}  // namespace

int main() {
  using namespace gsv;             // NOLINT(build/namespaces)
  using namespace gsv::person_db;  // NOLINT(build/namespaces)

  ObjectStore base;
  Check(BuildPersonDb(&base));

  Section("Path-expression view (SELECT ROOT.* ...) via GeneralMaintainer");
  auto wild_def = ViewDefinition::Parse(
      "define mview WILD as: SELECT ROOT.* X WHERE X.name = 'John'");
  ObjectStore wild_store;
  MaterializedView wild(&wild_store, *wild_def);
  Check(wild.Initialize(base));
  GeneralMaintainer wild_maintainer(&wild, &base, *wild_def, Root());
  base.AddListener(&wild_maintainer);
  std::printf("WILD = %s\n", Members(wild.BaseMembers()).c_str());
  Check(base.Modify(N3(), Value::Str("Jane")));
  std::printf("after renaming N3: WILD = %s  (%lld candidates rechecked)\n",
              Members(wild.BaseMembers()).c_str(),
              static_cast<long long>(
                  wild_maintainer.stats().candidates_checked));
  base.RemoveListener(&wild_maintainer);
  Check(base.Modify(N3(), Value::Str("John")));  // restore

  Section("Union view: professors <= 45 UNION all secretaries");
  ObjectStore union_store;
  LocalAccessor accessor(&base);
  UnionView union_view(&union_store, "UV", &accessor);
  Check(union_view.Bootstrap());
  Check(union_view.AddBranch(
      *ViewDefinition::Parse(
          "define mview UVa as: SELECT ROOT.professor X WHERE X.age <= 45"),
      base, Root()));
  Check(union_view.AddBranch(
      *ViewDefinition::Parse("define mview UVb as: SELECT ROOT.secretary X"),
      base, Root()));
  base.AddListener(union_view.listener());
  std::printf("UV = %s  (refcount P1 = %d)\n",
              Members(union_view.Members()).c_str(),
              union_view.RefCount(P1()));
  Check(base.Modify(A1(), Value::Int(70)));
  std::printf("after P1 turns 70: UV = %s\n",
              Members(union_view.Members()).c_str());
  base.RemoveListener(union_view.listener());
  Check(base.Modify(A1(), Value::Int(45)));  // restore

  Section("Aggregate view: students per professor (a §6 open issue)");
  ObjectStore agg_store;
  AggregateView agg(&base, &agg_store, "NSTUD",
                    *ViewDefinition::Parse(
                        "define mview NSTUD as: SELECT ROOT.professor X"),
                    Root(), *Path::Parse("student"),
                    AggregateView::Kind::kCount);
  Check(agg.Initialize());
  base.AddListener(agg.listener());
  std::printf("count(P1) = %lld, count(P2) = %lld\n",
              static_cast<long long>(agg.AggregateOf(P1())->AsInt()),
              static_cast<long long>(agg.AggregateOf(P2())->AsInt()));
  Check(base.PutSet(Oid("ST9"), "student"));
  Check(base.Insert(P2(), Oid("ST9")));
  std::printf("after P2 gains a student: count(P2) = %lld\n",
              static_cast<long long>(agg.AggregateOf(P2())->AsInt()));
  base.RemoveListener(agg.listener());

  Section("View cluster: shared delegates across views (§3.2)");
  ObjectStore cluster_store;
  ViewCluster cluster(&cluster_store, "CL");
  Check(cluster.Bootstrap());
  auto johns = cluster.AddView(*ViewDefinition::Parse(
      "define mview CJOHN as: SELECT ROOT.* X WHERE X.name = 'John'"));
  auto profs = cluster.AddView(*ViewDefinition::Parse(
      "define mview CPROF as: SELECT ROOT.professor X"));
  Check(johns.status().ok() ? Status::Ok() : johns.status());
  Check(profs.status().ok() ? Status::Ok() : profs.status());
  Check(cluster.InitializeAll(base));
  std::printf("memberships: CJOHN=%zu, CPROF=%zu; distinct delegates=%zu "
              "(P1 shared, refcount %d)\n",
              (*johns)->BaseMembers().size(), (*profs)->BaseMembers().size(),
              cluster.delegate_count(), cluster.RefCount(P1()));

  Section("Live stacked views: OUTER over INNER over the base (§3.1)");
  {
    MaterializedView::Options emit;
    emit.emit_basic_updates = true;
    auto inner_def = ViewDefinition::Parse(
        "define mview INNER as: SELECT ROOT.professor X");
    MaterializedView inner(&base, *inner_def, emit);
    Check(inner.Initialize(base));
    LocalAccessor stack_accessor(&base);
    Algorithm1Maintainer inner_m(&inner, &stack_accessor, *inner_def,
                                 Root());
    base.AddListener(&inner_m);
    auto outer_def = ViewDefinition::Parse(
        "define mview OUT as: SELECT INNER.professor X WHERE X.age <= 45");
    MaterializedView outer(&base, *outer_def);
    Check(outer.Initialize(base));
    Algorithm1Maintainer outer_m(&outer, &stack_accessor, *outer_def,
                                 Oid("INNER"));
    base.AddListener(&outer_m);
    std::printf("OUT = %s\n", Members(outer.BaseMembers()).c_str());
    Check(base.Modify(A1(), Value::Int(80)));
    std::printf("after P1 turns 80: OUT = %s (INNER still has %zu members)\n",
                Members(outer.BaseMembers()).c_str(), inner.size());
    base.RemoveListener(&inner_m);
    base.RemoveListener(&outer_m);
    Check(base.Modify(A1(), Value::Int(45)));  // restore
  }

  Section("Partial materialization: one level of subobjects (§6)");
  ObjectStore pm_store;
  auto pm_def = ViewDefinition::Parse(
      "define mview PM as: SELECT ROOT.professor X WHERE X.name = 'John'");
  MaterializedView pm_view(&pm_store, *pm_def);
  Check(pm_view.Initialize(base));
  PartialMaterialization partial(&pm_view, /*depth=*/1);
  Check(partial.Expand(base));
  std::printf("members=%zu, expanded subobjects=%zu; local query "
              "PM.professor.age -> ",
              pm_view.size(), partial.expanded_count());
  auto ages = EvaluateQueryText(pm_store, "SELECT PM.professor.age");
  Check(ages.status().ok() ? Status::Ok() : ages.status());
  std::printf("%s\n", Members(*ages).c_str());

  std::printf("\nextensions tour complete.\n");
  return 0;
}
