#!/usr/bin/env bash
# CI entry point: tier-1 verify (full build + test suite), then a quick
# perf smoke of the label-index speedup experiment (catches silent index
# regressions that correctness tests cannot see), then an
# Address+UB-Sanitizer build of the robustness and fault-injection tests
# (the quarantine/resync error paths are where lifetime bugs hide — and the
# durability suite's randomized kill-mid-batch crash test and the
# replication suite's kill-mid-ship twin test with them), then a
# ThreadSanitizer build of the batch-engine, index-concurrency and
# paged-writeback tests to prove the parallel drain, the lock-free snapshot
# publication and the background writeback thread are race-free. The
# discrimination-network (gdn) suite rides along in BOTH sanitizer stages.
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo
echo "=== perf-smoke: index speedup floor (E15 --smoke, 1.5x bar) ==="
./build/bench/exp15_index_speedup --smoke

echo
echo "=== recovery-smoke: checkpoint+WAL restart floor (E16 --smoke, 1.5x bar) ==="
./build/bench/exp16_recovery --smoke

echo
echo "=== perf-smoke: shard scaling floor (E17 --smoke, 1.5x bar) ==="
./build/bench/exp17_shard_scaling --smoke

echo
echo "=== replication-smoke: follower catch-up floor (E18 --smoke, 1.5x bar) ==="
./build/bench/exp18_replication --smoke

echo
echo "=== perf-smoke: beyond-RAM paged store floors (E19 --smoke, 4x footprint) ==="
./build/bench/exp19_paged_store --smoke

echo
echo "=== perf-smoke: paged hot-path floors (E20 --smoke: writeback/swizzle/codec) ==="
./build/bench/exp20_paged_hotpath --smoke

echo
echo "=== perf-smoke: discrimination-network floor (E21 --smoke, 1.5x bar) ==="
./build/bench/exp21_gdn --smoke

echo
echo "=== paged: recovery + replication + engine suites on the PagedEngine ==="
# The same durability and replication properties, with every warehouse
# delegate store and follower re-pointed at the on-disk paged engine
# (tiny pool, so eviction runs constantly) through the env seam.
GSV_STORAGE_ENGINE=paged:8:4096 \
  ctest --test-dir build --output-on-failure -j "${JOBS}" -L paged

echo
echo "=== paged-compressed: the same suites with the gsvz codec on every page ==="
# Second pass through the env seam with compression in the writeback
# path: encode/decode now sit on every eviction and fault, so the twin
# byte-identity and crash-recovery properties vet the codec end to end.
GSV_STORAGE_ENGINE=paged:8:4096:compressed \
  ctest --test-dir build --output-on-failure -j "${JOBS}" -L paged

echo
echo "=== asan: robustness + fault-injection + durability + replication tests under address;undefined ==="
cmake -B build-asan -S . -DGSV_SANITIZE="address;undefined" >/dev/null
cmake --build build-asan -j "${JOBS}" --target gsv_robustness_test \
  --target gsv_fault_tolerance_test --target gsv_recovery_test \
  --target gsv_replication_test --target gsv_storage_engine_test \
  --target gsv_ivm_test
# The gdn suite runs under ASan too: memo images load from checkpoint
# bytes and poisoned networks rebuild in place.
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L 'asan|gdn'

echo
echo "=== tsan: batch-engine + index-concurrency + paged-writeback tests under -fsanitize=thread ==="
cmake -B build-tsan -S . -DGSV_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target gsv_batch_test \
  --target gsv_index_concurrency_test --target gsv_paged_concurrency_test \
  --target gsv_ivm_test
# The gdn suite runs under TSan too: a parallel drain propagates many
# networks concurrently against one frozen source.
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L 'tsan|gdn'

echo
echo "ci.sh: all checks passed"
